//! Node- and edge-addition algorithms (Sections 5.1 and 5.2).
//!
//! Both algorithms follow the same scheme rooted in the short-cycle
//! property: enumerate every cycle of length ≤ 4 that the new node/edge
//! participates in, turn each such cycle into a small candidate cluster,
//! and then merge candidates with each other and with existing clusters
//! wherever an edge is shared (Lemma 6).
//!
//! Only the immediate neighbourhood of the change is examined — never the
//! rest of the graph — which is what makes the maintenance *local*.

use dengraph_graph::dynamic_graph::EdgeKey;
use dengraph_graph::fxhash::FxHashSet;
use dengraph_graph::{DynamicGraph, NodeId};

use super::registry::ClusterRegistry;
use super::ClusterId;

/// One candidate cluster: the nodes and edges of a single short cycle.
type Candidate = (FxHashSet<NodeId>, FxHashSet<EdgeKey>);

/// Builds the candidate for a triangle `a–b–c`.
fn triangle_candidate(a: NodeId, b: NodeId, c: NodeId) -> Candidate {
    let nodes = [a, b, c].into_iter().collect();
    let edges = [EdgeKey::new(a, b), EdgeKey::new(b, c), EdgeKey::new(a, c)]
        .into_iter()
        .collect();
    (nodes, edges)
}

/// Builds the candidate for a 4-cycle `a–b–c–d–a`.
fn square_candidate(a: NodeId, b: NodeId, c: NodeId, d: NodeId) -> Candidate {
    let nodes = [a, b, c, d].into_iter().collect();
    let edges = [
        EdgeKey::new(a, b),
        EdgeKey::new(b, c),
        EdgeKey::new(c, d),
        EdgeKey::new(d, a),
    ]
    .into_iter()
    .collect();
    (nodes, edges)
}

/// `EdgeAddition` (Section 5.2): the edge `(n1, n2)` has just been added to
/// `graph` (the caller must have inserted it already).  Finds every short
/// cycle through the new edge, forms candidate clusters, merges them with
/// existing clusters sharing an edge, and returns the id of the resulting
/// cluster (or `None` when the edge closes no short cycle).
pub fn edge_addition(
    graph: &DynamicGraph,
    registry: &mut ClusterRegistry,
    n1: NodeId,
    n2: NodeId,
    quantum: u64,
) -> Option<ClusterId> {
    debug_assert!(
        graph.contains_edge(n1, n2),
        "edge must be inserted into the graph before EdgeAddition"
    );
    let mut candidates: Vec<Candidate> = Vec::new();
    // Phase 1: enumerate short cycles through (n1, n2).  Candidate order
    // feeds the absorb chain below and must not depend on storage history
    // (a checkpoint restore does not reproduce it) — `DynamicGraph`
    // iterates neighbours in ascending id order, which is exactly the
    // canonical order this loop needs.
    let n1_neighbors: Vec<NodeId> = graph.neighbors(n1).filter(|&x| x != n2).collect();
    let n2_neighbors: Vec<NodeId> = graph.neighbors(n2).filter(|&x| x != n1).collect();
    for &n3 in &n1_neighbors {
        // Triangle n1–n2–n3.
        if n2_neighbors.binary_search(&n3).is_ok() {
            candidates.push(triangle_candidate(n1, n2, n3));
        }
        // 4-cycles n1–n2–n4–n3–n1.
        for &n4 in &n2_neighbors {
            if n4 != n3 && graph.contains_edge(n3, n4) {
                candidates.push(square_candidate(n2, n1, n3, n4));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    // Phase 2: merge.  Every candidate contains the new edge, so they all
    // collapse into a single cluster together with any existing cluster
    // sharing one of the candidate edges.
    let mut result = None;
    for (nodes, edges) in candidates {
        result = Some(registry.absorb(nodes, edges, quantum));
    }
    result
}

/// `NodeAddition` (Section 5.1): node `n` has just been added to `graph`
/// together with its incident edges (the caller must have inserted them).
/// For every pair of `n`'s neighbours that is joined by an edge (rule R2)
/// or by a common neighbour (rule R1), a candidate cluster is formed and
/// merged into the registry.  Returns the ids of the clusters `n` ended up
/// in (usually zero or one).
pub fn node_addition(
    graph: &DynamicGraph,
    registry: &mut ClusterRegistry,
    n: NodeId,
    quantum: u64,
) -> Vec<ClusterId> {
    // Ascending by construction (`DynamicGraph::neighbors`), so the absorb
    // order is canonical without sorting.
    let neighbors: Vec<NodeId> = graph.neighbors(n).collect();
    if neighbors.len() < 2 {
        // "If the incoming node shows correlation with zero or one node, we
        // simply add that node (and edge) in G and do nothing."
        return Vec::new();
    }
    let mut result_ids: FxHashSet<ClusterId> = FxHashSet::default();
    for i in 0..neighbors.len() {
        for j in (i + 1)..neighbors.len() {
            let (n2, n3) = (neighbors[i], neighbors[j]);
            // Rule R2: the two neighbours are adjacent — triangle n, n2, n3.
            if graph.contains_edge(n2, n3) {
                let (nodes, edges) = triangle_candidate(n, n2, n3);
                result_ids.insert(registry.absorb(nodes, edges, quantum));
            }
            // Rule R1: the two neighbours share another common neighbour n4
            // — 4-cycle n, n2, n4, n3.  `common_neighbors` is ascending.
            for n4 in graph.common_neighbors(n2, n3) {
                if n4 == n {
                    continue;
                }
                let (nodes, edges) = square_candidate(n, n2, n4, n3);
                result_ids.insert(registry.absorb(nodes, edges, quantum));
            }
        }
    }
    // The absorb calls may have merged earlier results away; keep only ids
    // that still exist.
    let mut out: Vec<ClusterId> = result_ids
        .into_iter()
        .filter(|id| registry.get(*id).is_some())
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn graph(pairs: &[(u32, u32)]) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for &(a, b) in pairs {
            g.add_edge(n(a), n(b), 1.0);
        }
        g
    }

    #[test]
    fn edge_addition_with_no_cycle_creates_nothing() {
        let g = graph(&[(1, 2), (2, 3)]);
        let mut r = ClusterRegistry::new();
        assert_eq!(edge_addition(&g, &mut r, n(2), n(3), 0), None);
        assert!(r.is_empty());
    }

    #[test]
    fn edge_addition_closing_a_triangle_creates_a_cluster() {
        let g = graph(&[(1, 2), (2, 3), (1, 3)]);
        let mut r = ClusterRegistry::new();
        let id = edge_addition(&g, &mut r, n(1), n(3), 0).unwrap();
        let c = r.get(id).unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2), n(3)]);
        assert_eq!(c.edge_count(), 3);
        assert!(c.satisfies_scp());
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn edge_addition_closing_a_square_creates_a_cluster() {
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let mut r = ClusterRegistry::new();
        let id = edge_addition(&g, &mut r, n(4), n(1), 0).unwrap();
        let c = r.get(id).unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2), n(3), n(4)]);
        assert_eq!(c.edge_count(), 4);
        assert!(c.satisfies_scp());
    }

    #[test]
    fn figure5a_edge_addition_merges_phase1_candidates() {
        // Figure 5(a): nodes 1..5; existing edges form two triangles hanging
        // off node 4 plus node 5; the new edge (1,2) creates clusters
        // (1,2,4), (1,2,4,5)... which all merge into one cluster C3.
        let g = graph(&[(1, 4), (2, 4), (1, 5), (2, 5), (3, 1), (3, 4), (1, 2)]);
        let mut r = ClusterRegistry::new();
        let id = edge_addition(&g, &mut r, n(1), n(2), 0).unwrap();
        assert_eq!(r.len(), 1);
        let c = r.get(id).unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2), n(3), n(4), n(5)]);
        assert!(c.satisfies_scp());
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn node_addition_with_fewer_than_two_edges_does_nothing() {
        let g = graph(&[(1, 2), (2, 3), (9, 1)]);
        let mut r = ClusterRegistry::new();
        assert!(node_addition(&g, &mut r, n(9), 0).is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn node_addition_rule_r2_forms_triangle() {
        // Figure 2(b): incoming n adjacent to n1, n2 which share an edge.
        let g = graph(&[(1, 2), (0, 1), (0, 2)]);
        let mut r = ClusterRegistry::new();
        let ids = node_addition(&g, &mut r, n(0), 0);
        assert_eq!(ids.len(), 1);
        let c = r.get(ids[0]).unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn node_addition_rule_r1_forms_square() {
        // Figure 2(a): incoming n adjacent to n1, n2 which share neighbour nc.
        let g = graph(&[(1, 3), (2, 3), (0, 1), (0, 2)]);
        let mut r = ClusterRegistry::new();
        let ids = node_addition(&g, &mut r, n(0), 0);
        assert_eq!(ids.len(), 1);
        let c = r.get(ids[0]).unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(0), n(1), n(2), n(3)]);
        assert!(c.satisfies_scp());
    }

    #[test]
    fn figure5b_node_addition_merges_with_existing_clusters() {
        // Figure 5(b): clusters C1 = (1,3,4) and C2 = (2,4,5) already exist;
        // node n (=9) arrives with edges to 1 and 2, whose common neighbour
        // is 4; everything merges into one cluster C4.
        let g_before = graph(&[(1, 3), (3, 4), (1, 4), (2, 4), (4, 5), (2, 5)]);
        let mut r = ClusterRegistry::new();
        // Seed the registry with the two existing clusters via EdgeAddition.
        for (a, b) in [(1, 4), (2, 5)] {
            edge_addition(&g_before, &mut r, n(a), n(b), 0);
        }
        assert_eq!(r.len(), 2);
        // Now node 9 arrives with edges to 1 and 2.
        let mut g = g_before.clone();
        g.add_edge(n(9), n(1), 1.0);
        g.add_edge(n(9), n(2), 1.0);
        let ids = node_addition(&g, &mut r, n(9), 1);
        assert_eq!(ids.len(), 1);
        assert_eq!(r.len(), 1);
        let c = r.get(ids[0]).unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2), n(3), n(4), n(5), n(9)]);
        assert!(c.satisfies_scp());
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn node_addition_and_edge_by_edge_addition_agree() {
        // Property P3 in miniature: adding a node via NodeAddition or via
        // EdgeAddition for each incident edge yields the same clustering.
        let base = graph(&[(1, 2), (2, 3), (3, 1), (4, 5)]);
        // New node 0 with edges to 1, 3 and 4.
        let mut g = base.clone();
        g.add_edge(n(0), n(1), 1.0);
        g.add_edge(n(0), n(3), 1.0);
        g.add_edge(n(0), n(4), 1.0);

        let mut via_node = ClusterRegistry::new();
        edge_addition(&g, &mut via_node, n(3), n(1), 0); // pre-existing triangle
        node_addition(&g, &mut via_node, n(0), 1);

        let mut via_edges = ClusterRegistry::new();
        edge_addition(&g, &mut via_edges, n(3), n(1), 0);
        for b in [1, 3, 4] {
            edge_addition(&g, &mut via_edges, n(0), n(b), 1);
        }

        let mut a: Vec<Vec<NodeId>> = via_node.clusters().map(|c| c.sorted_nodes()).collect();
        let mut b: Vec<Vec<NodeId>> = via_edges.clusters().map(|c| c.sorted_nodes()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn merging_two_clusters_via_a_bridging_edge() {
        // Example 2 / Figure 3(b): two separate clusters; new edges between
        // them form a short cycle, merging them into one.
        let mut g = graph(&[
            (1, 2),
            (2, 3),
            (3, 1), // cluster 1
            (10, 11),
            (11, 12),
            (12, 10), // cluster 2
        ]);
        let mut r = ClusterRegistry::new();
        edge_addition(&g, &mut r, n(3), n(1), 0);
        edge_addition(&g, &mut r, n(12), n(10), 0);
        assert_eq!(r.len(), 2);
        // First bridging edge alone closes no short cycle yet.
        g.add_edge(n(1), n(10), 1.0);
        assert_eq!(edge_addition(&g, &mut r, n(1), n(10), 1), None);
        assert_eq!(r.len(), 2);
        // The second bridging edge forms the 4-cycle 1-10-11-2-1 and merges
        // the two clusters (Example 2 of the paper).
        g.add_edge(n(2), n(11), 1.0);
        let merged = edge_addition(&g, &mut r, n(2), n(11), 1).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(merged).unwrap().size(), 6);
        assert!(r.check_invariants().is_ok());
    }
}
