//! Cluster discovery and maintenance — Sections 4 and 5 of the paper.
//!
//! A *cluster* is an approximate majority quasi-clique (aMQC): a subgraph of
//! the AKG in which every edge lies on a cycle of length at most 4 (the
//! short-cycle property).  Clusters are discovered and maintained *locally*:
//! whenever a node or edge is added to or removed from the AKG, only the
//! neighbourhood of that change and the clusters touching it are processed.
//!
//! Module layout:
//!
//! * [`cluster`](self) — the [`Cluster`] value type and [`ClusterId`].
//! * [`registry`] — the [`ClusterRegistry`]: cluster storage plus the
//!   edge→cluster and node→clusters indexes and the shared-edge merge rule
//!   (Lemma 6).
//! * [`addition`] — the `NodeAddition` and `EdgeAddition` algorithms of
//!   Sections 5.1 and 5.2.
//! * [`deletion`] — the `NodeDeletion` and `EdgeDeletion` algorithms of
//!   Sections 5.3 and 5.4 (cycle check, articulation check, cluster
//!   splitting).
//! * [`maintainer`] — [`ClusterMaintainer`], which drives the above from the
//!   stream of [`GraphDelta`](crate::akg::GraphDelta)s produced by the AKG.

// Module docs live as `//!` inner docs in each module's own file (outer
// `///` docs here would re-scope their intra-doc links into this file).
pub mod addition;
pub mod deletion;
pub mod maintainer;
pub mod registry;

use dengraph_graph::dynamic_graph::EdgeKey;
use dengraph_graph::fxhash::FxHashSet;
use dengraph_graph::NodeId;

pub use addition::{edge_addition, node_addition};
pub use deletion::{edge_deletion, node_deletion};
pub use maintainer::ClusterMaintainer;
pub use registry::ClusterRegistry;

/// Identifier of a cluster.  Ids are never reused within one registry, so
/// downstream event tracking can rely on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u64);

impl std::fmt::Display for ClusterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One discovered cluster: a set of AKG nodes plus the set of AKG edges that
/// hold it together.
///
/// The edge set is explicit (rather than "all induced edges") because the
/// short-cycle property is a property of *edges*: an AKG edge between two
/// cluster nodes that does not participate in any short cycle within the
/// cluster is not part of the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// The cluster's id.
    pub id: ClusterId,
    /// The member nodes (always the endpoints of [`Self::edges`]).
    pub nodes: FxHashSet<NodeId>,
    /// The member edges.
    pub edges: FxHashSet<EdgeKey>,
    /// Quantum in which the cluster was first created.
    pub born_quantum: u64,
    /// Quantum in which the cluster last changed (grew, shrank or merged).
    pub updated_quantum: u64,
}

impl Cluster {
    /// Creates a cluster from explicit node and edge sets.
    pub fn new(
        id: ClusterId,
        nodes: FxHashSet<NodeId>,
        edges: FxHashSet<EdgeKey>,
        quantum: u64,
    ) -> Self {
        Self {
            id,
            nodes,
            edges,
            born_quantum: quantum,
            updated_quantum: quantum,
        }
    }

    /// Number of member nodes.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of member edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Does the cluster contain this node?
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.contains(&n)
    }

    /// Does the cluster contain this edge?
    pub fn contains_edge(&self, e: EdgeKey) -> bool {
        self.edges.contains(&e)
    }

    /// Member nodes, sorted (useful for deterministic output and tests).
    pub fn sorted_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes.iter().copied().collect();
        v.sort();
        v
    }

    /// Recomputes the node set from the edge set (useful when constructing
    /// a cluster from edges alone, or after manually editing the edge set).
    pub fn sync_nodes_to_edges(&mut self) {
        self.nodes.clear();
        // lint: allow(L001, rebuilding a set from a set; membership is order-independent)
        for e in &self.edges {
            self.nodes.insert(e.0);
            self.nodes.insert(e.1);
        }
    }

    /// Neighbours of `n` along cluster edges, sorted ascending so that
    /// consumers folding floats over them (e.g. [`crate::ranking`]) are
    /// independent of the edge set's hash-iteration order.
    pub fn cluster_neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.edges.iter().filter_map(|e| e.other(n)).collect();
        v.sort_unstable();
        v
    }

    /// Does the cluster's own edge set provide a path of length at most
    /// `max_len` between `a` and `b` that does not use the direct edge
    /// `(a, b)`?  This is the cluster-local short-cycle check used by the
    /// deletion algorithms.
    pub fn has_alternate_path(&self, a: NodeId, b: NodeId, max_len: usize) -> bool {
        let direct = EdgeKey::new(a, b);
        let mut frontier = vec![a];
        let mut visited: FxHashSet<NodeId> = FxHashSet::default();
        visited.insert(a);
        for _depth in 1..=max_len {
            let mut next = Vec::new();
            for &u in &frontier {
                // lint: allow(L001, bounded-depth reachability; the boolean result is order-independent)
                for e in &self.edges {
                    // Never traverse the direct edge itself.
                    if *e == direct {
                        continue;
                    }
                    let Some(v) = e.other(u) else { continue };
                    if v == b {
                        return true;
                    }
                    if visited.insert(v) {
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        false
    }

    /// Does every edge of the cluster lie on a short cycle (length ≤ 4)
    /// within the cluster?  This is the defining invariant (property P1).
    pub fn satisfies_scp(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.has_alternate_path(e.0, e.1, 3))
    }

    /// Serialises the cluster (id, sorted nodes, sorted edges, lifecycle
    /// quanta) to a [`dengraph_json::Value`].
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        let mut edges: Vec<EdgeKey> = self.edges.iter().copied().collect();
        edges.sort_unstable();
        Value::obj([
            ("id", Value::from(self.id.0)),
            (
                "nodes",
                Value::arr(self.sorted_nodes().into_iter().map(|n| Value::from(n.0))),
            ),
            (
                "edges",
                Value::arr(
                    edges
                        .into_iter()
                        .map(|e| Value::arr([Value::from(e.0 .0), Value::from(e.1 .0)])),
                ),
            ),
            ("born_quantum", Value::from(self.born_quantum)),
            ("updated_quantum", Value::from(self.updated_quantum)),
        ])
    }

    /// Reconstructs a cluster serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let nodes: FxHashSet<NodeId> = value
            .get("nodes")?
            .as_arr()?
            .iter()
            .map(|n| n.as_u32().map(NodeId))
            .collect::<dengraph_json::Result<_>>()?;
        let mut edges: FxHashSet<EdgeKey> = FxHashSet::default();
        for edge in value.get("edges")?.as_arr()? {
            let parts = edge.as_arr()?;
            if parts.len() != 2 {
                return Err(dengraph_json::JsonError {
                    message: format!("edge pair has {} elements", parts.len()),
                    offset: 0,
                });
            }
            edges.insert(EdgeKey::new(
                NodeId(parts[0].as_u32()?),
                NodeId(parts[1].as_u32()?),
            ));
        }
        Ok(Self {
            id: ClusterId(value.get("id")?.as_u64()?),
            nodes,
            edges,
            born_quantum: value.get("born_quantum")?.as_u64()?,
            updated_quantum: value.get("updated_quantum")?.as_u64()?,
        })
    }

    /// Appends the compact binary encoding: id, the delta-encoded sorted
    /// node column, the sorted edge list (first endpoint delta-encoded)
    /// and the lifecycle quanta.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.u64(self.id.0);
        w.delta_u32s(self.sorted_nodes().into_iter().map(|n| n.0));
        let mut edges: Vec<EdgeKey> = self.edges.iter().copied().collect();
        edges.sort_unstable();
        w.usize(edges.len());
        let mut prev_a = 0u32;
        for (i, e) in edges.iter().enumerate() {
            w.u32(if i == 0 { e.0 .0 } else { e.0 .0 - prev_a });
            prev_a = e.0 .0;
            w.u32(e.1 .0);
        }
        w.u64(self.born_quantum);
        w.u64(self.updated_quantum);
    }

    /// Reconstructs a cluster encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let id = ClusterId(r.u64()?);
        let nodes: FxHashSet<NodeId> = r.delta_u32s()?.into_iter().map(NodeId).collect();
        let edge_count = r.seq_len(2)?;
        let mut edges: FxHashSet<EdgeKey> = FxHashSet::default();
        let mut prev_a = 0u32;
        for i in 0..edge_count {
            let d = r.u32()?;
            let a = if i == 0 {
                d
            } else {
                prev_a.checked_add(d).ok_or(dengraph_json::JsonError {
                    message: "edge endpoint overflows u32".into(),
                    offset: r.pos(),
                })?
            };
            prev_a = a;
            let b = r.u32()?;
            edges.insert(EdgeKey::new(NodeId(a), NodeId(b)));
        }
        Ok(Self {
            id,
            nodes,
            edges,
            born_quantum: r.u64()?,
            updated_quantum: r.u64()?,
        })
    }
}

impl dengraph_json::Encode for Cluster {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for Cluster {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn cluster_from(edges: &[(u32, u32)]) -> Cluster {
        let edge_set: FxHashSet<EdgeKey> = edges
            .iter()
            .map(|&(a, b)| EdgeKey::new(n(a), n(b)))
            .collect();
        let mut c = Cluster::new(ClusterId(1), FxHashSet::default(), edge_set, 0);
        c.sync_nodes_to_edges();
        c
    }

    #[test]
    fn triangle_cluster_satisfies_scp() {
        let c = cluster_from(&[(1, 2), (2, 3), (1, 3)]);
        assert_eq!(c.size(), 3);
        assert_eq!(c.edge_count(), 3);
        assert!(c.satisfies_scp());
        assert!(c.has_alternate_path(n(1), n(2), 3));
        assert!(!c.has_alternate_path(n(1), n(2), 1));
    }

    #[test]
    fn four_cycle_cluster_satisfies_scp() {
        let c = cluster_from(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        assert!(c.satisfies_scp());
    }

    #[test]
    fn five_cycle_cluster_violates_scp() {
        let c = cluster_from(&[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        assert!(!c.satisfies_scp());
    }

    #[test]
    fn pendant_edge_breaks_scp() {
        let c = cluster_from(&[(1, 2), (2, 3), (1, 3), (3, 4)]);
        assert!(!c.satisfies_scp());
    }

    #[test]
    fn cluster_neighbors_and_membership() {
        let c = cluster_from(&[(1, 2), (2, 3), (1, 3)]);
        let mut nbrs = c.cluster_neighbors(n(1));
        nbrs.sort();
        assert_eq!(nbrs, vec![n(2), n(3)]);
        assert!(c.contains_node(n(1)));
        assert!(!c.contains_node(n(9)));
        assert!(c.contains_edge(EdgeKey::new(n(2), n(1))));
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn sync_nodes_follows_edges() {
        let mut c = cluster_from(&[(1, 2), (2, 3), (1, 3)]);
        c.edges.remove(&EdgeKey::new(n(1), n(3)));
        c.edges.remove(&EdgeKey::new(n(2), n(3)));
        c.sync_nodes_to_edges();
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2)]);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(ClusterId(4).to_string(), "c4");
    }
}
