//! Driving cluster maintenance from AKG deltas.
//!
//! The AKG maintainer (Section 3) reports every structural change it makes
//! as a [`GraphDelta`]; [`ClusterMaintainer`] applies the corresponding
//! Section-5 algorithm for each delta, keeping the cluster registry in sync
//! with the graph at the end of every quantum.
//!
//! ## Per-component sharding
//!
//! The paper's locality argument — dense clusters evolve inside connected
//! components of the AKG — means deltas touching different components are
//! fully independent: they read disjoint neighbourhoods and mutate
//! disjoint clusters.  The sharded paths exploit this by partitioning the
//! quantum's deltas by connected component, processing each shard on the
//! worker pool against its own sub-registry, and merging serially.  Fresh
//! cluster ids are allocated in a placeholder space per shard and
//! renumbered during the merge in `(delta index, allocation order)` —
//! exactly the order the serial loop allocates in — so every sharded path
//! is **bit-identical** to the serial one, cluster ids included
//! (`tests/parallel_determinism.rs` gates it).
//!
//! Two paths derive the partition:
//!
//! * [`ClusterMaintainer::apply_deltas_indexed`] (the hot path) reads the
//!   persistent [`ComponentIndex`] the AKG maintainer keeps in lock step
//!   with the graph, layering a **transient overlay union-find over this
//!   quantum's delta endpoints** on top.  The overlay is what keeps a
//!   deletion repair co-sharded with the cluster it repairs: a live
//!   cluster's edges are a subset of the *pre-quantum* graph, and every
//!   pre-quantum edge is either still in the post-quantum graph (so its
//!   endpoints share a persistent component) or was removed this quantum
//!   (so its endpoints are unioned by its `EdgeRemoved` delta) — hence
//!   every cluster stays inside a single overlay component and no walk
//!   over cluster edges is needed.  Partitioning cost: O(deltas), not
//!   O(AKG edges).
//! * [`ClusterMaintainer::apply_deltas_with`] recomputes the partition
//!   from scratch by unioning every AKG edge plus the delta endpoints and
//!   the live cluster edges — kept as the `ComponentIndexMode::Rebuild`
//!   ablation baseline the bench compares against.

use dengraph_graph::fxhash::FxHashMap;
use dengraph_graph::{ComponentIndex, DynamicGraph, NodeId};
use dengraph_parallel::{par_map_indexed, Parallelism};

use crate::akg::GraphDelta;

use super::addition::edge_addition;
use super::deletion::{edge_deletion, node_deletion};
use super::registry::ClusterRegistry;
use super::{Cluster, ClusterId};

/// Base of the placeholder cluster-id space used by maintenance shards.
/// Real ids are allocated sequentially from 0, so anything at or above the
/// base can only be a placeholder awaiting renumbering.
const PLACEHOLDER_BASE: u64 = 1 << 62;

/// Placeholder id budget per shard and per quantum — far beyond any real
/// allocation count.
const PLACEHOLDER_BLOCK: u64 = 1 << 32;

/// Per-quantum summary of cluster maintenance work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Edge-addition operations processed.
    pub edge_additions: usize,
    /// Edge-deletion operations processed.
    pub edge_deletions: usize,
    /// Node-removal operations processed.
    pub node_removals: usize,
    /// Clusters that were created or merged into during the quantum.
    pub clusters_touched: usize,
}

impl MaintenanceStats {
    /// Serialises the statistics to a [`dengraph_json::Value`].
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("edge_additions", Value::from(self.edge_additions)),
            ("edge_deletions", Value::from(self.edge_deletions)),
            ("node_removals", Value::from(self.node_removals)),
            ("clusters_touched", Value::from(self.clusters_touched)),
        ])
    }

    /// Reconstructs statistics serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            edge_additions: value.get("edge_additions")?.as_usize()?,
            edge_deletions: value.get("edge_deletions")?.as_usize()?,
            node_removals: value.get("node_removals")?.as_usize()?,
            clusters_touched: value.get("clusters_touched")?.as_usize()?,
        })
    }

    /// Appends the compact binary encoding (four varints).
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.usize(self.edge_additions);
        w.usize(self.edge_deletions);
        w.usize(self.node_removals);
        w.usize(self.clusters_touched);
    }

    /// Reconstructs statistics encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Ok(Self {
            edge_additions: r.usize()?,
            edge_deletions: r.usize()?,
            node_removals: r.usize()?,
            clusters_touched: r.usize()?,
        })
    }
}

impl dengraph_json::Encode for MaintenanceStats {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for MaintenanceStats {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// Applies AKG deltas to the cluster registry.
#[derive(Debug, Default, PartialEq)]
pub struct ClusterMaintainer {
    registry: ClusterRegistry,
    last_stats: MaintenanceStats,
}

impl ClusterMaintainer {
    /// Creates a maintainer with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &ClusterRegistry {
        &self.registry
    }

    /// Statistics of the most recent [`Self::apply_deltas`] call.
    pub fn last_stats(&self) -> MaintenanceStats {
        self.last_stats
    }

    /// Iterates over all live clusters.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.registry.clusters()
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.registry.len()
    }

    /// Looks up a cluster.
    pub fn get(&self, id: ClusterId) -> Option<&Cluster> {
        self.registry.get(id)
    }

    /// Serialises the maintainer (registry plus last stats).
    pub fn to_json(&self) -> dengraph_json::Value {
        dengraph_json::Value::obj([
            ("registry", self.registry.to_json()),
            ("last_stats", self.last_stats.to_json()),
        ])
    }

    /// Reconstructs a maintainer serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            registry: ClusterRegistry::from_json(value.get("registry")?)?,
            last_stats: MaintenanceStats::from_json(value.get("last_stats")?)?,
        })
    }

    /// Appends the compact binary encoding (registry plus last stats).
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.registry.to_bin(w);
        self.last_stats.to_bin(w);
    }

    /// Reconstructs a maintainer encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Ok(Self {
            registry: ClusterRegistry::from_bin(r)?,
            last_stats: MaintenanceStats::from_bin(r)?,
        })
    }

    /// Applies one quantum's worth of AKG deltas.  `graph` must be the AKG
    /// *after* all deltas have been applied to it (which is how the AKG
    /// maintainer hands it over); Lemma 5 guarantees the per-delta
    /// processing order does not change the final clustering.
    pub fn apply_deltas(&mut self, graph: &DynamicGraph, deltas: &[GraphDelta], quantum: u64) {
        self.apply_deltas_with(graph, deltas, quantum, Parallelism::Serial);
    }

    /// Like [`Self::apply_deltas`], but shards the work by AKG connected
    /// component over the worker pool when `parallelism` allows.  The
    /// sharded path is bit-identical to the serial one — same clusters,
    /// same cluster ids, same statistics.
    pub fn apply_deltas_with(
        &mut self,
        graph: &DynamicGraph,
        deltas: &[GraphDelta],
        quantum: u64,
        parallelism: Parallelism,
    ) {
        let stats = if parallelism.is_parallel() && deltas.len() >= 2 {
            self.apply_deltas_sharded(graph, deltas, quantum, parallelism)
        } else {
            None
        };
        self.finish_quantum(graph, deltas, quantum, stats);
    }

    /// The stage-3 hot path: like [`Self::apply_deltas_with`], but derives
    /// the shard partition from the persistent [`ComponentIndex`] the AKG
    /// maintainer keeps in lock step with `graph`, instead of re-walking
    /// every AKG edge.  A transient union-find over this quantum's delta
    /// endpoints is layered on top of the persistent components so deletion
    /// repairs stay co-sharded with the clusters they repair (see the module
    /// docs for why delta unions alone suffice).  Partitioning is O(deltas);
    /// the result is bit-identical to the serial and from-scratch paths —
    /// same clusters, same cluster ids, same statistics.
    ///
    /// `index` must be the component index of `graph` (i.e. of the
    /// *post-delta* AKG, which is how [`crate::akg::AkgMaintainer`] hands
    /// both over).
    pub fn apply_deltas_indexed(
        &mut self,
        graph: &DynamicGraph,
        index: &ComponentIndex,
        deltas: &[GraphDelta],
        quantum: u64,
        parallelism: Parallelism,
    ) {
        let stats = if parallelism.is_parallel() && deltas.len() >= 2 {
            let mut overlay = DeltaOverlay::new(index);
            for delta in deltas {
                match *delta {
                    GraphDelta::NodeAdded { .. } | GraphDelta::NodeRemoved { .. } => {
                        // Pure node deltas carry no connectivity; their
                        // shard key resolves through the overlay on demand.
                    }
                    GraphDelta::EdgeAdded { a, b, .. }
                    | GraphDelta::EdgeWeightUpdated { a, b, .. }
                    | GraphDelta::EdgeRemoved { a, b } => {
                        overlay.union(a, b);
                    }
                }
            }
            self.partition_and_run(graph, deltas, quantum, parallelism, |n| overlay.root_of(n))
        } else {
            None
        };
        self.finish_quantum(graph, deltas, quantum, stats);
    }

    /// Installs a sharded outcome, or falls back to the serial per-delta
    /// loop when no fan-out happened, then checks registry invariants.
    fn finish_quantum(
        &mut self,
        graph: &DynamicGraph,
        deltas: &[GraphDelta],
        quantum: u64,
        stats: Option<MaintenanceStats>,
    ) {
        let stats = stats.unwrap_or_else(|| {
            let mut stats = MaintenanceStats::default();
            for delta in deltas {
                apply_one_delta(graph, &mut self.registry, *delta, quantum, &mut stats);
            }
            stats
        });
        self.last_stats = stats;
        debug_assert!(
            self.registry.check_invariants().is_ok(),
            "{:?}",
            self.registry.check_invariants()
        );
    }

    /// The from-scratch sharded path (`ComponentIndexMode::Rebuild`).
    /// Returns `None` when the quantum's deltas all live in one connected
    /// component (nothing to fan out); the caller then runs the serial
    /// loop.
    fn apply_deltas_sharded(
        &mut self,
        graph: &DynamicGraph,
        deltas: &[GraphDelta],
        quantum: u64,
        parallelism: Parallelism,
    ) -> Option<MaintenanceStats> {
        // Connected components over the post-delta graph *plus* the delta
        // edges and the live cluster edges: removed structure must still
        // connect, so a deletion repair lands in the same shard as the
        // cluster it repairs.  This walks the whole AKG once per parallel
        // quantum — the cost [`Self::apply_deltas_indexed`] exists to
        // avoid; it is kept as the ablation baseline the bench's dense
        // profile measures the index against.  (Isolated nodes need no
        // eager `ensure` here: the union-find interns any node the shard
        // grouping or cluster-move loop asks about on demand.)
        let mut components = NodeComponents::default();
        for (key, _) in graph.edges() {
            components.union(key.0, key.1);
        }
        for delta in deltas {
            match *delta {
                GraphDelta::NodeAdded { node } | GraphDelta::NodeRemoved { node } => {
                    components.ensure(node);
                }
                GraphDelta::EdgeAdded { a, b, .. }
                | GraphDelta::EdgeWeightUpdated { a, b, .. }
                | GraphDelta::EdgeRemoved { a, b } => {
                    components.union(a, b);
                }
            }
        }
        for cluster in self.registry.clusters() {
            for e in &cluster.edges {
                components.union(e.0, e.1);
            }
        }
        self.partition_and_run(graph, deltas, quantum, parallelism, |n| {
            components.root(n) as u64
        })
    }

    /// Shared tail of both sharded paths: group the deltas into shards by
    /// the component root `root_of` reports, move affected clusters in,
    /// fan the shards out over the worker pool and merge canonically.
    /// `root_of` must map two nodes to the same key exactly when a single
    /// delta's processing may touch both of their neighbourhoods.
    fn partition_and_run(
        &mut self,
        graph: &DynamicGraph,
        deltas: &[GraphDelta],
        quantum: u64,
        parallelism: Parallelism,
        mut root_of: impl FnMut(NodeId) -> u64,
    ) -> Option<MaintenanceStats> {
        // One shard per component that receives at least one delta,
        // keeping each shard's deltas in stream order.
        let mut shard_of_root: FxHashMap<u64, usize> = FxHashMap::default();
        let mut shards: Vec<Shard> = Vec::new();
        for (idx, delta) in deltas.iter().enumerate() {
            let node = match *delta {
                GraphDelta::NodeAdded { node } | GraphDelta::NodeRemoved { node } => node,
                GraphDelta::EdgeAdded { a, .. }
                | GraphDelta::EdgeWeightUpdated { a, .. }
                | GraphDelta::EdgeRemoved { a, .. } => a,
            };
            let root = root_of(node);
            let shard = *shard_of_root.entry(root).or_insert_with(|| {
                shards.push(Shard::default());
                shards.len() - 1
            });
            shards[shard].deltas.push((idx, *delta));
        }
        if shards.len() < 2 {
            return None;
        }
        // Move every cluster whose component receives deltas into its
        // shard; clusters in untouched components stay in place.
        let cluster_ids: Vec<ClusterId> = {
            let mut ids: Vec<ClusterId> = self.registry.clusters().map(|c| c.id).collect();
            ids.sort_unstable();
            ids
        };
        for id in cluster_ids {
            let node = *self
                .registry
                .get(id)
                .expect("live cluster")
                .nodes
                .iter()
                .next()
                .expect("clusters are non-empty");
            let root = root_of(node);
            if let Some(&shard) = shard_of_root.get(&root) {
                let cluster = self.registry.remove(id).expect("live cluster");
                shards[shard].seeds.push(cluster);
            }
        }

        // Fan the shards out.  Each works on its own sub-registry with a
        // disjoint placeholder id block, recording which delta triggered
        // each fresh-id allocation.
        let outcomes = par_map_indexed(parallelism, &shards, |shard_idx, shard| {
            let mut registry = ClusterRegistry::with_next_id(
                PLACEHOLDER_BASE + shard_idx as u64 * PLACEHOLDER_BLOCK,
            );
            for seed in &shard.seeds {
                registry.install(seed.clone());
            }
            let mut stats = MaintenanceStats::default();
            let mut allocations: Vec<(usize, u64)> = Vec::new();
            for &(delta_idx, delta) in &shard.deltas {
                let before = registry.next_id();
                apply_one_delta(graph, &mut registry, delta, quantum, &mut stats);
                for placeholder in before..registry.next_id() {
                    allocations.push((delta_idx, placeholder));
                }
            }
            (registry, stats, allocations)
        });

        // Canonical merge: renumber placeholder ids in (delta index,
        // allocation order) — the order the serial loop allocates in —
        // then install every shard's clusters back into the registry.
        let mut all_allocations: Vec<(usize, u64)> = outcomes
            .iter()
            .flat_map(|(_, _, allocations)| allocations.iter().copied())
            .collect();
        all_allocations.sort_unstable();
        let mut next_id = self.registry.next_id();
        let final_ids: FxHashMap<u64, u64> = all_allocations
            .into_iter()
            .map(|(_, placeholder)| {
                let id = next_id;
                next_id += 1;
                (placeholder, id)
            })
            .collect();
        let mut total = MaintenanceStats::default();
        for (registry, stats, _) in outcomes {
            total.edge_additions += stats.edge_additions;
            total.edge_deletions += stats.edge_deletions;
            total.node_removals += stats.node_removals;
            total.clusters_touched += stats.clusters_touched;
            for mut cluster in registry.into_clusters() {
                if cluster.id.0 >= PLACEHOLDER_BASE {
                    cluster.id = ClusterId(final_ids[&cluster.id.0]);
                }
                self.registry.install(cluster);
            }
        }
        self.registry.set_next_id(next_id);
        Some(total)
    }
}

impl dengraph_json::Encode for ClusterMaintainer {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for ClusterMaintainer {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// Applies a single delta against a registry — the shared body of the
/// serial loop and the per-shard loop.
fn apply_one_delta(
    graph: &DynamicGraph,
    registry: &mut ClusterRegistry,
    delta: GraphDelta,
    quantum: u64,
    stats: &mut MaintenanceStats,
) {
    match delta {
        GraphDelta::NodeAdded { .. } => {
            // A node with no edges cannot be in any cluster; its
            // edges (if any) arrive as EdgeAdded deltas.
        }
        GraphDelta::EdgeAdded { a, b, .. } => {
            stats.edge_additions += 1;
            if edge_addition(graph, registry, a, b, quantum).is_some() {
                stats.clusters_touched += 1;
            }
        }
        GraphDelta::EdgeWeightUpdated { .. } => {
            // Weight changes do not affect cluster structure; the
            // ranking function reads weights straight from the graph.
        }
        GraphDelta::EdgeRemoved { a, b } => {
            stats.edge_deletions += 1;
            edge_deletion(registry, a, b, quantum);
        }
        GraphDelta::NodeRemoved { node } => {
            stats.node_removals += 1;
            // Incident edges have already been reported as
            // EdgeRemoved, so normally nothing is left; this call
            // covers direct API use where a node is dropped in one go.
            node_deletion(registry, node, quantum);
        }
    }
}

/// One maintenance shard: the deltas of one connected component (with
/// their global stream indices) plus the component's live clusters.
#[derive(Debug, Default)]
struct Shard {
    deltas: Vec<(usize, GraphDelta)>,
    seeds: Vec<Cluster>,
}

/// Union–find over arbitrary `NodeId`s (interned to dense slots on first
/// touch).
#[derive(Debug, Default)]
struct NodeComponents {
    slots: FxHashMap<NodeId, usize>,
    parent: Vec<usize>,
}

impl NodeComponents {
    fn ensure(&mut self, n: NodeId) -> usize {
        match self.slots.entry(n) {
            std::collections::hash_map::Entry::Occupied(o) => *o.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let slot = self.parent.len();
                v.insert(slot);
                self.parent.push(slot);
                slot
            }
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: NodeId, b: NodeId) {
        let (sa, sb) = (self.ensure(a), self.ensure(b));
        let (ra, rb) = (self.find(sa), self.find(sb));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    fn root(&mut self, n: NodeId) -> usize {
        let slot = self.ensure(n);
        self.find(slot)
    }
}

/// Key-space tag for overlay nodes that are absent from the persistent
/// index (i.e. removed from the graph this quantum).  Persistent root
/// slots are dense `u32` indices, so every untagged key stays below it.
const OVERLAY_REMOVED_TAG: u64 = 1 << 32;

/// Transient per-quantum union-find layered on top of the persistent
/// [`ComponentIndex`]: each key is either a persistent component's root
/// slot (for nodes still in the graph) or a tagged raw node id (for nodes
/// removed this quantum, which the index no longer tracks).  Only this
/// quantum's delta endpoints are ever unioned, so its size — and the whole
/// partitioning step — is O(deltas) regardless of AKG size.
struct DeltaOverlay<'a> {
    index: &'a ComponentIndex,
    /// Sparse parent map: a key absent from the map is its own root.
    parent: FxHashMap<u64, u64>,
}

impl<'a> DeltaOverlay<'a> {
    fn new(index: &'a ComponentIndex) -> Self {
        Self {
            index,
            parent: FxHashMap::default(),
        }
    }

    fn key(&self, n: NodeId) -> u64 {
        match self.index.root_slot(n) {
            Some(slot) => u64::from(slot),
            None => OVERLAY_REMOVED_TAG | u64::from(n.0),
        }
    }

    fn find(&mut self, start: u64) -> u64 {
        let mut root = start;
        while let Some(&p) = self.parent.get(&root) {
            root = p;
        }
        // Full path compression: repoint every key on the walked chain.
        let mut cur = start;
        while cur != root {
            let next = self.parent.insert(cur, root).unwrap_or(root);
            cur = next;
        }
        root
    }

    fn union(&mut self, a: NodeId, b: NodeId) {
        let (ka, kb) = (self.key(a), self.key(b));
        let (ra, rb) = (self.find(ka), self.find(kb));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn root_of(&mut self, n: NodeId) -> u64 {
        let key = self.key(n);
        self.find(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_graph::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Helper that mirrors what the AKG maintainer does: apply the change to
    /// the graph, then report the delta.
    struct Sim {
        graph: DynamicGraph,
        maintainer: ClusterMaintainer,
        quantum: u64,
    }

    impl Sim {
        fn new() -> Self {
            Self {
                graph: DynamicGraph::new(),
                maintainer: ClusterMaintainer::new(),
                quantum: 0,
            }
        }

        fn add_edge(&mut self, a: u32, b: u32) {
            self.graph.add_edge(n(a), n(b), 1.0);
            self.maintainer.apply_deltas(
                &self.graph.clone(),
                &[GraphDelta::EdgeAdded {
                    a: n(a),
                    b: n(b),
                    weight: 1.0,
                }],
                self.quantum,
            );
        }

        fn remove_edge(&mut self, a: u32, b: u32) {
            self.graph.remove_edge(n(a), n(b));
            self.maintainer.apply_deltas(
                &self.graph.clone(),
                &[GraphDelta::EdgeRemoved { a: n(a), b: n(b) }],
                self.quantum,
            );
        }

        fn remove_node(&mut self, a: u32) {
            let removed = self.graph.remove_node(n(a));
            let mut deltas: Vec<GraphDelta> = removed
                .iter()
                .map(|(e, _)| GraphDelta::EdgeRemoved { a: e.0, b: e.1 })
                .collect();
            deltas.push(GraphDelta::NodeRemoved { node: n(a) });
            self.maintainer
                .apply_deltas(&self.graph.clone(), &deltas, self.quantum);
        }
    }

    #[test]
    fn building_a_triangle_creates_one_cluster() {
        let mut sim = Sim::new();
        sim.add_edge(1, 2);
        sim.add_edge(2, 3);
        assert_eq!(sim.maintainer.cluster_count(), 0);
        sim.add_edge(1, 3);
        assert_eq!(sim.maintainer.cluster_count(), 1);
        let c = sim.maintainer.clusters().next().unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn growing_and_shrinking_a_cluster() {
        let mut sim = Sim::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 1)] {
            sim.add_edge(a, b);
        }
        assert_eq!(sim.maintainer.cluster_count(), 1);
        assert_eq!(sim.maintainer.clusters().next().unwrap().size(), 4);
        // Removing the chord keeps the 4-cycle alive...
        sim.remove_edge(1, 3);
        assert_eq!(sim.maintainer.cluster_count(), 1);
        assert_eq!(sim.maintainer.clusters().next().unwrap().size(), 4);
        // ...but removing a cycle edge dissolves it.
        sim.remove_edge(3, 4);
        assert_eq!(sim.maintainer.cluster_count(), 0);
    }

    #[test]
    fn node_removal_via_deltas_matches_direct_node_deletion() {
        let edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5), (1, 4)];
        // Path A: remove node 3 edge by edge (what the AKG emits).
        let mut sim = Sim::new();
        for (a, b) in edges {
            sim.add_edge(a, b);
        }
        sim.remove_node(3);
        // Path B: same construction, then direct NodeDeletion call.
        let mut graph = DynamicGraph::new();
        let mut registry = ClusterRegistry::new();
        for (a, b) in edges {
            graph.add_edge(n(a), n(b), 1.0);
            edge_addition(&graph, &mut registry, n(a), n(b), 0);
        }
        graph.remove_node(n(3));
        node_deletion(&mut registry, n(3), 0);

        let mut a: Vec<Vec<NodeId>> = sim
            .maintainer
            .clusters()
            .map(|c| c.sorted_nodes())
            .collect();
        let mut b: Vec<Vec<NodeId>> = registry.clusters().map(|c| c.sorted_nodes()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_are_tracked() {
        let mut sim = Sim::new();
        sim.add_edge(1, 2);
        sim.add_edge(2, 3);
        sim.add_edge(1, 3);
        assert_eq!(sim.maintainer.last_stats().edge_additions, 1);
        assert_eq!(sim.maintainer.last_stats().clusters_touched, 1);
        sim.remove_edge(1, 3);
        assert_eq!(sim.maintainer.last_stats().edge_deletions, 1);
    }

    /// Builds a multi-component delta stream (several disjoint triangle /
    /// square families growing, merging and dissolving) and checks both
    /// sharded paths — from-scratch partition and persistent-index
    /// partition — are bit-identical to the serial one: clusters, ids,
    /// indexes and stats.  The schedule includes node removals, so
    /// deletion-split quanta (components falling apart) are exercised.
    #[test]
    fn sharded_maintenance_is_bit_identical_to_serial() {
        // Deterministic pseudo-random edge schedule over 6 disjoint node
        // families (components), interleaved so every quantum's delta
        // batch spans several components.
        let mut state = 0x0DDB_1A5Eu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut graph = DynamicGraph::new();
        let mut index = ComponentIndex::new();
        let mut serial = ClusterMaintainer::new();
        let mut sharded = ClusterMaintainer::new();
        let mut indexed = ClusterMaintainer::new();
        for quantum in 0..30u64 {
            let mut deltas: Vec<GraphDelta> = Vec::new();
            // `apply_deltas` is specified against the *post-quantum* graph,
            // so each edge may change at most once per quantum (exactly how
            // the AKG emits deltas).  Node removal goes first; later edge
            // ops skip anything already touched.  The component index is
            // maintained in lock step with the graph, as the AKG
            // maintainer does.
            let mut touched: dengraph_graph::fxhash::FxHashSet<
                dengraph_graph::dynamic_graph::EdgeKey,
            > = Default::default();
            if quantum % 5 == 4 {
                let node = n((next() % 6) as u32 * 100 + (next() % 8) as u32);
                for (e, _) in graph.remove_node(node) {
                    touched.insert(e);
                    deltas.push(GraphDelta::EdgeRemoved { a: e.0, b: e.1 });
                }
                index.remove_node(&graph, node);
                deltas.push(GraphDelta::NodeRemoved { node });
            }
            for _ in 0..6 {
                let family = (next() % 6) as u32 * 100;
                let a = n(family + (next() % 8) as u32);
                let b = n(family + (next() % 8) as u32);
                let choice = next() % 4;
                if a == b || !touched.insert(dengraph_graph::dynamic_graph::EdgeKey::new(a, b)) {
                    continue;
                }
                if choice == 0 && graph.contains_edge(a, b) {
                    graph.remove_edge(a, b);
                    index.remove_edge(&graph, a, b);
                    deltas.push(GraphDelta::EdgeRemoved { a, b });
                } else if !graph.contains_edge(a, b) {
                    graph.add_edge(a, b, 1.0);
                    index.add_edge(a, b);
                    deltas.push(GraphDelta::EdgeAdded { a, b, weight: 1.0 });
                } else {
                    graph.set_edge_weight(a, b, 0.5);
                    deltas.push(GraphDelta::EdgeWeightUpdated { a, b, weight: 0.5 });
                }
            }
            index
                .validate_against(&graph)
                .expect("lock-step index matches graph");
            serial.apply_deltas(&graph, &deltas, quantum);
            sharded.apply_deltas_with(&graph, &deltas, quantum, Parallelism::Threads(4));
            indexed.apply_deltas_indexed(&graph, &index, &deltas, quantum, Parallelism::Threads(4));
            assert_eq!(
                serial, sharded,
                "sharded registry diverged from serial at quantum {quantum}"
            );
            assert_eq!(
                serial, indexed,
                "index-partitioned registry diverged from serial at quantum {quantum}"
            );
            assert!(serial.registry().check_invariants().is_ok());
        }
        assert!(
            serial.cluster_count() > 0 || serial.last_stats().edge_deletions > 0,
            "fixture must exercise real cluster maintenance"
        );
    }

    #[test]
    fn weight_updates_do_not_change_structure() {
        let mut sim = Sim::new();
        sim.add_edge(1, 2);
        sim.add_edge(2, 3);
        sim.add_edge(1, 3);
        let before: Vec<_> = sim
            .maintainer
            .clusters()
            .map(|c| c.sorted_nodes())
            .collect();
        sim.maintainer.apply_deltas(
            &sim.graph.clone(),
            &[GraphDelta::EdgeWeightUpdated {
                a: n(1),
                b: n(2),
                weight: 0.9,
            }],
            1,
        );
        let after: Vec<_> = sim
            .maintainer
            .clusters()
            .map(|c| c.sorted_nodes())
            .collect();
        assert_eq!(before, after);
    }
}
