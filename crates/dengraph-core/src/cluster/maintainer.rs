//! Driving cluster maintenance from AKG deltas.
//!
//! The AKG maintainer (Section 3) reports every structural change it makes
//! as a [`GraphDelta`]; [`ClusterMaintainer`] applies the corresponding
//! Section-5 algorithm for each delta, keeping the cluster registry in sync
//! with the graph at the end of every quantum.

use dengraph_graph::DynamicGraph;

use crate::akg::GraphDelta;

use super::addition::edge_addition;
use super::deletion::{edge_deletion, node_deletion};
use super::registry::ClusterRegistry;
use super::{Cluster, ClusterId};

/// Per-quantum summary of cluster maintenance work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Edge-addition operations processed.
    pub edge_additions: usize,
    /// Edge-deletion operations processed.
    pub edge_deletions: usize,
    /// Node-removal operations processed.
    pub node_removals: usize,
    /// Clusters that were created or merged into during the quantum.
    pub clusters_touched: usize,
}

impl MaintenanceStats {
    /// Serialises the statistics to a [`dengraph_json::Value`].
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("edge_additions", Value::from(self.edge_additions)),
            ("edge_deletions", Value::from(self.edge_deletions)),
            ("node_removals", Value::from(self.node_removals)),
            ("clusters_touched", Value::from(self.clusters_touched)),
        ])
    }

    /// Reconstructs statistics serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            edge_additions: value.get("edge_additions")?.as_usize()?,
            edge_deletions: value.get("edge_deletions")?.as_usize()?,
            node_removals: value.get("node_removals")?.as_usize()?,
            clusters_touched: value.get("clusters_touched")?.as_usize()?,
        })
    }
}

/// Applies AKG deltas to the cluster registry.
#[derive(Debug, Default, PartialEq)]
pub struct ClusterMaintainer {
    registry: ClusterRegistry,
    last_stats: MaintenanceStats,
}

impl ClusterMaintainer {
    /// Creates a maintainer with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &ClusterRegistry {
        &self.registry
    }

    /// Statistics of the most recent [`Self::apply_deltas`] call.
    pub fn last_stats(&self) -> MaintenanceStats {
        self.last_stats
    }

    /// Iterates over all live clusters.
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        self.registry.clusters()
    }

    /// Number of live clusters.
    pub fn cluster_count(&self) -> usize {
        self.registry.len()
    }

    /// Looks up a cluster.
    pub fn get(&self, id: ClusterId) -> Option<&Cluster> {
        self.registry.get(id)
    }

    /// Serialises the maintainer (registry plus last stats).
    pub fn to_json(&self) -> dengraph_json::Value {
        dengraph_json::Value::obj([
            ("registry", self.registry.to_json()),
            ("last_stats", self.last_stats.to_json()),
        ])
    }

    /// Reconstructs a maintainer serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            registry: ClusterRegistry::from_json(value.get("registry")?)?,
            last_stats: MaintenanceStats::from_json(value.get("last_stats")?)?,
        })
    }

    /// Applies one quantum's worth of AKG deltas.  `graph` must be the AKG
    /// *after* all deltas have been applied to it (which is how the AKG
    /// maintainer hands it over); Lemma 5 guarantees the per-delta
    /// processing order does not change the final clustering.
    pub fn apply_deltas(&mut self, graph: &DynamicGraph, deltas: &[GraphDelta], quantum: u64) {
        let mut stats = MaintenanceStats::default();
        for delta in deltas {
            match *delta {
                GraphDelta::NodeAdded { .. } => {
                    // A node with no edges cannot be in any cluster; its
                    // edges (if any) arrive as EdgeAdded deltas.
                }
                GraphDelta::EdgeAdded { a, b, .. } => {
                    stats.edge_additions += 1;
                    if edge_addition(graph, &mut self.registry, a, b, quantum).is_some() {
                        stats.clusters_touched += 1;
                    }
                }
                GraphDelta::EdgeWeightUpdated { .. } => {
                    // Weight changes do not affect cluster structure; the
                    // ranking function reads weights straight from the graph.
                }
                GraphDelta::EdgeRemoved { a, b } => {
                    stats.edge_deletions += 1;
                    edge_deletion(&mut self.registry, a, b, quantum);
                }
                GraphDelta::NodeRemoved { node } => {
                    stats.node_removals += 1;
                    // Incident edges have already been reported as
                    // EdgeRemoved, so normally nothing is left; this call
                    // covers direct API use where a node is dropped in one go.
                    node_deletion(&mut self.registry, node, quantum);
                }
            }
        }
        self.last_stats = stats;
        debug_assert!(
            self.registry.check_invariants().is_ok(),
            "{:?}",
            self.registry.check_invariants()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_graph::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Helper that mirrors what the AKG maintainer does: apply the change to
    /// the graph, then report the delta.
    struct Sim {
        graph: DynamicGraph,
        maintainer: ClusterMaintainer,
        quantum: u64,
    }

    impl Sim {
        fn new() -> Self {
            Self {
                graph: DynamicGraph::new(),
                maintainer: ClusterMaintainer::new(),
                quantum: 0,
            }
        }

        fn add_edge(&mut self, a: u32, b: u32) {
            self.graph.add_edge(n(a), n(b), 1.0);
            self.maintainer.apply_deltas(
                &self.graph.clone(),
                &[GraphDelta::EdgeAdded {
                    a: n(a),
                    b: n(b),
                    weight: 1.0,
                }],
                self.quantum,
            );
        }

        fn remove_edge(&mut self, a: u32, b: u32) {
            self.graph.remove_edge(n(a), n(b));
            self.maintainer.apply_deltas(
                &self.graph.clone(),
                &[GraphDelta::EdgeRemoved { a: n(a), b: n(b) }],
                self.quantum,
            );
        }

        fn remove_node(&mut self, a: u32) {
            let removed = self.graph.remove_node(n(a));
            let mut deltas: Vec<GraphDelta> = removed
                .iter()
                .map(|(e, _)| GraphDelta::EdgeRemoved { a: e.0, b: e.1 })
                .collect();
            deltas.push(GraphDelta::NodeRemoved { node: n(a) });
            self.maintainer
                .apply_deltas(&self.graph.clone(), &deltas, self.quantum);
        }
    }

    #[test]
    fn building_a_triangle_creates_one_cluster() {
        let mut sim = Sim::new();
        sim.add_edge(1, 2);
        sim.add_edge(2, 3);
        assert_eq!(sim.maintainer.cluster_count(), 0);
        sim.add_edge(1, 3);
        assert_eq!(sim.maintainer.cluster_count(), 1);
        let c = sim.maintainer.clusters().next().unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(1), n(2), n(3)]);
    }

    #[test]
    fn growing_and_shrinking_a_cluster() {
        let mut sim = Sim::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 1)] {
            sim.add_edge(a, b);
        }
        assert_eq!(sim.maintainer.cluster_count(), 1);
        assert_eq!(sim.maintainer.clusters().next().unwrap().size(), 4);
        // Removing the chord keeps the 4-cycle alive...
        sim.remove_edge(1, 3);
        assert_eq!(sim.maintainer.cluster_count(), 1);
        assert_eq!(sim.maintainer.clusters().next().unwrap().size(), 4);
        // ...but removing a cycle edge dissolves it.
        sim.remove_edge(3, 4);
        assert_eq!(sim.maintainer.cluster_count(), 0);
    }

    #[test]
    fn node_removal_via_deltas_matches_direct_node_deletion() {
        let edges = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5), (1, 4)];
        // Path A: remove node 3 edge by edge (what the AKG emits).
        let mut sim = Sim::new();
        for (a, b) in edges {
            sim.add_edge(a, b);
        }
        sim.remove_node(3);
        // Path B: same construction, then direct NodeDeletion call.
        let mut graph = DynamicGraph::new();
        let mut registry = ClusterRegistry::new();
        for (a, b) in edges {
            graph.add_edge(n(a), n(b), 1.0);
            edge_addition(&graph, &mut registry, n(a), n(b), 0);
        }
        graph.remove_node(n(3));
        node_deletion(&mut registry, n(3), 0);

        let mut a: Vec<Vec<NodeId>> = sim
            .maintainer
            .clusters()
            .map(|c| c.sorted_nodes())
            .collect();
        let mut b: Vec<Vec<NodeId>> = registry.clusters().map(|c| c.sorted_nodes()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_are_tracked() {
        let mut sim = Sim::new();
        sim.add_edge(1, 2);
        sim.add_edge(2, 3);
        sim.add_edge(1, 3);
        assert_eq!(sim.maintainer.last_stats().edge_additions, 1);
        assert_eq!(sim.maintainer.last_stats().clusters_touched, 1);
        sim.remove_edge(1, 3);
        assert_eq!(sim.maintainer.last_stats().edge_deletions, 1);
    }

    #[test]
    fn weight_updates_do_not_change_structure() {
        let mut sim = Sim::new();
        sim.add_edge(1, 2);
        sim.add_edge(2, 3);
        sim.add_edge(1, 3);
        let before: Vec<_> = sim
            .maintainer
            .clusters()
            .map(|c| c.sorted_nodes())
            .collect();
        sim.maintainer.apply_deltas(
            &sim.graph.clone(),
            &[GraphDelta::EdgeWeightUpdated {
                a: n(1),
                b: n(2),
                weight: 0.9,
            }],
            1,
        );
        let after: Vec<_> = sim
            .maintainer
            .clusters()
            .map(|c| c.sorted_nodes())
            .collect();
        assert_eq!(before, after);
    }
}
