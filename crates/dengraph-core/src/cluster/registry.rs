//! Cluster storage and indexes.
//!
//! The registry owns all live clusters and maintains two indexes:
//!
//! * `edge → cluster` — an AKG edge belongs to at most one cluster (two
//!   clusters sharing an edge merge, Lemma 6), so this is a plain map;
//! * `node → clusters` — a node may belong to several clusters (two
//!   clusters may share an articulation node, e.g. after the split of
//!   Figure 6), so this is a multimap.

use dengraph_graph::dynamic_graph::EdgeKey;
use dengraph_graph::fxhash::{FxHashMap, FxHashSet};
use dengraph_graph::NodeId;

use super::{Cluster, ClusterId};

/// Owns every live cluster plus the edge and node indexes.
#[derive(Debug, Default, PartialEq)]
pub struct ClusterRegistry {
    clusters: FxHashMap<ClusterId, Cluster>,
    edge_index: FxHashMap<EdgeKey, ClusterId>,
    node_index: FxHashMap<NodeId, FxHashSet<ClusterId>>,
    next_id: u64,
}

impl ClusterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` when no cluster exists.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Iterates over all live clusters in unspecified (hash) order;
    /// deterministic consumers sort by id (the report path does).
    pub fn clusters(&self) -> impl Iterator<Item = &Cluster> {
        // lint: allow(L001, order-free accessor; deterministic consumers sort by cluster id)
        self.clusters.values()
    }

    /// Looks up a cluster by id.
    pub fn get(&self, id: ClusterId) -> Option<&Cluster> {
        self.clusters.get(&id)
    }

    /// The cluster owning this edge, if any.
    pub fn cluster_of_edge(&self, edge: EdgeKey) -> Option<ClusterId> {
        self.edge_index.get(&edge).copied()
    }

    /// The clusters containing this node (possibly several), sorted by id.
    /// The underlying index is an `FxHashSet`; sorting here keeps every
    /// downstream consumer (e.g. the node-deletion repair order, and hence
    /// fresh-id assignment after splits) independent of hash-iteration
    /// order.
    pub fn clusters_of_node(&self, node: NodeId) -> Vec<ClusterId> {
        let mut ids: Vec<ClusterId> = self
            .node_index
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids
    }

    /// Is the node a member of at least one cluster?  (This is the
    /// hysteresis test the AKG maintenance asks about.)
    pub fn is_cluster_member(&self, node: NodeId) -> bool {
        self.node_index.get(&node).is_some_and(|s| !s.is_empty())
    }

    /// Allocates a fresh cluster id.
    fn fresh_id(&mut self) -> ClusterId {
        let id = ClusterId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inserts a brand-new cluster built from explicit node and edge sets.
    /// Panics (debug assertion) if any edge is already owned by another
    /// cluster — callers must merge first.
    pub fn insert_new(
        &mut self,
        nodes: FxHashSet<NodeId>,
        edges: FxHashSet<EdgeKey>,
        quantum: u64,
    ) -> ClusterId {
        let id = self.fresh_id();
        debug_assert!(
            edges.iter().all(|e| !self.edge_index.contains_key(e)),
            "edge already owned by another cluster"
        );
        // lint: allow(L001, index insertion; the resulting maps are order-independent)
        for e in &edges {
            self.edge_index.insert(*e, id);
        }
        // lint: allow(L001, index insertion; the resulting maps are order-independent)
        for n in &nodes {
            self.node_index.entry(*n).or_default().insert(id);
        }
        self.clusters
            .insert(id, Cluster::new(id, nodes, edges, quantum));
        id
    }

    /// Removes a cluster entirely, cleaning both indexes.
    pub fn remove(&mut self, id: ClusterId) -> Option<Cluster> {
        let cluster = self.clusters.remove(&id)?;
        // lint: allow(L001, index removal; the resulting maps are order-independent)
        for e in &cluster.edges {
            if self.edge_index.get(e) == Some(&id) {
                self.edge_index.remove(e);
            }
        }
        // lint: allow(L001, index removal; the resulting maps are order-independent)
        for n in &cluster.nodes {
            if let Some(set) = self.node_index.get_mut(n) {
                set.remove(&id);
                if set.is_empty() {
                    self.node_index.remove(n);
                }
            }
        }
        Some(cluster)
    }

    /// Absorbs a set of nodes and edges into the cluster structure: every
    /// existing cluster sharing an edge with `edges` is merged with the new
    /// material into a single cluster (Lemma 6).  Returns the id of the
    /// resulting cluster.
    pub fn absorb(
        &mut self,
        nodes: FxHashSet<NodeId>,
        edges: FxHashSet<EdgeKey>,
        quantum: u64,
    ) -> ClusterId {
        // Which existing clusters share an edge with the new material?
        let mut touched: FxHashSet<ClusterId> = FxHashSet::default();
        // lint: allow(L001, collecting into a set that is sorted before use below)
        for e in &edges {
            if let Some(&cid) = self.edge_index.get(e) {
                touched.insert(cid);
            }
        }
        if touched.is_empty() {
            return self.insert_new(nodes, edges, quantum);
        }
        // Merge everything into the oldest touched cluster (stable ids keep
        // event tracking simple).
        let mut ids: Vec<ClusterId> = touched.into_iter().collect();
        ids.sort();
        let target = ids[0];
        let mut all_nodes = nodes;
        let mut all_edges = edges;
        let mut born = quantum;
        for &cid in &ids {
            let c = self.remove(cid).expect("touched cluster exists");
            born = born.min(c.born_quantum);
            all_nodes.extend(c.nodes);
            all_edges.extend(c.edges);
        }
        // Re-insert under the target id.
        for e in &all_edges {
            self.edge_index.insert(*e, target);
        }
        for n in &all_nodes {
            self.node_index.entry(*n).or_default().insert(target);
        }
        let mut cluster = Cluster::new(target, all_nodes, all_edges, born);
        cluster.updated_quantum = quantum;
        self.clusters.insert(target, cluster);
        self.next_id = self.next_id.max(target.0 + 1);
        target
    }

    /// Replaces a cluster with zero or more successor clusters (used by the
    /// deletion repair when a cluster shrinks, splits or dissolves).  The
    /// first successor keeps the original id (so long-running events keep a
    /// stable identity across shrinking); the rest get fresh ids.
    pub fn replace_with(
        &mut self,
        id: ClusterId,
        successors: Vec<(FxHashSet<NodeId>, FxHashSet<EdgeKey>)>,
        quantum: u64,
    ) -> Vec<ClusterId> {
        let original = self.remove(id);
        let born = original.as_ref().map_or(quantum, |c| c.born_quantum);
        let mut out = Vec::with_capacity(successors.len());
        for (i, (nodes, edges)) in successors.into_iter().enumerate() {
            if edges.is_empty() || nodes.len() < 3 {
                continue;
            }
            let new_id = if i == 0 { id } else { self.fresh_id() };
            // lint: allow(L001, index insertion; the resulting maps are order-independent)
            for e in &edges {
                self.edge_index.insert(*e, new_id);
            }
            // lint: allow(L001, index insertion; the resulting maps are order-independent)
            for n in &nodes {
                self.node_index.entry(*n).or_default().insert(new_id);
            }
            let mut cluster = Cluster::new(new_id, nodes, edges, born);
            cluster.updated_quantum = quantum;
            self.clusters.insert(new_id, cluster);
            self.next_id = self.next_id.max(new_id.0 + 1);
            out.push(new_id);
        }
        out
    }

    /// The next id [`Self::fresh_id`] would hand out.  Sharded cluster
    /// maintenance uses this to count placeholder allocations.
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Creates an empty registry whose fresh ids start at `base` — the
    /// placeholder id space of one maintenance shard.
    pub(crate) fn with_next_id(base: u64) -> Self {
        Self {
            next_id: base,
            ..Self::new()
        }
    }

    /// Overwrites the fresh-id counter.  Only the sharded-maintenance
    /// merge uses this, after renumbering placeholder ids.
    pub(crate) fn set_next_id(&mut self, next_id: u64) {
        self.next_id = next_id;
    }

    /// Installs a cluster under its existing id, indexing its nodes and
    /// edges, without touching the fresh-id counter.  Used to move
    /// clusters between the global registry and maintenance shards; the
    /// caller guarantees the id and edges collide with nothing present.
    pub(crate) fn install(&mut self, cluster: Cluster) {
        debug_assert!(!self.clusters.contains_key(&cluster.id));
        // lint: allow(L001, index insertion; the resulting maps are order-independent)
        for e in &cluster.edges {
            let previous = self.edge_index.insert(*e, cluster.id);
            debug_assert!(previous.is_none(), "edge owned by two clusters");
        }
        // lint: allow(L001, index insertion; the resulting maps are order-independent)
        for n in &cluster.nodes {
            self.node_index.entry(*n).or_default().insert(cluster.id);
        }
        self.clusters.insert(cluster.id, cluster);
    }

    /// Consumes the registry, returning its clusters sorted by id.  Used
    /// by the sharded-maintenance merge.
    pub(crate) fn into_clusters(self) -> Vec<Cluster> {
        let mut clusters: Vec<Cluster> = self.clusters.into_values().collect();
        clusters.sort_unstable_by_key(|c| c.id);
        clusters
    }

    /// Marks a cluster as updated in `quantum` (e.g. after a weight-only
    /// change relevant to event tracking).
    pub fn touch(&mut self, id: ClusterId, quantum: u64) {
        if let Some(c) = self.clusters.get_mut(&id) {
            c.updated_quantum = quantum;
        }
    }

    /// Removes one edge from a cluster's edge set and the edge index,
    /// without any repair.  Used as the first step of the deletion
    /// algorithms; callers must follow up with a repair.
    pub(crate) fn detach_edge(&mut self, id: ClusterId, edge: EdgeKey) {
        if self.edge_index.get(&edge) == Some(&id) {
            self.edge_index.remove(&edge);
        }
        if let Some(c) = self.clusters.get_mut(&id) {
            c.edges.remove(&edge);
        }
    }

    /// Serialises the registry: the next fresh id plus every live cluster,
    /// sorted by id.  The edge and node indexes are derived data and are
    /// rebuilt by [`Self::from_json`].
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        let mut ids: Vec<ClusterId> = self.clusters.keys().copied().collect();
        ids.sort_unstable();
        Value::obj([
            ("next_id", Value::from(self.next_id)),
            (
                "clusters",
                Value::arr(ids.into_iter().map(|id| self.clusters[&id].to_json())),
            ),
        ])
    }

    /// Reconstructs a registry serialised by [`Self::to_json`] (the
    /// decoded parts go through the validation shared with the binary
    /// decoder).
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let clusters = value
            .get("clusters")?
            .as_arr()?
            .iter()
            .map(Cluster::from_json)
            .collect::<dengraph_json::Result<Vec<_>>>()?;
        Self::from_parts(value.get("next_id")?.as_u64()?, clusters)
    }

    /// Appends the compact binary encoding: the next fresh id plus every
    /// live cluster, sorted by id.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.u64(self.next_id);
        let mut ids: Vec<ClusterId> = self.clusters.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            self.clusters[&id].to_bin(w);
        }
    }

    /// Reconstructs a registry encoded by [`Self::to_bin`] (the decoded
    /// parts go through the validation shared with the JSON decoder).
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let next_id = r.u64()?;
        let count = r.seq_len(4)?;
        let mut clusters = Vec::with_capacity(count);
        for _ in 0..count {
            clusters.push(Cluster::from_bin(r)?);
        }
        Self::from_parts(next_id, clusters)
    }

    /// Assembles a registry from decoded parts, rebuilding both indexes
    /// from the cluster contents — the single validation path shared by
    /// the JSON and binary decoders.  Rejects documents whose id space is
    /// inconsistent — a duplicate cluster id, an edge owned by two
    /// clusters, or a `next_id` not strictly above every live id — since
    /// any of those would let a fresh id collide with (and silently
    /// corrupt) an existing cluster after restore.
    fn from_parts(next_id: u64, clusters: Vec<Cluster>) -> dengraph_json::Result<Self> {
        let mut registry = Self::new();
        for cluster in clusters {
            // lint: allow(L001, index rebuild; duplicate-edge rejection fires regardless of order)
            for e in &cluster.edges {
                if registry.edge_index.insert(*e, cluster.id).is_some() {
                    return Err(dengraph_json::JsonError {
                        message: format!("edge {e:?} owned by two serialised clusters"),
                        offset: 0,
                    });
                }
            }
            // lint: allow(L001, index rebuild; the resulting maps are order-independent)
            for n in &cluster.nodes {
                registry
                    .node_index
                    .entry(*n)
                    .or_default()
                    .insert(cluster.id);
            }
            let id = cluster.id;
            if registry.clusters.insert(id, cluster).is_some() {
                return Err(dengraph_json::JsonError {
                    message: format!("cluster id {id} serialised twice"),
                    offset: 0,
                });
            }
        }
        registry.next_id = next_id;
        if let Some(max_id) = registry.clusters.keys().max() {
            if registry.next_id <= max_id.0 {
                return Err(dengraph_json::JsonError {
                    message: format!(
                        "next_id {} is not above the highest live cluster id {max_id}",
                        registry.next_id
                    ),
                    offset: 0,
                });
            }
        }
        Ok(registry)
    }

    /// Checks the internal invariants (each edge owned by exactly the
    /// cluster the index says; node index consistent; clusters satisfy SCP
    /// and have ≥ 3 nodes; `next_id` strictly above every live id so fresh
    /// ids can never collide).  Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        // lint: allow(L001, validation max-fold; max is order-independent)
        if let Some(max_id) = self.clusters.keys().max() {
            if self.next_id <= max_id.0 {
                return Err(format!(
                    "next_id {} is not above the highest live cluster id {max_id}",
                    self.next_id
                ));
            }
        }
        // lint: allow(L001, validation walk; pass/fail is order-independent and the first error reported is not part of the output contract)
        for (id, c) in &self.clusters {
            if c.nodes.len() < 3 {
                return Err(format!("cluster {id} has fewer than 3 nodes"));
            }
            if !c.satisfies_scp() {
                return Err(format!("cluster {id} violates the short-cycle property"));
            }
            // lint: allow(L001, validation walk; pass/fail is order-independent)
            for e in &c.edges {
                if self.edge_index.get(e) != Some(id) {
                    return Err(format!("edge {e:?} of cluster {id} not indexed to it"));
                }
            }
            // lint: allow(L001, validation walk; pass/fail is order-independent)
            for n in &c.nodes {
                if !self.node_index.get(n).is_some_and(|s| s.contains(id)) {
                    return Err(format!("node {n} of cluster {id} missing from node index"));
                }
            }
        }
        // lint: allow(L001, validation walk; pass/fail is order-independent)
        for (e, id) in &self.edge_index {
            if !self.clusters.get(id).is_some_and(|c| c.edges.contains(e)) {
                return Err(format!("edge index entry {e:?} -> {id} is dangling"));
            }
        }
        // lint: allow(L001, validation walk; pass/fail is order-independent)
        for (n, ids) in &self.node_index {
            for id in ids {
                if !self.clusters.get(id).is_some_and(|c| c.nodes.contains(n)) {
                    return Err(format!("node index entry {n} -> {id} is dangling"));
                }
            }
        }
        Ok(())
    }
}

impl dengraph_json::Encode for ClusterRegistry {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for ClusterRegistry {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn e(a: u32, b: u32) -> EdgeKey {
        EdgeKey::new(n(a), n(b))
    }

    fn triangle(a: u32, b: u32, c: u32) -> (FxHashSet<NodeId>, FxHashSet<EdgeKey>) {
        let nodes = [n(a), n(b), n(c)].into_iter().collect();
        let edges = [e(a, b), e(b, c), e(a, c)].into_iter().collect();
        (nodes, edges)
    }

    #[test]
    fn insert_and_lookup() {
        let mut r = ClusterRegistry::new();
        let (nodes, edges) = triangle(1, 2, 3);
        let id = r.insert_new(nodes, edges, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.cluster_of_edge(e(1, 2)), Some(id));
        assert_eq!(r.clusters_of_node(n(1)), vec![id]);
        assert!(r.is_cluster_member(n(2)));
        assert!(!r.is_cluster_member(n(9)));
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn absorb_without_overlap_creates_new_cluster() {
        let mut r = ClusterRegistry::new();
        let (n1, e1) = triangle(1, 2, 3);
        let (n2, e2) = triangle(10, 11, 12);
        let a = r.absorb(n1, e1, 0);
        let b = r.absorb(n2, e2, 1);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn absorb_with_shared_edge_merges() {
        let mut r = ClusterRegistry::new();
        let (n1, e1) = triangle(1, 2, 3);
        let a = r.absorb(n1, e1, 0);
        // Second triangle shares edge (2,3) with the first (Lemma 6).
        let (n2, e2) = triangle(2, 3, 4);
        let b = r.absorb(n2, e2, 1);
        assert_eq!(a, b, "merge keeps the older cluster's id");
        assert_eq!(r.len(), 1);
        let c = r.get(a).unwrap();
        assert_eq!(c.size(), 4);
        assert_eq!(c.edge_count(), 5);
        assert_eq!(c.born_quantum, 0);
        assert_eq!(c.updated_quantum, 1);
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn absorb_merging_two_existing_clusters() {
        let mut r = ClusterRegistry::new();
        let (n1, e1) = triangle(1, 2, 3);
        let (n2, e2) = triangle(5, 6, 7);
        let a = r.absorb(n1, e1, 0);
        let _b = r.absorb(n2, e2, 0);
        // New 4-cycle sharing an edge with each: 2-3-5-6-2.
        let nodes: FxHashSet<NodeId> = [n(2), n(3), n(5), n(6)].into_iter().collect();
        let edges: FxHashSet<EdgeKey> = [e(2, 3), e(3, 5), e(5, 6), e(6, 2)].into_iter().collect();
        let merged = r.absorb(nodes, edges, 2);
        assert_eq!(merged, a);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(merged).unwrap().size(), 6);
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn remove_cleans_indexes() {
        let mut r = ClusterRegistry::new();
        let (nodes, edges) = triangle(1, 2, 3);
        let id = r.insert_new(nodes, edges, 0);
        let removed = r.remove(id).unwrap();
        assert_eq!(removed.size(), 3);
        assert!(r.is_empty());
        assert_eq!(r.cluster_of_edge(e(1, 2)), None);
        assert!(r.clusters_of_node(n(1)).is_empty());
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn replace_with_splits_and_keeps_original_id_for_first() {
        let mut r = ClusterRegistry::new();
        // One big cluster: two triangles sharing node 3 (pretend it was valid).
        let nodes: FxHashSet<NodeId> = [n(1), n(2), n(3), n(4), n(5)].into_iter().collect();
        let edges: FxHashSet<EdgeKey> = [e(1, 2), e(2, 3), e(1, 3), e(3, 4), e(4, 5), e(3, 5)]
            .into_iter()
            .collect();
        let id = r.insert_new(nodes, edges, 0);
        let (na, ea) = triangle(1, 2, 3);
        let (nb, eb) = triangle(3, 4, 5);
        let new_ids = r.replace_with(id, vec![(na, ea), (nb, eb)], 5);
        assert_eq!(new_ids.len(), 2);
        assert_eq!(new_ids[0], id);
        assert_ne!(new_ids[1], id);
        assert_eq!(r.len(), 2);
        // Node 3 belongs to both successor clusters.
        assert_eq!(r.clusters_of_node(n(3)).len(), 2);
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn replace_with_drops_too_small_successors() {
        let mut r = ClusterRegistry::new();
        let (nodes, edges) = triangle(1, 2, 3);
        let id = r.insert_new(nodes, edges, 0);
        // A successor with only one edge (2 nodes) must be discarded.
        let nodes2: FxHashSet<NodeId> = [n(1), n(2)].into_iter().collect();
        let edges2: FxHashSet<EdgeKey> = [e(1, 2)].into_iter().collect();
        let out = r.replace_with(id, vec![(nodes2, edges2)], 1);
        assert!(out.is_empty());
        assert!(r.is_empty());
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn clusters_of_node_is_sorted_by_id() {
        let mut r = ClusterRegistry::new();
        // Many clusters sharing node 1 (pairwise edge-disjoint triangles).
        let mut ids = Vec::new();
        for i in 0..16u32 {
            ids.push(
                r.insert_new(
                    [n(1), n(100 + 2 * i), n(101 + 2 * i)].into_iter().collect(),
                    [
                        e(1, 100 + 2 * i),
                        e(100 + 2 * i, 101 + 2 * i),
                        e(1, 101 + 2 * i),
                    ]
                    .into_iter()
                    .collect(),
                    0,
                ),
            );
        }
        let got = r.clusters_of_node(n(1));
        let mut expected = ids.clone();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn json_decode_rejects_inconsistent_id_spaces() {
        let mut r = ClusterRegistry::new();
        let (nodes, edges) = triangle(1, 2, 3);
        r.insert_new(nodes, edges, 0);
        let good = dengraph_json::to_string(&r.to_json());
        assert!(ClusterRegistry::from_json(&dengraph_json::parse(&good).unwrap()).is_ok());
        // next_id at (or below) a live id would let a fresh id collide.
        let stale = good.replace("\"next_id\":1", "\"next_id\":0");
        assert_ne!(good, stale);
        assert!(ClusterRegistry::from_json(&dengraph_json::parse(&stale).unwrap()).is_err());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut r = ClusterRegistry::new();
        let (nodes, edges) = triangle(1, 2, 3);
        let a = r.insert_new(nodes, edges, 0);
        r.remove(a);
        let (nodes, edges) = triangle(4, 5, 6);
        let b = r.insert_new(nodes, edges, 0);
        assert_ne!(a, b);
    }
}
