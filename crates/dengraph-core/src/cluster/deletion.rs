//! Node- and edge-deletion algorithms (Sections 5.3 and 5.4).
//!
//! Deleting a node or edge from the AKG can invalidate the short-cycle
//! property of the cluster(s) it participated in and can create articulation
//! points that split a cluster in two (Figure 6).  Per the paper, the repair
//! has two phases, both confined to the affected cluster:
//!
//! * **Cycle check** — repeatedly drop cluster edges that no longer lie on a
//!   cycle of length ≤ 4 *within the cluster's own edge set*.  Dropping an
//!   edge can break other edges' cycles, so this runs to a fixpoint; the
//!   fixpoint is unique regardless of processing order (Lemma 5), and no
//!   edge that still has a short cycle is ever lost.
//! * **Articulation check** — split the surviving edge set at articulation
//!   points into biconnected components; each component with at least three
//!   nodes survives as a cluster (the first keeps the original cluster id),
//!   anything smaller dissolves.
//!
//! Both phases touch only the nodes and edges of the original cluster,
//! which the paper shows stays small (< 7 nodes on average), so deletions
//! remain local and cheap.

use dengraph_graph::dynamic_graph::EdgeKey;
use dengraph_graph::fxhash::FxHashSet;
use dengraph_graph::{scp_edge_groups, DynamicGraph, NodeId};

use super::registry::ClusterRegistry;
use super::ClusterId;

/// Runs the cycle check + articulation check on a cluster whose edge set
/// has just lost one or more edges.  Replaces the cluster in the registry
/// with its surviving fragments.  Returns the surviving cluster ids.
///
/// The repair recomputes the SCP decomposition of the cluster's *remaining
/// edges*: edges that no longer lie on a short cycle drop out (the cycle
/// check), and the survivors split into groups connected through shared
/// short cycles (which subsumes the articulation check — two fragments
/// meeting only at an articulation point share no cycle).  This touches
/// only the affected cluster, whose size the paper shows stays below ~7
/// nodes on average, so deletions remain local.
fn repair_cluster(registry: &mut ClusterRegistry, id: ClusterId, quantum: u64) -> Vec<ClusterId> {
    let Some(cluster) = registry.get(id) else {
        return Vec::new();
    };
    if cluster.edges.is_empty() {
        registry.replace_with(id, Vec::new(), quantum);
        return Vec::new();
    }
    let mut subgraph = DynamicGraph::new();
    for e in &cluster.edges {
        subgraph.add_edge(e.0, e.1, 1.0);
    }
    let successors: Vec<(FxHashSet<NodeId>, FxHashSet<EdgeKey>)> = scp_edge_groups(&subgraph)
        .into_iter()
        .map(|group| {
            let edge_set: FxHashSet<EdgeKey> = group.into_iter().collect();
            let mut node_set: FxHashSet<NodeId> = FxHashSet::default();
            // lint: allow(L001, deriving a set from a set; membership is order-independent)
            for e in &edge_set {
                node_set.insert(e.0);
                node_set.insert(e.1);
            }
            (node_set, edge_set)
        })
        .collect();
    registry.replace_with(id, successors, quantum)
}

/// `EdgeDeletion` (Section 5.4): the edge `(n1, n2)` has been removed from
/// the AKG.  If it belonged to a cluster, the cluster is repaired (cycle
/// check + articulation check) and possibly split or dissolved.  Returns
/// the surviving cluster ids.
pub fn edge_deletion(
    registry: &mut ClusterRegistry,
    n1: NodeId,
    n2: NodeId,
    quantum: u64,
) -> Vec<ClusterId> {
    let key = EdgeKey::new(n1, n2);
    let Some(id) = registry.cluster_of_edge(key) else {
        return Vec::new();
    };
    registry.detach_edge(id, key);
    // Note: the cluster's node set is left untouched here; `repair_cluster`
    // rebuilds node sets for the successors and `replace_with` cleans the
    // node index using the original (superset) node set.
    repair_cluster(registry, id, quantum)
}

/// `NodeDeletion` (Section 5.3): node `n` has been removed from the AKG
/// together with all its incident edges.  Every cluster containing `n` loses
/// the node and those edges, and is then repaired.  Returns the surviving
/// cluster ids across all affected clusters.
pub fn node_deletion(registry: &mut ClusterRegistry, n: NodeId, quantum: u64) -> Vec<ClusterId> {
    let affected = registry.clusters_of_node(n);
    let mut survivors = Vec::new();
    for id in affected {
        let incident: Vec<EdgeKey> = registry
            .get(id)
            .map(|c| {
                c.edges
                    .iter()
                    .filter(|e| e.0 == n || e.1 == n)
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        for e in incident {
            registry.detach_edge(id, e);
        }
        survivors.extend(repair_cluster(registry, id, quantum));
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::addition::edge_addition;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn graph(pairs: &[(u32, u32)]) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for &(a, b) in pairs {
            g.add_edge(n(a), n(b), 1.0);
        }
        g
    }

    /// Builds a registry holding the SCP clusters of `g` by replaying every
    /// edge through EdgeAddition.
    fn registry_for(g: &DynamicGraph) -> ClusterRegistry {
        let mut r = ClusterRegistry::new();
        let mut edges: Vec<EdgeKey> = g.edges().map(|(k, _)| k).collect();
        edges.sort();
        for e in edges {
            edge_addition(g, &mut r, e.0, e.1, 0);
        }
        r
    }

    #[test]
    fn deleting_an_edge_outside_any_cluster_is_a_noop() {
        let g = graph(&[(1, 2), (2, 3)]);
        let mut r = registry_for(&g);
        assert!(r.is_empty());
        assert!(edge_deletion(&mut r, n(1), n(2), 1).is_empty());
    }

    #[test]
    fn deleting_a_triangle_edge_dissolves_the_cluster() {
        let g = graph(&[(1, 2), (2, 3), (1, 3)]);
        let mut r = registry_for(&g);
        assert_eq!(r.len(), 1);
        let survivors = edge_deletion(&mut r, n(1), n(2), 1);
        assert!(survivors.is_empty());
        assert!(r.is_empty());
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn deleting_a_square_edge_dissolves_the_cluster() {
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 1)]);
        let mut r = registry_for(&g);
        assert_eq!(r.len(), 1);
        edge_deletion(&mut r, n(3), n(4), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn figure5d_edge_deletion_keeps_a_smaller_cluster() {
        // Figure 5(d): the cluster contains nodes {n(=9),1,2,3,4,5}; deleting
        // edge (n,1) leaves the triangle (3,4,n) as a smaller cluster while
        // nodes 1, 2 and 5 drop out (their edges no longer lie on short
        // cycles).  Shape: square 9-1-2-5-9, triangle 9-3-4, chord 1-3.
        let g = graph(&[
            (9, 1),
            (1, 2),
            (2, 5),
            (5, 9),
            (9, 3),
            (3, 4),
            (4, 9),
            (1, 3),
        ]);
        let mut r = registry_for(&g);
        assert_eq!(r.len(), 1, "everything is one cluster before the deletion");
        let survivors = edge_deletion(&mut r, n(9), n(1), 1);
        assert_eq!(survivors.len(), 1);
        let c = r.get(survivors[0]).unwrap();
        assert!(c.satisfies_scp());
        assert_eq!(
            c.sorted_nodes(),
            vec![n(3), n(4), n(9)],
            "only the triangle survives"
        );
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn figure6_node_deletion_splits_at_articulation_point() {
        // Figure 6: a 12-node cluster; deleting node 9 makes node 3 an
        // articulation point and the cluster splits into two.
        // Left ring: two squares sharing edge (10,11) plus chord (0,3);
        // right ring: two squares sharing edge (5,6); both rings meet at
        // node 3; node 9 closes the spanning 4-cycle 9-0-3-6-9 that ties the
        // rings together into one cluster.
        let g = graph(&[
            (3, 2),
            (2, 10),
            (10, 11),
            (11, 3),
            (10, 0),
            (0, 1),
            (1, 11),
            (0, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 3),
            (5, 7),
            (7, 8),
            (8, 6),
            (0, 9),
            (9, 6),
        ]);
        let mut r = registry_for(&g);
        assert_eq!(r.len(), 1);
        let survivors = node_deletion(&mut r, n(9), 1);
        assert_eq!(survivors.len(), 2, "cluster splits into two");
        let mut sizes: Vec<usize> = survivors
            .iter()
            .map(|id| r.get(*id).unwrap().size())
            .collect();
        sizes.sort();
        assert_eq!(sizes, vec![6, 6]);
        // Node 3 (the articulation point) belongs to both.
        assert_eq!(r.clusters_of_node(n(3)).len(), 2);
        for id in survivors {
            assert!(r.get(id).unwrap().satisfies_scp());
        }
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn figure5c_node_deletion_dissolves_cluster_without_short_cycles() {
        // Figure 5(c): node n (=9) is the hub of a wheel-like cluster; when
        // it departs, the remaining nodes no longer have short cycles and
        // the cluster is discarded.
        let g = graph(&[(9, 1), (9, 2), (9, 3), (9, 4), (9, 5), (1, 2), (3, 4)]);
        let mut r = registry_for(&g);
        assert!(!r.is_empty());
        let survivors = node_deletion(&mut r, n(9), 1);
        assert!(survivors.is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn cycle_check_cascades() {
        // A chain of squares: removing one edge breaks the first square,
        // whose removal must not affect the second square.
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 1), (3, 5), (5, 6), (6, 4)]);
        let mut r = registry_for(&g);
        assert_eq!(r.len(), 1);
        let survivors = edge_deletion(&mut r, n(1), n(2), 1);
        assert_eq!(survivors.len(), 1);
        let c = r.get(survivors[0]).unwrap();
        assert_eq!(c.sorted_nodes(), vec![n(3), n(4), n(5), n(6)]);
        assert!(c.satisfies_scp());
    }

    #[test]
    fn deleting_a_node_not_in_any_cluster_is_a_noop() {
        let g = graph(&[(1, 2), (2, 3), (1, 3)]);
        let mut r = registry_for(&g);
        assert!(node_deletion(&mut r, n(42), 1).is_empty());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn repair_preserves_untouched_clusters() {
        let g = graph(&[(1, 2), (2, 3), (1, 3), (10, 11), (11, 12), (10, 12)]);
        let mut r = registry_for(&g);
        assert_eq!(r.len(), 2);
        edge_deletion(&mut r, n(1), n(2), 1);
        assert_eq!(r.len(), 1);
        let remaining: Vec<NodeId> = r.clusters().next().unwrap().sorted_nodes();
        assert_eq!(remaining, vec![n(10), n(11), n(12)]);
    }
}
