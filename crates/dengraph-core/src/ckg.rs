//! Full correlated-keyword-graph (CKG) bookkeeping.
//!
//! The detector itself never materialises the full CKG — that is the whole
//! point of the AKG reduction of Section 3 — but the evaluation of Section
//! 7.4 reports *how much smaller* the AKG is ("the number of edges in AKG
//! was less than 2 % of CKG … less than 5 % nodes in CKG show burstiness").
//! [`CkgTracker`] maintains exactly enough information about the full CKG
//! (its node and edge counts over the sliding window) to reproduce those
//! numbers, without being part of the hot path.

use std::collections::VecDeque;

use dengraph_graph::fxhash::{FxHashMap, FxHashSet};
use dengraph_stream::Message;
use dengraph_text::KeywordId;

/// Per-quantum CKG contribution: the keywords seen and the keyword pairs
/// co-mentioned by at least one user within the quantum.
#[derive(Debug, Clone, Default)]
struct CkgQuantum {
    nodes: FxHashSet<KeywordId>,
    edges: FxHashSet<(KeywordId, KeywordId)>,
}

/// Tracks the size of the full CKG over the sliding window.
#[derive(Debug)]
pub struct CkgTracker {
    window: VecDeque<CkgQuantum>,
    capacity: usize,
}

impl CkgTracker {
    /// Creates a tracker for a window of `capacity` quanta.
    pub fn new(capacity: usize) -> Self {
        Self {
            window: VecDeque::with_capacity(capacity + 1),
            capacity: capacity.max(1),
        }
    }

    /// Ingests the messages of one quantum.
    pub fn push_quantum(&mut self, messages: &[Message]) {
        let mut q = CkgQuantum::default();
        // Group keywords by user: an edge links two keywords used by the
        // same user within the quantum (Section 3.2's user-level spatial
        // correlation).
        let mut per_user: FxHashMap<u64, FxHashSet<KeywordId>> = FxHashMap::default();
        for m in messages {
            let entry = per_user.entry(m.user.raw()).or_default();
            for &k in &m.keywords {
                q.nodes.insert(k);
                entry.insert(k);
            }
        }
        for (_, kws) in per_user {
            let mut sorted: Vec<KeywordId> = kws.into_iter().collect();
            sorted.sort_unstable();
            for i in 0..sorted.len() {
                for j in (i + 1)..sorted.len() {
                    q.edges.insert((sorted[i], sorted[j]));
                }
            }
        }
        self.window.push_back(q);
        if self.window.len() > self.capacity {
            self.window.pop_front();
        }
    }

    /// Number of distinct keywords in the CKG over the current window.
    pub fn node_count(&self) -> usize {
        let mut nodes = FxHashSet::default();
        for q in &self.window {
            // lint: allow(L001, distinct count via set union; the result is order-independent)
            nodes.extend(q.nodes.iter().copied());
        }
        nodes.len()
    }

    /// Number of distinct co-occurrence edges in the CKG over the current
    /// window.
    pub fn edge_count(&self) -> usize {
        let mut edges = FxHashSet::default();
        for q in &self.window {
            // lint: allow(L001, distinct count via set union; the result is order-independent)
            edges.extend(q.edges.iter().copied());
        }
        edges.len()
    }

    /// Number of quanta currently inside the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_stream::UserId;

    fn msg(user: u64, kws: &[u32]) -> Message {
        Message::new(UserId(user), 0, kws.iter().map(|&k| KeywordId(k)).collect())
    }

    #[test]
    fn nodes_and_edges_counted_over_window() {
        let mut t = CkgTracker::new(2);
        t.push_quantum(&[msg(1, &[1, 2, 3])]);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 3); // triangle from one user
        t.push_quantum(&[msg(2, &[3, 4])]);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edge_count(), 4);
    }

    #[test]
    fn window_eviction_drops_old_contributions() {
        let mut t = CkgTracker::new(2);
        t.push_quantum(&[msg(1, &[1, 2])]);
        t.push_quantum(&[msg(2, &[3, 4])]);
        t.push_quantum(&[msg(3, &[5, 6])]);
        assert_eq!(t.window_len(), 2);
        assert_eq!(t.node_count(), 4); // 3,4,5,6
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn same_user_across_messages_in_a_quantum_links_keywords() {
        let mut t = CkgTracker::new(3);
        t.push_quantum(&[msg(7, &[1]), msg(7, &[2])]);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn different_users_do_not_link_keywords() {
        let mut t = CkgTracker::new(3);
        t.push_quantum(&[msg(1, &[1]), msg(2, &[2])]);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.node_count(), 2);
    }
}
