//! Discovered-event records and their lifecycle.
//!
//! A *cluster* is a per-quantum structural object; an *event* is its
//! identity over time: the same real-world story keeps (roughly) the same
//! cluster as keywords join and leave, thanks to the stable cluster ids the
//! registry maintains across merges and splits.  The tracker records, per
//! event, its keyword evolution and rank history — exactly the information
//! the paper's post-hoc spuriousness analysis (Section 7.2.2) needs: "events
//! which do not evolve and have monotonically decreasing rank scores are
//! considered spurious".

use dengraph_graph::fxhash::FxHashMap;
use dengraph_json::Value;
use dengraph_text::KeywordId;

use crate::cluster::ClusterId;

fn keywords_to_json(keywords: &[KeywordId]) -> Value {
    Value::arr(keywords.iter().map(|k| Value::from(k.0)))
}

fn keywords_from_json(value: &Value) -> dengraph_json::Result<Vec<KeywordId>> {
    value
        .as_arr()?
        .iter()
        .map(|k| k.as_u32().map(KeywordId))
        .collect()
}

/// Keyword lists here are sorted, so the binary form is a delta column.
fn keywords_to_bin(keywords: &[KeywordId], w: &mut dengraph_json::BinWriter) {
    w.delta_u32s(keywords.iter().map(|k| k.0));
}

fn keywords_from_bin(
    r: &mut dengraph_json::BinReader<'_>,
) -> dengraph_json::Result<Vec<KeywordId>> {
    Ok(r.delta_u32s()?.into_iter().map(KeywordId).collect())
}

/// A per-quantum snapshot of a reported event (one ranked cluster).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedEvent {
    /// The underlying cluster id.
    pub cluster_id: ClusterId,
    /// Quantum at which this snapshot was taken.
    pub quantum: u64,
    /// Keywords of the cluster at this quantum, sorted.
    pub keywords: Vec<KeywordId>,
    /// Rank score (Section 6).
    pub rank: f64,
    /// Total support (distinct-user weight) behind the cluster.
    pub support: usize,
}

impl DetectedEvent {
    /// Serialises the snapshot to a [`dengraph_json::Value`].
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("cluster_id", Value::from(self.cluster_id.0)),
            ("quantum", Value::from(self.quantum)),
            ("keywords", keywords_to_json(&self.keywords)),
            ("rank", Value::from(self.rank)),
            ("support", Value::from(self.support)),
        ])
    }

    /// Reconstructs a snapshot serialised by [`Self::to_json`].
    pub fn from_json(value: &Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            cluster_id: ClusterId(value.get("cluster_id")?.as_u64()?),
            quantum: value.get("quantum")?.as_u64()?,
            keywords: keywords_from_json(value.get("keywords")?)?,
            rank: value.get("rank")?.as_f64()?,
            support: value.get("support")?.as_usize()?,
        })
    }

    /// Appends the compact binary encoding.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.u64(self.cluster_id.0);
        w.u64(self.quantum);
        keywords_to_bin(&self.keywords, w);
        w.f64(self.rank);
        w.usize(self.support);
    }

    /// Reconstructs a snapshot encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Ok(Self {
            cluster_id: ClusterId(r.u64()?),
            quantum: r.u64()?,
            keywords: keywords_from_bin(r)?,
            rank: r.f64()?,
            support: r.usize()?,
        })
    }
}

impl dengraph_json::Encode for DetectedEvent {
    fn encode_json(&self) -> Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for DetectedEvent {
    fn decode_json(value: &Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// The full history of one event across quanta.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventRecord {
    /// The cluster id the event is anchored to.
    pub cluster_id: ClusterId,
    /// First quantum in which the event was reported.
    pub first_seen: u64,
    /// Last quantum in which the event was reported.
    pub last_seen: u64,
    /// Keywords at the most recent report, sorted.
    pub keywords: Vec<KeywordId>,
    /// Union of every keyword the event has ever contained, sorted.
    pub all_keywords: Vec<KeywordId>,
    /// `(quantum, rank)` history in quantum order.
    pub rank_history: Vec<(u64, f64)>,
    /// Highest rank ever reached.
    pub peak_rank: f64,
    /// Highest support ever reached.
    pub peak_support: usize,
    /// Size of the keyword set at the first report (used by the evolution
    /// test; checkpoints preserve it so a restored tracker keeps judging
    /// evolution exactly as the uninterrupted run would).
    pub initial_size: usize,
}

impl EventRecord {
    /// Number of quanta for which the event was reported.
    pub fn reported_quanta(&self) -> usize {
        self.rank_history.len()
    }

    /// Did the keyword set ever change after the first report?
    pub fn evolved(&self) -> bool {
        if self.initial_size > 0 {
            self.all_keywords.len() > self.initial_size
        } else {
            // Deserialised records lose `initial_size`; fall back to
            // comparing the union against the latest snapshot.
            self.all_keywords.len() > self.keywords.len()
        }
    }

    /// Post-hoc spuriousness heuristic of Section 7.2.2: an event that never
    /// evolved and whose rank only ever decreased after its first report is
    /// considered spurious (a burst that flared and died).
    pub fn is_spurious_posthoc(&self) -> bool {
        if self.evolved() {
            return false;
        }
        if self.rank_history.len() <= 1 {
            // A single flash in the pan: no build-up, no evolution.
            return true;
        }
        self.rank_history.windows(2).all(|w| w[1].1 <= w[0].1)
    }

    /// Serialises the full record, `initial_size` included.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("cluster_id", Value::from(self.cluster_id.0)),
            ("first_seen", Value::from(self.first_seen)),
            ("last_seen", Value::from(self.last_seen)),
            ("keywords", keywords_to_json(&self.keywords)),
            ("all_keywords", keywords_to_json(&self.all_keywords)),
            (
                "rank_history",
                Value::arr(
                    self.rank_history
                        .iter()
                        .map(|&(q, r)| Value::arr([Value::from(q), Value::from(r)])),
                ),
            ),
            ("peak_rank", Value::from(self.peak_rank)),
            ("peak_support", Value::from(self.peak_support)),
            ("initial_size", Value::from(self.initial_size)),
        ])
    }

    /// Reconstructs a record serialised by [`Self::to_json`].
    pub fn from_json(value: &Value) -> dengraph_json::Result<Self> {
        let mut rank_history = Vec::new();
        for pair in value.get("rank_history")?.as_arr()? {
            let parts = pair.as_arr()?;
            if parts.len() != 2 {
                return Err(dengraph_json::JsonError {
                    message: format!("rank history pair has {} elements", parts.len()),
                    offset: 0,
                });
            }
            rank_history.push((parts[0].as_u64()?, parts[1].as_f64()?));
        }
        Ok(Self {
            cluster_id: ClusterId(value.get("cluster_id")?.as_u64()?),
            first_seen: value.get("first_seen")?.as_u64()?,
            last_seen: value.get("last_seen")?.as_u64()?,
            keywords: keywords_from_json(value.get("keywords")?)?,
            all_keywords: keywords_from_json(value.get("all_keywords")?)?,
            rank_history,
            peak_rank: value.get("peak_rank")?.as_f64()?,
            peak_support: value.get("peak_support")?.as_usize()?,
            initial_size: value.get("initial_size")?.as_usize()?,
        })
    }

    /// Appends the compact binary encoding.  Rank-history quanta are
    /// ascending (one report per quantum), so they delta-encode.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.u64(self.cluster_id.0);
        w.u64(self.first_seen);
        w.u64(self.last_seen);
        keywords_to_bin(&self.keywords, w);
        keywords_to_bin(&self.all_keywords, w);
        w.usize(self.rank_history.len());
        let mut prev = 0u64;
        for (i, &(q, rank)) in self.rank_history.iter().enumerate() {
            w.u64(if i == 0 { q } else { q - prev });
            prev = q;
            w.f64(rank);
        }
        w.f64(self.peak_rank);
        w.usize(self.peak_support);
        w.usize(self.initial_size);
    }

    /// Reconstructs a record encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let cluster_id = ClusterId(r.u64()?);
        let first_seen = r.u64()?;
        let last_seen = r.u64()?;
        let keywords = keywords_from_bin(r)?;
        let all_keywords = keywords_from_bin(r)?;
        let history = r.seq_len(9)?;
        let mut rank_history = Vec::with_capacity(history);
        let mut prev = 0u64;
        for i in 0..history {
            let d = r.u64()?;
            let q = if i == 0 {
                d
            } else {
                prev.checked_add(d).ok_or(dengraph_json::JsonError {
                    message: "rank-history quantum overflows u64".into(),
                    offset: r.pos(),
                })?
            };
            prev = q;
            rank_history.push((q, r.f64()?));
        }
        Ok(Self {
            cluster_id,
            first_seen,
            last_seen,
            keywords,
            all_keywords,
            rank_history,
            peak_rank: r.f64()?,
            peak_support: r.usize()?,
            initial_size: r.usize()?,
        })
    }
}

impl dengraph_json::Encode for EventRecord {
    fn encode_json(&self) -> Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for EventRecord {
    fn decode_json(value: &Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// Accumulates [`DetectedEvent`] snapshots into [`EventRecord`]s.
#[derive(Debug, Default, PartialEq)]
pub struct EventTracker {
    records: FxHashMap<ClusterId, EventRecord>,
}

impl EventTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one per-quantum event snapshot.
    pub fn observe(&mut self, event: &DetectedEvent) {
        let record = self
            .records
            .entry(event.cluster_id)
            .or_insert_with(|| EventRecord {
                cluster_id: event.cluster_id,
                first_seen: event.quantum,
                last_seen: event.quantum,
                keywords: event.keywords.clone(),
                all_keywords: event.keywords.clone(),
                rank_history: Vec::new(),
                peak_rank: 0.0,
                peak_support: 0,
                initial_size: event.keywords.len(),
            });
        record.last_seen = event.quantum;
        record.keywords = event.keywords.clone();
        for k in &event.keywords {
            if !record.all_keywords.contains(k) {
                record.all_keywords.push(*k);
            }
        }
        record.all_keywords.sort();
        record.rank_history.push((event.quantum, event.rank));
        if event.rank > record.peak_rank {
            record.peak_rank = event.rank;
        }
        if event.support > record.peak_support {
            record.peak_support = event.support;
        }
    }

    /// All event records, in order of first appearance.
    pub fn records(&self) -> Vec<&EventRecord> {
        let mut v: Vec<&EventRecord> = self.records.values().collect();
        v.sort_by_key(|r| (r.first_seen, r.cluster_id));
        v
    }

    /// Number of distinct events seen so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records that are not flagged spurious by the post-hoc heuristic.
    pub fn non_spurious_records(&self) -> Vec<&EventRecord> {
        self.records()
            .into_iter()
            .filter(|r| !r.is_spurious_posthoc())
            .collect()
    }

    /// The record of the event anchored to `cluster_id`, if any.
    pub fn get(&self, cluster_id: ClusterId) -> Option<&EventRecord> {
        self.records.get(&cluster_id)
    }

    /// Serialises every record, ordered by cluster id for a canonical
    /// encoding.
    pub fn to_json(&self) -> Value {
        let mut ids: Vec<ClusterId> = self.records.keys().copied().collect();
        ids.sort_unstable();
        Value::obj([(
            "records",
            Value::arr(ids.into_iter().map(|id| self.records[&id].to_json())),
        )])
    }

    /// Reconstructs a tracker serialised by [`Self::to_json`].
    pub fn from_json(value: &Value) -> dengraph_json::Result<Self> {
        let mut records = FxHashMap::default();
        for encoded in value.get("records")?.as_arr()? {
            let record = EventRecord::from_json(encoded)?;
            records.insert(record.cluster_id, record);
        }
        Ok(Self { records })
    }

    /// Appends the compact binary encoding: every record, ordered by
    /// cluster id.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        let mut ids: Vec<ClusterId> = self.records.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            self.records[&id].to_bin(w);
        }
    }

    /// Reconstructs a tracker encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let count = r.seq_len(8)?;
        let mut records = FxHashMap::default();
        for _ in 0..count {
            let record = EventRecord::from_bin(r)?;
            records.insert(record.cluster_id, record);
        }
        Ok(Self { records })
    }
}

impl dengraph_json::Encode for EventTracker {
    fn encode_json(&self) -> Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for EventTracker {
    fn decode_json(value: &Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(ids: &[u32]) -> Vec<KeywordId> {
        ids.iter().map(|&i| KeywordId(i)).collect()
    }

    fn snapshot(cluster: u64, quantum: u64, keywords: &[u32], rank: f64) -> DetectedEvent {
        DetectedEvent {
            cluster_id: ClusterId(cluster),
            quantum,
            keywords: k(keywords),
            rank,
            support: (rank * 2.0) as usize,
        }
    }

    #[test]
    fn tracker_accumulates_history() {
        let mut t = EventTracker::new();
        t.observe(&snapshot(1, 10, &[1, 2, 3], 12.0));
        t.observe(&snapshot(1, 11, &[1, 2, 3, 4], 20.0));
        t.observe(&snapshot(1, 12, &[1, 2, 3, 4], 15.0));
        assert_eq!(t.len(), 1);
        let r = t.records()[0];
        assert_eq!(r.first_seen, 10);
        assert_eq!(r.last_seen, 12);
        assert_eq!(r.reported_quanta(), 3);
        assert_eq!(r.peak_rank, 20.0);
        assert_eq!(r.all_keywords, k(&[1, 2, 3, 4]));
        assert!(r.evolved());
        assert!(!r.is_spurious_posthoc());
    }

    #[test]
    fn separate_clusters_are_separate_events() {
        let mut t = EventTracker::new();
        t.observe(&snapshot(1, 5, &[1, 2, 3], 10.0));
        t.observe(&snapshot(2, 5, &[7, 8, 9], 10.0));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn spurious_heuristic_flags_non_evolving_decaying_events() {
        let mut t = EventTracker::new();
        t.observe(&snapshot(1, 5, &[1, 2, 3], 30.0));
        t.observe(&snapshot(1, 6, &[1, 2, 3], 20.0));
        t.observe(&snapshot(1, 7, &[1, 2, 3], 10.0));
        let r = t.records()[0];
        assert!(!r.evolved());
        assert!(r.is_spurious_posthoc());
        assert!(t.non_spurious_records().is_empty());
    }

    #[test]
    fn single_flash_is_spurious() {
        let mut t = EventTracker::new();
        t.observe(&snapshot(1, 5, &[1, 2, 3], 30.0));
        assert!(t.records()[0].is_spurious_posthoc());
    }

    #[test]
    fn rank_buildup_marks_event_as_real() {
        let mut t = EventTracker::new();
        t.observe(&snapshot(1, 5, &[1, 2, 3], 10.0));
        t.observe(&snapshot(1, 6, &[1, 2, 3], 25.0));
        t.observe(&snapshot(1, 7, &[1, 2, 3], 18.0));
        let r = t.records()[0];
        assert!(
            !r.is_spurious_posthoc(),
            "non-monotonic rank history is a real event"
        );
    }

    #[test]
    fn keyword_evolution_marks_event_as_real_even_with_decaying_rank() {
        let mut t = EventTracker::new();
        t.observe(&snapshot(1, 5, &[1, 2, 3], 30.0));
        t.observe(&snapshot(1, 6, &[1, 2, 3, 4], 20.0));
        assert!(!t.records()[0].is_spurious_posthoc());
    }

    #[test]
    fn records_are_ordered_by_first_appearance() {
        let mut t = EventTracker::new();
        t.observe(&snapshot(5, 20, &[1, 2, 3], 10.0));
        t.observe(&snapshot(3, 10, &[4, 5, 6], 10.0));
        let order: Vec<u64> = t.records().iter().map(|r| r.cluster_id.0).collect();
        assert_eq!(order, vec![3, 5]);
    }
}
