//! The event-ranking function of Section 6.
//!
//! Because any global computation over "all current events" would violate
//! the real-time budget, the rank of a cluster uses only local cluster
//! properties:
//!
//! * the *support* of each node (number of distinct users behind the
//!   keyword in the current window) — the weight vector `W`,
//! * the edge-correlation coefficients of the cluster's edges — the matrix
//!   `C` with `C_ii = 1` and `C_ij = EC(i,j)` for cluster edges, 0 otherwise,
//! * the cluster size `n`, used to normalise so that rank is not a
//!   monotonically increasing function of size.
//!
//! `rank(C) = (1/n) · W · C · 1 = (1/n) Σ_i w_i (1 + Σ_{(i,j)∈E(C)} EC_ij)`.
//!
//! Dense, strongly correlated, well-supported clusters therefore rank high;
//! accidental clusters rank low.

use dengraph_graph::DynamicGraph;
use dengraph_graph::NodeId;

use crate::cluster::Cluster;

/// The inputs the ranking needs per node: its support (window user count).
pub trait NodeSupport {
    /// Number of distinct users behind this node's keyword in the window.
    fn support(&self, node: NodeId) -> usize;
}

impl<F: Fn(NodeId) -> usize> NodeSupport for F {
    fn support(&self, node: NodeId) -> usize {
        self(node)
    }
}

/// Computes the rank of a cluster.
///
/// `graph` supplies the edge-correlation weights of the cluster's edges;
/// `support` supplies the per-node user counts.  Returns 0.0 for an empty
/// cluster.
pub fn cluster_rank<S: NodeSupport>(cluster: &Cluster, graph: &DynamicGraph, support: &S) -> f64 {
    let n = cluster.size();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    // Sorted iteration: the f64 accumulation below is not associative, so
    // summing in hash order would make the rank depend on how the node
    // set happened to be built.
    for node in cluster.sorted_nodes() {
        let w = support.support(node) as f64;
        // Diagonal contribution C_ii = 1.
        let mut row = 1.0;
        // Off-diagonal contributions: cluster edges incident to this node.
        for other in cluster.cluster_neighbors(node) {
            let ec = graph.edge_weight(node, other).unwrap_or(0.0);
            row += ec;
        }
        total += w * row;
    }
    total / n as f64
}

/// Total support of a cluster: the number of distinct users behind its
/// keywords (upper-bounded here by the sum of per-node supports, which is
/// what the paper's weight vector uses).
pub fn cluster_support<S: NodeSupport>(cluster: &Cluster, support: &S) -> usize {
    // lint: allow(L001, usize sum is commutative; the result is order-independent)
    cluster.nodes.iter().map(|&n| support.support(n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterId;
    use dengraph_graph::dynamic_graph::EdgeKey;
    use dengraph_graph::fxhash::FxHashSet;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn triangle_cluster(weights: f64) -> (Cluster, DynamicGraph) {
        let mut g = DynamicGraph::new();
        g.add_edge(n(1), n(2), weights);
        g.add_edge(n(2), n(3), weights);
        g.add_edge(n(1), n(3), weights);
        let nodes: FxHashSet<NodeId> = [n(1), n(2), n(3)].into_iter().collect();
        let edges: FxHashSet<EdgeKey> = [
            EdgeKey::new(n(1), n(2)),
            EdgeKey::new(n(2), n(3)),
            EdgeKey::new(n(1), n(3)),
        ]
        .into_iter()
        .collect();
        (Cluster::new(ClusterId(0), nodes, edges, 0), g)
    }

    #[test]
    fn uniform_triangle_rank_matches_closed_form() {
        // Every node: weight 5, two incident edges of EC 0.5.
        let (c, g) = triangle_cluster(0.5);
        let rank = cluster_rank(&c, &g, &|_: NodeId| 5usize);
        // per node: 5 * (1 + 0.5 + 0.5) = 10; total 30; /3 = 10.
        assert!((rank - 10.0).abs() < 1e-12);
    }

    #[test]
    fn higher_correlation_means_higher_rank() {
        let (c_low, g_low) = triangle_cluster(0.2);
        let (c_high, g_high) = triangle_cluster(0.9);
        let support = |_: NodeId| 5usize;
        assert!(cluster_rank(&c_high, &g_high, &support) > cluster_rank(&c_low, &g_low, &support));
    }

    #[test]
    fn higher_support_means_higher_rank() {
        let (c, g) = triangle_cluster(0.5);
        let low = cluster_rank(&c, &g, &|_: NodeId| 4usize);
        let high = cluster_rank(&c, &g, &|_: NodeId| 40usize);
        assert!(high > low);
    }

    #[test]
    fn rank_is_normalised_by_size() {
        // A denser 4-clique with the same weights should not automatically
        // dominate a triangle purely by having more nodes.
        let (tri, tri_g) = triangle_cluster(0.5);
        let mut g = DynamicGraph::new();
        let nodes: Vec<NodeId> = (1..=4).map(n).collect();
        let mut edge_set: FxHashSet<EdgeKey> = FxHashSet::default();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(nodes[i], nodes[j], 0.5);
                edge_set.insert(EdgeKey::new(nodes[i], nodes[j]));
            }
        }
        let clique = Cluster::new(ClusterId(1), nodes.into_iter().collect(), edge_set, 0);
        let support = |_: NodeId| 5usize;
        let tri_rank = cluster_rank(&tri, &tri_g, &support);
        let clique_rank = cluster_rank(&clique, &g, &support);
        // The 4-clique has 3 incident edges per node instead of 2, so its
        // rank is higher — but only by the density factor, not by raw size.
        assert!(clique_rank > tri_rank);
        assert!(clique_rank < 2.0 * tri_rank);
    }

    #[test]
    fn minimum_rank_bound_of_config_holds() {
        // A bare 4-cycle at exactly the thresholds sits at the configured
        // minimum cluster rank.
        let cfg = crate::config::DetectorConfig::nominal();
        let mut g = DynamicGraph::new();
        let tau = cfg.edge_correlation_threshold;
        g.add_edge(n(1), n(2), tau);
        g.add_edge(n(2), n(3), tau);
        g.add_edge(n(3), n(4), tau);
        g.add_edge(n(4), n(1), tau);
        let nodes: FxHashSet<NodeId> = (1..=4).map(n).collect();
        let edges: FxHashSet<EdgeKey> = [
            EdgeKey::new(n(1), n(2)),
            EdgeKey::new(n(2), n(3)),
            EdgeKey::new(n(3), n(4)),
            EdgeKey::new(n(4), n(1)),
        ]
        .into_iter()
        .collect();
        let c = Cluster::new(ClusterId(0), nodes, edges, 0);
        let sigma = cfg.high_state_threshold as usize;
        let rank = cluster_rank(&c, &g, &|_: NodeId| sigma);
        assert!((rank - cfg.minimum_cluster_rank()).abs() < 1e-9);
        // Any real cluster (more support, more correlation) ranks above it.
        let better = cluster_rank(&c, &g, &|_: NodeId| sigma * 3);
        assert!(better > cfg.minimum_cluster_rank());
    }

    #[test]
    fn empty_cluster_ranks_zero() {
        let c = Cluster::new(ClusterId(0), FxHashSet::default(), FxHashSet::default(), 0);
        let g = DynamicGraph::new();
        assert_eq!(cluster_rank(&c, &g, &|_: NodeId| 10usize), 0.0);
        assert_eq!(cluster_support(&c, &|_: NodeId| 10usize), 0);
    }

    #[test]
    fn cluster_support_sums_node_supports() {
        let (c, _) = triangle_cluster(0.5);
        assert_eq!(
            cluster_support(&c, &|node: NodeId| node.0 as usize),
            1 + 2 + 3
        );
    }
}
