//! Detector configuration.
//!
//! Table 2 of the paper lists the tunable parameters and their nominal
//! values; those nominal values are the defaults here.

pub use dengraph_parallel::Parallelism;

pub use crate::keyword_state::WindowIndexMode;

/// How stage 3 (sharded cluster maintenance) derives its per-quantum
/// shard partition from the AKG's connected components.
///
/// Both modes produce **bit-identical** output, cluster ids included —
/// the partition only decides which shard processes which cluster, and
/// placeholder renumbering erases shard numbering from the result.  The
/// knob trades partitioning cost: `Incremental` reads the persistent
/// [`ComponentIndex`](dengraph_graph::ComponentIndex) maintained in lock
/// step with the AKG (O(deltas) per quantum), `Rebuild` recomputes the
/// components from every AKG edge per quantum (O(AKG edges), the
/// ablation baseline the bench compares against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentIndexMode {
    /// Recompute the component partition from scratch each parallel
    /// quantum — the ablation baseline.
    Rebuild,
    /// Partition from the persistent incrementally maintained component
    /// index (the default).
    Incremental,
}

/// A typed description of what is wrong with a [`DetectorConfig`].
///
/// Returned by [`DetectorConfig::validate`] and
/// [`DetectorBuilder::build`](crate::session::DetectorBuilder::build), so
/// callers can match on the exact failure instead of parsing a panic
/// message.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `quantum_size` is 0 — no quantum would ever complete.
    ZeroQuantumSize,
    /// `window_quanta` is 0 — the window could hold nothing.
    ZeroWindowQuanta,
    /// `high_state_threshold` is 0 — every keyword would always be bursty.
    ZeroHighStateThreshold,
    /// `min_sketch_size` is 0 — min-hash sketches need at least one minimum.
    ZeroSketchWidth,
    /// `edge_correlation_threshold` lies outside `[0, 1]` (or is NaN).
    EdgeCorrelationOutOfRange(f64),
    /// `rank_threshold_factor` is negative or NaN.
    RankThresholdFactorOutOfRange(f64),
    /// `Parallelism::Threads(0)` — the worker pool would hang forever
    /// waiting for a thread that does not exist.
    ZeroThreads,
    /// The builder's durable journal could not be opened (the message
    /// carries the journal directory and the underlying I/O error).
    Journal(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroQuantumSize => write!(f, "quantum_size must be at least 1"),
            ConfigError::ZeroWindowQuanta => write!(f, "window_quanta must be at least 1"),
            ConfigError::ZeroHighStateThreshold => {
                write!(f, "high_state_threshold must be at least 1")
            }
            ConfigError::ZeroSketchWidth => write!(f, "min_sketch_size must be at least 1"),
            ConfigError::EdgeCorrelationOutOfRange(v) => {
                write!(f, "edge_correlation_threshold must lie in [0, 1], got {v}")
            }
            ConfigError::RankThresholdFactorOutOfRange(v) => {
                write!(f, "rank_threshold_factor must be non-negative, got {v}")
            }
            ConfigError::ZeroThreads => write!(f, "parallelism thread count must be at least 1"),
            ConfigError::Journal(detail) => write!(f, "cannot open durable journal: {detail}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// All tunable parameters of the event detector.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Quantum size Δ: number of messages per quantum (nominal 160,
    /// tunable 80–240; the ground-truth study of Section 7.1 uses 800).
    pub quantum_size: usize,
    /// High-state threshold σ: a keyword enters the high state when at
    /// least this many distinct users mention it within one quantum
    /// (nominal 4).
    pub high_state_threshold: u32,
    /// Edge-correlation threshold τ: minimum Jaccard correlation between
    /// the user-id sets of two keywords for an AKG edge (nominal 0.20,
    /// tunable 0.1–0.25).
    pub edge_correlation_threshold: f64,
    /// Window length w in quanta (nominal 30, tunable 20–40).
    pub window_quanta: usize,
    /// Use the exact Jaccard coefficient instead of the min-hash estimate
    /// when computing edge correlations.  Defaults to `false` (the paper's
    /// min-hash scheme); the ablation benchmarks flip it.
    pub exact_edge_correlation: bool,
    /// Lower bound on the min-hash sketch size.  The paper's formula
    /// `p = min(σ/2, 1/τ)` yields p = 2 at the nominal thresholds, which is
    /// enough for the *edge admission gate* ("do the sketches share a
    /// minimum?") but far too coarse to compare the estimated correlation
    /// against τ.  Keeping at least this many minima makes the estimate
    /// usable while leaving the admission gate untouched (documented as a
    /// deviation in DESIGN.md).
    pub min_sketch_size: usize,
    /// Keep keywords in the AKG while they participate in a cluster even if
    /// they stop being bursty (the hysteresis / lazy-update rule of
    /// Section 3.1).  Defaults to `true`; the ablation benchmarks flip it.
    pub hysteresis: bool,
    /// Multiplier applied to the minimum possible cluster rank when
    /// filtering reported events (Section 7.2.2's rank-threshold precision
    /// filter).  1.0 keeps every structurally possible cluster.
    pub rank_threshold_factor: f64,
    /// Require at least one noun keyword in a reported event (Section
    /// 7.2.2's other precision filter).
    pub require_noun: bool,
    /// How many threads the per-quantum pipeline stages (window
    /// aggregation, sketching, candidate-edge scoring, ranking support)
    /// may fan out over.  The parallel path produces bit-identical output
    /// to [`Parallelism::Serial`]; this knob only trades wall-clock time
    /// for cores.
    pub parallelism: Parallelism,
    /// How the sliding window serves per-keyword aggregates (window
    /// sketches, window user sets/counts, recency).  `Incremental`
    /// maintains a per-keyword index updated in O(Δ) per slide;
    /// `Rebuild` walks all `w` quanta per read (the ablation baseline).
    /// Both modes are bit-identical in output and compose with
    /// [`Self::parallelism`].
    pub window_index_mode: WindowIndexMode,
    /// How the stage-3 shard partition is derived: from the persistent
    /// incrementally maintained component index (`Incremental`, the
    /// default, O(deltas) per quantum) or recomputed from every AKG edge
    /// (`Rebuild`, the ablation baseline).  Both modes are bit-identical
    /// in output, cluster ids included.
    pub component_index_mode: ComponentIndexMode,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            quantum_size: 160,
            high_state_threshold: 4,
            edge_correlation_threshold: 0.20,
            window_quanta: 30,
            exact_edge_correlation: false,
            min_sketch_size: 16,
            hysteresis: true,
            rank_threshold_factor: 1.0,
            require_noun: true,
            parallelism: Parallelism::Serial,
            window_index_mode: WindowIndexMode::Incremental,
            component_index_mode: ComponentIndexMode::Incremental,
        }
    }
}

impl DetectorConfig {
    /// The paper's nominal configuration (Table 2).
    pub fn nominal() -> Self {
        Self::default()
    }

    /// The configuration used for the ground-truth study of Section 7.1
    /// (Δ = 800, τ = 0.1, σ = 4, w = 30).
    pub fn ground_truth_study() -> Self {
        Self {
            quantum_size: 800,
            edge_correlation_threshold: 0.1,
            ..Self::default()
        }
    }

    /// Sets the quantum size (builder style).
    pub fn with_quantum_size(mut self, delta: usize) -> Self {
        self.quantum_size = delta;
        self
    }

    /// Sets the edge-correlation threshold τ (builder style).
    pub fn with_edge_correlation_threshold(mut self, tau: f64) -> Self {
        self.edge_correlation_threshold = tau;
        self
    }

    /// Sets the high-state threshold σ (builder style).
    pub fn with_high_state_threshold(mut self, sigma: u32) -> Self {
        self.high_state_threshold = sigma;
        self
    }

    /// Sets the window length in quanta (builder style).
    pub fn with_window_quanta(mut self, w: usize) -> Self {
        self.window_quanta = w;
        self
    }

    /// Sets the pipeline parallelism (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the window index mode (builder style).
    pub fn with_window_index_mode(mut self, mode: WindowIndexMode) -> Self {
        self.window_index_mode = mode;
        self
    }

    /// Sets the stage-3 component index mode (builder style).
    pub fn with_component_index_mode(mut self, mode: ComponentIndexMode) -> Self {
        self.component_index_mode = mode;
        self
    }

    /// The min-hash sketch size `p = min(σ/2, 1/τ)` of Section 3.2.2
    /// (before applying [`Self::min_sketch_size`]).
    pub fn paper_sketch_size(&self) -> usize {
        dengraph_minhash::sketch_size(self.high_state_threshold, self.edge_correlation_threshold)
    }

    /// The effective min-hash sketch size used by the detector:
    /// `max(min(σ/2, 1/τ), min_sketch_size)`.
    pub fn sketch_size(&self) -> usize {
        self.paper_sketch_size().max(self.min_sketch_size.max(1))
    }

    /// The minimum rank a structurally valid cluster of any size can reach
    /// with these thresholds: every node is supported by at least σ users
    /// and lies on a short cycle, contributing at least `σ·(1 + 2τ)` to the
    /// size-normalised rank.  Used by the rank-threshold precision filter.
    pub fn minimum_cluster_rank(&self) -> f64 {
        self.high_state_threshold as f64 * (1.0 + 2.0 * self.edge_correlation_threshold)
    }

    /// The rank below which a reported event is suppressed.
    pub fn rank_report_threshold(&self) -> f64 {
        self.minimum_cluster_rank() * self.rank_threshold_factor
    }

    /// Validates the configuration, returning a typed [`ConfigError`] when a
    /// parameter is out of range.
    ///
    /// Every degenerate value that used to slip through and panic or hang
    /// deep in the pipeline is rejected here: zero quantum/window/σ sizes,
    /// a zero sketch width, out-of-range or NaN thresholds, and a
    /// zero-thread worker pool.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.quantum_size == 0 {
            return Err(ConfigError::ZeroQuantumSize);
        }
        if self.window_quanta == 0 {
            return Err(ConfigError::ZeroWindowQuanta);
        }
        if self.high_state_threshold == 0 {
            return Err(ConfigError::ZeroHighStateThreshold);
        }
        if self.min_sketch_size == 0 {
            return Err(ConfigError::ZeroSketchWidth);
        }
        if !(0.0..=1.0).contains(&self.edge_correlation_threshold) {
            return Err(ConfigError::EdgeCorrelationOutOfRange(
                self.edge_correlation_threshold,
            ));
        }
        if self.rank_threshold_factor.is_nan() || self.rank_threshold_factor < 0.0 {
            return Err(ConfigError::RankThresholdFactorOutOfRange(
                self.rank_threshold_factor,
            ));
        }
        if let Parallelism::Threads(0) = self.parallelism {
            return Err(ConfigError::ZeroThreads);
        }
        Ok(())
    }

    /// Serialises the configuration to a [`dengraph_json::Value`].
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("quantum_size", Value::from(self.quantum_size)),
            (
                "high_state_threshold",
                Value::from(self.high_state_threshold),
            ),
            (
                "edge_correlation_threshold",
                Value::from(self.edge_correlation_threshold),
            ),
            ("window_quanta", Value::from(self.window_quanta)),
            (
                "exact_edge_correlation",
                Value::from(self.exact_edge_correlation),
            ),
            ("min_sketch_size", Value::from(self.min_sketch_size)),
            ("hysteresis", Value::from(self.hysteresis)),
            (
                "rank_threshold_factor",
                Value::from(self.rank_threshold_factor),
            ),
            ("require_noun", Value::from(self.require_noun)),
            (
                "parallelism",
                match self.parallelism {
                    Parallelism::Serial => Value::str("serial"),
                    Parallelism::Threads(n) => Value::from(n),
                },
            ),
            (
                "window_index_mode",
                match self.window_index_mode {
                    WindowIndexMode::Rebuild => Value::str("rebuild"),
                    WindowIndexMode::Incremental => Value::str("incremental"),
                },
            ),
            (
                "component_index_mode",
                match self.component_index_mode {
                    ComponentIndexMode::Rebuild => Value::str("rebuild"),
                    ComponentIndexMode::Incremental => Value::str("incremental"),
                },
            ),
        ])
    }

    /// Reconstructs a configuration serialised by [`Self::to_json`].  The
    /// result is *not* validated — callers that accept external input should
    /// follow up with [`Self::validate`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let parallelism = match value.get("parallelism")? {
            v if v.as_str().is_ok() => match v.as_str()? {
                "serial" => Parallelism::Serial,
                other => {
                    return Err(dengraph_json::JsonError {
                        message: format!("unknown parallelism '{other}'"),
                        offset: 0,
                    })
                }
            },
            v => Parallelism::Threads(v.as_usize()?),
        };
        let window_index_mode = match value.get("window_index_mode")?.as_str()? {
            "rebuild" => WindowIndexMode::Rebuild,
            "incremental" => WindowIndexMode::Incremental,
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown window_index_mode '{other}'"),
                    offset: 0,
                })
            }
        };
        let component_index_mode = match value.get("component_index_mode")?.as_str()? {
            "rebuild" => ComponentIndexMode::Rebuild,
            "incremental" => ComponentIndexMode::Incremental,
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown component_index_mode '{other}'"),
                    offset: 0,
                })
            }
        };
        Ok(Self {
            quantum_size: value.get("quantum_size")?.as_usize()?,
            high_state_threshold: value.get("high_state_threshold")?.as_u32()?,
            edge_correlation_threshold: value.get("edge_correlation_threshold")?.as_f64()?,
            window_quanta: value.get("window_quanta")?.as_usize()?,
            exact_edge_correlation: value.get("exact_edge_correlation")?.as_bool()?,
            min_sketch_size: value.get("min_sketch_size")?.as_usize()?,
            hysteresis: value.get("hysteresis")?.as_bool()?,
            rank_threshold_factor: value.get("rank_threshold_factor")?.as_f64()?,
            require_noun: value.get("require_noun")?.as_bool()?,
            parallelism,
            window_index_mode,
            component_index_mode,
        })
    }

    /// Appends the compact binary encoding.  The result is *not*
    /// validated on decode — callers accepting external input follow up
    /// with [`Self::validate`], exactly like the JSON path.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.usize(self.quantum_size);
        w.u32(self.high_state_threshold);
        w.f64(self.edge_correlation_threshold);
        w.usize(self.window_quanta);
        w.bool(self.exact_edge_correlation);
        w.usize(self.min_sketch_size);
        w.bool(self.hysteresis);
        w.f64(self.rank_threshold_factor);
        w.bool(self.require_noun);
        // 0 encodes Serial; n ≥ 1 encodes Threads(n) (Threads(0) never
        // validates, so the overlap is unambiguous).
        w.usize(match self.parallelism {
            Parallelism::Serial => 0,
            Parallelism::Threads(n) => n,
        });
        w.byte(match self.window_index_mode {
            WindowIndexMode::Rebuild => 0,
            WindowIndexMode::Incremental => 1,
        });
        w.byte(match self.component_index_mode {
            ComponentIndexMode::Rebuild => 0,
            ComponentIndexMode::Incremental => 1,
        });
    }

    /// Reconstructs a configuration encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Ok(Self {
            quantum_size: r.usize()?,
            high_state_threshold: r.u32()?,
            edge_correlation_threshold: r.f64()?,
            window_quanta: r.usize()?,
            exact_edge_correlation: r.bool()?,
            min_sketch_size: r.usize()?,
            hysteresis: r.bool()?,
            rank_threshold_factor: r.f64()?,
            require_noun: r.bool()?,
            parallelism: match r.usize()? {
                0 => Parallelism::Serial,
                n => Parallelism::Threads(n),
            },
            window_index_mode: match r.byte()? {
                0 => WindowIndexMode::Rebuild,
                1 => WindowIndexMode::Incremental,
                other => {
                    return Err(dengraph_json::JsonError {
                        message: format!("unknown window_index_mode byte {other}"),
                        offset: r.pos(),
                    })
                }
            },
            component_index_mode: match r.byte()? {
                0 => ComponentIndexMode::Rebuild,
                1 => ComponentIndexMode::Incremental,
                other => {
                    return Err(dengraph_json::JsonError {
                        message: format!("unknown component_index_mode byte {other}"),
                        offset: r.pos(),
                    })
                }
            },
        })
    }
}

impl dengraph_json::Encode for DetectorConfig {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for DetectorConfig {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_values_match_table2() {
        let c = DetectorConfig::nominal();
        assert_eq!(c.quantum_size, 160);
        assert_eq!(c.high_state_threshold, 4);
        assert!((c.edge_correlation_threshold - 0.20).abs() < f64::EPSILON);
        assert_eq!(c.window_quanta, 30);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ground_truth_study_config() {
        let c = DetectorConfig::ground_truth_study();
        assert_eq!(c.quantum_size, 800);
        assert!((c.edge_correlation_threshold - 0.1).abs() < f64::EPSILON);
    }

    #[test]
    fn builders_compose() {
        let c = DetectorConfig::nominal()
            .with_quantum_size(80)
            .with_edge_correlation_threshold(0.25)
            .with_high_state_threshold(6)
            .with_window_quanta(20)
            .with_window_index_mode(WindowIndexMode::Rebuild);
        assert_eq!(c.quantum_size, 80);
        assert_eq!(c.high_state_threshold, 6);
        assert_eq!(c.window_quanta, 20);
        assert!((c.edge_correlation_threshold - 0.25).abs() < f64::EPSILON);
        assert_eq!(c.window_index_mode, WindowIndexMode::Rebuild);
    }

    #[test]
    fn incremental_window_index_is_the_default() {
        assert_eq!(
            DetectorConfig::nominal().window_index_mode,
            WindowIndexMode::Incremental
        );
    }

    #[test]
    fn incremental_component_index_is_the_default() {
        assert_eq!(
            DetectorConfig::nominal().component_index_mode,
            ComponentIndexMode::Incremental
        );
        let c = DetectorConfig::nominal().with_component_index_mode(ComponentIndexMode::Rebuild);
        assert_eq!(c.component_index_mode, ComponentIndexMode::Rebuild);
    }

    #[test]
    fn sketch_size_follows_paper_formula_with_floor() {
        assert_eq!(DetectorConfig::nominal().paper_sketch_size(), 2);
        assert_eq!(
            DetectorConfig::nominal()
                .with_high_state_threshold(10)
                .paper_sketch_size(),
            5
        );
        // The effective size never drops below the configured floor …
        assert_eq!(DetectorConfig::nominal().sketch_size(), 16);
        // … and follows the paper's formula once that exceeds the floor.
        let big = DetectorConfig {
            high_state_threshold: 64,
            min_sketch_size: 4,
            ..DetectorConfig::nominal()
        };
        assert_eq!(big.sketch_size(), 5); // min(32, 1/0.2 = 5)
    }

    #[test]
    fn minimum_rank_and_threshold() {
        let c = DetectorConfig::nominal();
        assert!((c.minimum_cluster_rank() - 4.0 * 1.4).abs() < 1e-12);
        assert!((c.rank_report_threshold() - c.minimum_cluster_rank()).abs() < 1e-12);
        let strict = DetectorConfig {
            rank_threshold_factor: 2.0,
            ..c
        };
        assert!(strict.rank_report_threshold() > strict.minimum_cluster_rank());
    }

    #[test]
    fn validation_reports_the_exact_degenerate_value() {
        assert_eq!(
            DetectorConfig {
                quantum_size: 0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::ZeroQuantumSize)
        );
        assert_eq!(
            DetectorConfig {
                window_quanta: 0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::ZeroWindowQuanta)
        );
        assert_eq!(
            DetectorConfig {
                high_state_threshold: 0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::ZeroHighStateThreshold)
        );
        assert_eq!(
            DetectorConfig {
                min_sketch_size: 0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::ZeroSketchWidth)
        );
        assert_eq!(
            DetectorConfig {
                edge_correlation_threshold: 1.5,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::EdgeCorrelationOutOfRange(1.5))
        );
        assert_eq!(
            DetectorConfig {
                rank_threshold_factor: -1.0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::RankThresholdFactorOutOfRange(-1.0))
        );
        assert_eq!(
            DetectorConfig {
                parallelism: Parallelism::Threads(0),
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::ZeroThreads)
        );
        assert!(DetectorConfig {
            parallelism: Parallelism::Threads(4),
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    /// Regression: NaN thresholds used to slip through the range checks
    /// (`NaN < 0.0` is false) and poison every downstream rank comparison.
    #[test]
    fn validation_rejects_nan_thresholds() {
        assert!(matches!(
            DetectorConfig {
                edge_correlation_threshold: f64::NAN,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::EdgeCorrelationOutOfRange(_))
        ));
        assert!(matches!(
            DetectorConfig {
                rank_threshold_factor: f64::NAN,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::RankThresholdFactorOutOfRange(_))
        ));
    }

    #[test]
    fn config_errors_display_the_parameter() {
        assert!(ConfigError::ZeroQuantumSize.to_string().contains("quantum"));
        assert!(ConfigError::EdgeCorrelationOutOfRange(2.0)
            .to_string()
            .contains("2"));
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        for config in [
            DetectorConfig::nominal(),
            DetectorConfig::ground_truth_study(),
            DetectorConfig {
                exact_edge_correlation: true,
                hysteresis: false,
                require_noun: false,
                rank_threshold_factor: 1.25,
                parallelism: Parallelism::Threads(4),
                window_index_mode: WindowIndexMode::Rebuild,
                component_index_mode: ComponentIndexMode::Rebuild,
                ..DetectorConfig::nominal()
            },
        ] {
            let text = dengraph_json::to_string(&config.to_json());
            let back = DetectorConfig::from_json(&dengraph_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, config);
        }
    }
}
