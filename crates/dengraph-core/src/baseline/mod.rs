//! Baseline clustering schemes used by the evaluation (Section 7.3).
//!
//! * [`offline_bc`] — the offline biconnected-component clustering of
//!   Bansal et al. (VLDB 2007) as the paper describes it: after every
//!   quantum the biconnected components of the entire AKG are recomputed
//!   from scratch; edges outside any component are optionally reported as
//!   clusters of size 2.
//! * [`offline_scp`] — global recomputation of the SCP clusters every
//!   quantum (same cluster definition as the incremental detector, without
//!   the local maintenance).  This is the ablation baseline that isolates
//!   the benefit of incremental maintenance, and doubles as the correctness
//!   oracle for property P3.

// Module docs live as `//!` inner docs in each module's own file (outer
// `///` docs here would re-scope their intra-doc links into this file).
pub mod offline_bc;
pub mod offline_scp;

pub use offline_bc::{OfflineBcDetector, OfflineClusterScheme};
pub use offline_scp::OfflineScpDetector;
