//! Offline biconnected-component clustering (the Section 7.3 baseline).
//!
//! The paper compares its incremental SCP clusters against the approach of
//! Bansal et al. (VLDB 2007): "after each quantum, the BCs are computed on
//! the entire graph in an offline manner.  All the edges … which are not
//! part of any bi-connected cluster are reported as clusters of size 2."
//! This module recomputes that decomposition from scratch on demand; there
//! is deliberately no incremental state, because the absence of incremental
//! maintenance is exactly what the baseline represents.

use dengraph_graph::biconnected::biconnected_components;
use dengraph_graph::dynamic_graph::EdgeKey;
use dengraph_graph::fxhash::FxHashSet;
use dengraph_graph::{DynamicGraph, NodeId};

use crate::cluster::{Cluster, ClusterId};

/// Which flavour of the offline baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfflineClusterScheme {
    /// Only biconnected components with at least three nodes (the
    /// "Bi-connected Clusters" column of Table 3).
    BiconnectedOnly,
    /// Biconnected components plus every remaining edge as a cluster of
    /// size 2 (the "Bi-connected clusters + Edges" column of Table 3).
    BiconnectedPlusEdges,
}

/// Recomputes the offline clustering of `graph` from scratch.
///
/// Returned clusters carry ids local to this call (`0, 1, 2, …`); the
/// offline scheme has no notion of cluster identity across quanta.
pub fn offline_bc_clusters(graph: &DynamicGraph, scheme: OfflineClusterScheme) -> Vec<Cluster> {
    let components = biconnected_components(graph);
    let mut clusters = Vec::new();
    let mut next_id = 0u64;
    let mut make = |edges: Vec<EdgeKey>, clusters: &mut Vec<Cluster>| {
        let edge_set: FxHashSet<EdgeKey> = edges.into_iter().collect();
        let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
        // lint: allow(L001, deriving a set from a set; membership is order-independent)
        for e in &edge_set {
            nodes.insert(e.0);
            nodes.insert(e.1);
        }
        clusters.push(Cluster::new(ClusterId(next_id), nodes, edge_set, 0));
        next_id += 1;
    };
    for comp in components {
        let node_count = {
            let mut nodes: FxHashSet<NodeId> = FxHashSet::default();
            for e in &comp {
                nodes.insert(e.0);
                nodes.insert(e.1);
            }
            nodes.len()
        };
        match scheme {
            OfflineClusterScheme::BiconnectedOnly => {
                if node_count >= 3 {
                    make(comp, &mut clusters);
                }
            }
            OfflineClusterScheme::BiconnectedPlusEdges => {
                if node_count >= 3 {
                    make(comp, &mut clusters);
                } else {
                    // A bridge: report it as a size-2 cluster.
                    for e in comp {
                        make(vec![e], &mut clusters);
                    }
                }
            }
        }
    }
    clusters
}

/// Thin stateful wrapper so the baseline can be swapped in wherever a
/// per-quantum "cluster snapshot" provider is expected.
#[derive(Debug, Clone, Copy)]
pub struct OfflineBcDetector {
    scheme: OfflineClusterScheme,
}

impl OfflineBcDetector {
    /// Creates a baseline detector for the given scheme.
    pub fn new(scheme: OfflineClusterScheme) -> Self {
        Self { scheme }
    }

    /// The configured scheme.
    pub fn scheme(&self) -> OfflineClusterScheme {
        self.scheme
    }

    /// Recomputes the clusters of the given AKG snapshot.
    pub fn clusters(&self, graph: &DynamicGraph) -> Vec<Cluster> {
        offline_bc_clusters(graph, self.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn graph(pairs: &[(u32, u32)]) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for &(a, b) in pairs {
            g.add_edge(n(a), n(b), 1.0);
        }
        g
    }

    #[test]
    fn triangle_plus_bridge() {
        let g = graph(&[(1, 2), (2, 3), (1, 3), (3, 4)]);
        let only = offline_bc_clusters(&g, OfflineClusterScheme::BiconnectedOnly);
        assert_eq!(only.len(), 1);
        assert_eq!(only[0].size(), 3);
        let plus = offline_bc_clusters(&g, OfflineClusterScheme::BiconnectedPlusEdges);
        assert_eq!(plus.len(), 2);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = plus.iter().map(|c| c.size()).collect();
            v.sort();
            v
        };
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn five_cycle_is_a_bc_cluster_but_not_an_scp_cluster() {
        // The key structural difference to SCP clusters: a 5-cycle is
        // biconnected but has no short cycles.
        let g = graph(&[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        let bc = offline_bc_clusters(&g, OfflineClusterScheme::BiconnectedOnly);
        assert_eq!(bc.len(), 1);
        assert_eq!(bc[0].size(), 5);
        assert!(!bc[0].satisfies_scp());
        assert!(dengraph_graph::scp_clusters_global(&g).is_empty());
    }

    #[test]
    fn merged_real_events_stay_one_bc_cluster() {
        // Two triangles joined by a path of length 2: one biconnected
        // component?  No — the path makes the join nodes articulation
        // points, so BC keeps them separate; but a direct edge between the
        // triangles still separates them as BCs of their own.
        let g = graph(&[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 6), (4, 6)]);
        let bc = offline_bc_clusters(&g, OfflineClusterScheme::BiconnectedOnly);
        assert_eq!(bc.len(), 2);
    }

    #[test]
    fn detector_wrapper_delegates() {
        let g = graph(&[(1, 2), (2, 3), (1, 3)]);
        let det = OfflineBcDetector::new(OfflineClusterScheme::BiconnectedPlusEdges);
        assert_eq!(det.scheme(), OfflineClusterScheme::BiconnectedPlusEdges);
        assert_eq!(det.clusters(&g).len(), 1);
    }

    #[test]
    fn empty_graph_has_no_clusters() {
        let g = DynamicGraph::new();
        assert!(offline_bc_clusters(&g, OfflineClusterScheme::BiconnectedPlusEdges).is_empty());
    }
}
