//! Global (offline) SCP cluster recomputation.
//!
//! This baseline uses the *same* cluster definition as the incremental
//! detector — approximate MQCs via the short-cycle property — but recomputes
//! the decomposition from scratch on every quantum instead of maintaining it
//! locally.  Two roles:
//!
//! 1. **Ablation**: comparing its running time against the incremental
//!    maintenance isolates the benefit of locality (the paper reports the
//!    incremental method is ~46 % faster than offline recomputation).
//! 2. **Correctness oracle**: property P3 of Section 4.3 states that locally
//!    maintained clusters are identical to a global computation on the same
//!    graph; the integration tests assert exactly that, with this module as
//!    the global side.

use dengraph_graph::fxhash::FxHashSet;
use dengraph_graph::{scp_clusters_global, DynamicGraph};

use crate::cluster::{Cluster, ClusterId};

/// Recomputes the SCP cluster decomposition of `graph` from scratch.
pub fn offline_scp_clusters(graph: &DynamicGraph) -> Vec<Cluster> {
    scp_clusters_global(graph)
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            // lint: allow(L001, set-to-set conversions; membership is order-independent)
            let nodes: FxHashSet<_> = c.nodes.iter().copied().collect();
            // lint: allow(L001, set-to-set conversions; membership is order-independent)
            let edges: FxHashSet<_> = c.edges.iter().copied().collect();
            Cluster::new(ClusterId(i as u64), nodes, edges, 0)
        })
        .collect()
}

/// Stateless wrapper mirroring [`super::offline_bc::OfflineBcDetector`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OfflineScpDetector;

impl OfflineScpDetector {
    /// Creates the detector.
    pub fn new() -> Self {
        Self
    }

    /// Recomputes the clusters of the given AKG snapshot.
    pub fn clusters(&self, graph: &DynamicGraph) -> Vec<Cluster> {
        offline_scp_clusters(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_graph::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn graph(pairs: &[(u32, u32)]) -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for &(a, b) in pairs {
            g.add_edge(n(a), n(b), 1.0);
        }
        g
    }

    #[test]
    fn offline_scp_matches_graph_oracle() {
        let g = graph(&[(1, 2), (2, 3), (1, 3), (3, 4), (10, 11), (11, 12), (12, 10)]);
        let clusters = offline_scp_clusters(&g);
        assert_eq!(clusters.len(), 2);
        assert!(clusters.iter().all(|c| c.satisfies_scp()));
    }

    #[test]
    fn every_offline_cluster_satisfies_scp_by_construction() {
        let g = graph(&[
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
            (4, 5),
            (5, 6),
            (6, 4),
            (7, 8),
        ]);
        for c in OfflineScpDetector::new().clusters(&g) {
            assert!(c.satisfies_scp());
            assert!(c.size() >= 3);
        }
    }
}
