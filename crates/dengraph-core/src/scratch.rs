//! Reusable per-quantum scratch buffers.
//!
//! Every quantum of the hot path used to allocate its working vectors
//! fresh — candidate keyword lists, candidate pairs, the delta log, the
//! `(keyword, user)` staging buffer for window aggregation, the
//! ranking-support node list.  The [`ScratchArena`] is owned by the
//! detector and threaded through the pipeline stages instead, so
//! steady-state quanta reuse the previous quantum's capacity and perform
//! (near) zero heap allocation (`tests/allocation_gate.rs` pins this).
//!
//! Scratch contents are **never** semantically meaningful across quanta:
//! every user clears its buffer before filling it, so a freshly restored
//! detector (whose arena starts empty) is bit-identical to one that has
//! been running — the arena is excluded from checkpoints for exactly that
//! reason.

use dengraph_graph::NodeId;
use dengraph_minhash::SketchLanes;
use dengraph_stream::UserId;
use dengraph_text::KeywordId;

use crate::akg::GraphDelta;
use crate::keyword_state::{PairSortScratch, RecordStorage};

/// Reusable buffers for one detector's per-quantum pipeline.
#[derive(Debug, Default)]
pub(crate) struct ScratchArena {
    /// `(keyword, user)` staging for quantum aggregation (stage 1).
    pub pairs: Vec<(KeywordId, UserId)>,
    /// Packed key column + ping-pong buffer for the radix pair sort
    /// (stage 1).
    pub pair_sort: PairSortScratch,
    /// Batch-kernel hash/survivor lanes for the window sub-sketch builds
    /// (stage 1).
    pub lanes: SketchLanes,
    /// Backing storage recycled from the most recently evicted
    /// [`QuantumRecord`](crate::keyword_state::QuantumRecord).
    pub record_storage: Option<RecordStorage>,
    /// The AKG delta log of the current quantum (stage 2 → stage 3).
    pub deltas: Vec<GraphDelta>,
    /// Stale / lazy-demotion candidate nodes (stage 2).
    pub nodes: Vec<NodeId>,
    /// Set 1 of Section 3.2.1: this quantum's bursty keywords, sorted.
    pub set1: Vec<KeywordId>,
    /// Set 2 of Section 3.2.1: AKG keywords occurring this quantum, sorted.
    pub set2: Vec<KeywordId>,
    /// Candidate pairs among set-1 keywords.
    pub bursty_pairs: Vec<(KeywordId, KeywordId)>,
    /// Candidate pairs along existing AKG edges.
    pub edge_pairs: Vec<(KeywordId, KeywordId)>,
    /// Both candidate sets concatenated for the single scoring fan-out.
    pub all_pairs: Vec<(KeywordId, KeywordId)>,
    /// Keywords involved in any candidate pair, sorted + deduped — the
    /// key column of the correlation cache.
    pub involved: Vec<KeywordId>,
}
