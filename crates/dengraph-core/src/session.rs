//! The service-shaped session API: typed construction, push-based event
//! delivery and durable checkpoints.
//!
//! The paper's detector is an always-on service over an unbounded stream;
//! this module wraps the batch-shaped [`EventDetector`] in the three pieces
//! such a deployment needs:
//!
//! * [`DetectorBuilder`] — fallible, typed construction.  `build()` returns
//!   `Err(`[`ConfigError`]`)` for every degenerate configuration instead of
//!   panicking (or worse, hanging) deep inside the pipeline.
//! * [`EventSink`] — push-based delivery.  Sinks attached to a
//!   [`DetectorSession`] are notified of every processed quantum, every
//!   reported event and every window slide, so subscribers no longer poll
//!   `process_quantum` return values.  [`VecSink`], [`JsonLinesSink`] and
//!   [`FnSink`] cover the common cases.
//! * [`Checkpoint`] — durable state.  [`DetectorSession::checkpoint`]
//!   serialises the *complete* detector state (window records and index,
//!   AKG, cluster registry, event tracker, partial message buffer,
//!   counters) and [`DetectorSession::restore`] resumes it such that
//!   restore-then-continue is **bit-identical** to the uninterrupted run —
//!   across every `Parallelism` × `WindowIndexMode` profile
//!   (`tests/checkpoint_resume.rs` gates this).
//!
//! ```
//! use dengraph_core::{DetectorBuilder, DetectorSession, VecSink};
//! use dengraph_stream::{Message, UserId};
//! use dengraph_text::KeywordId;
//! use std::sync::{Arc, Mutex};
//!
//! let mut session = DetectorBuilder::new()
//!     .quantum_size(8)
//!     .high_state_threshold(3)
//!     .build()
//!     .expect("nominal-derived config is valid");
//! let sink = Arc::new(Mutex::new(VecSink::new()));
//! session.attach_sink(Box::new(Arc::clone(&sink)));
//!
//! for u in 0..8u64 {
//!     let keywords = if u < 5 {
//!         vec![KeywordId(1), KeywordId(2), KeywordId(3)]
//!     } else {
//!         vec![KeywordId(100 + u as u32)]
//!     };
//!     session.push_message(Message::new(UserId(u), u, keywords));
//! }
//! assert_eq!(sink.lock().unwrap().summaries().len(), 1);
//!
//! // Durable state: checkpoint, restore, continue.
//! let checkpoint = session.checkpoint();
//! let resumed = DetectorSession::restore(&checkpoint).unwrap();
//! assert_eq!(resumed.quanta_processed(), session.quanta_processed());
//! ```

use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use dengraph_json::{JsonError, WireFormat};
use dengraph_stream::{Message, Quantum};
use dengraph_text::KeywordInterner;

use crate::checkpoint::{self, CheckpointJournal, CheckpointMode};
use crate::config::{ConfigError, DetectorConfig, Parallelism, WindowIndexMode};
use crate::detector::{EventDetector, QuantumSummary};
use crate::event::EventRecord;
use crate::wal::{self, DurableJournalConfig, RecoveryReport};

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Typed, fallible construction of a [`DetectorSession`].
///
/// Defaults to the paper's nominal configuration (Table 2); every knob of
/// [`DetectorConfig`] has a builder method.  [`Self::build`] validates the
/// assembled configuration and returns a typed [`ConfigError`] instead of
/// panicking — the replacement for the deprecated `EventDetector::new`.
#[derive(Debug, Clone, Default)]
pub struct DetectorBuilder {
    config: DetectorConfig,
    interner: Option<KeywordInterner>,
    journal: Option<JournalSpec>,
}

/// What kind of checkpoint journal [`DetectorBuilder::build`] enables.
#[derive(Debug, Clone)]
enum JournalSpec {
    Memory {
        mode: CheckpointMode,
        format: WireFormat,
    },
    Durable {
        dir: PathBuf,
        config: DurableJournalConfig,
    },
}

impl DetectorBuilder {
    /// Starts from the nominal configuration of Table 2.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an explicit configuration (e.g. a sweep point or a
    /// configuration deserialised from disk).
    pub fn from_config(config: DetectorConfig) -> Self {
        Self {
            config,
            interner: None,
            journal: None,
        }
    }

    /// Sets the quantum size Δ (messages per quantum).
    pub fn quantum_size(mut self, delta: usize) -> Self {
        self.config.quantum_size = delta;
        self
    }

    /// Sets the high-state threshold σ (distinct users for burstiness).
    pub fn high_state_threshold(mut self, sigma: u32) -> Self {
        self.config.high_state_threshold = sigma;
        self
    }

    /// Sets the edge-correlation threshold τ.
    pub fn edge_correlation_threshold(mut self, tau: f64) -> Self {
        self.config.edge_correlation_threshold = tau;
        self
    }

    /// Sets the window length `w` in quanta.
    pub fn window_quanta(mut self, w: usize) -> Self {
        self.config.window_quanta = w;
        self
    }

    /// Uses the exact Jaccard coefficient instead of the min-hash estimate.
    pub fn exact_edge_correlation(mut self, exact: bool) -> Self {
        self.config.exact_edge_correlation = exact;
        self
    }

    /// Sets the lower bound on the min-hash sketch size.
    pub fn min_sketch_size(mut self, p: usize) -> Self {
        self.config.min_sketch_size = p;
        self
    }

    /// Enables or disables the cluster-membership hysteresis rule.
    pub fn hysteresis(mut self, keep: bool) -> Self {
        self.config.hysteresis = keep;
        self
    }

    /// Sets the rank-threshold precision-filter factor.
    pub fn rank_threshold_factor(mut self, factor: f64) -> Self {
        self.config.rank_threshold_factor = factor;
        self
    }

    /// Requires (or not) a noun keyword in reported events.
    pub fn require_noun(mut self, required: bool) -> Self {
        self.config.require_noun = required;
        self
    }

    /// Sets the pipeline parallelism.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets the sliding-window index mode.
    pub fn window_index_mode(mut self, mode: WindowIndexMode) -> Self {
        self.config.window_index_mode = mode;
        self
    }

    /// Supplies the keyword interner of the message stream, enabling the
    /// noun-based precision filter (Section 7.2.2).
    pub fn interner(mut self, interner: KeywordInterner) -> Self {
        self.interner = Some(interner);
        self
    }

    /// Enables an in-memory checkpoint journal (binary wire format) on
    /// the built session — the builder form of
    /// [`DetectorSession::enable_journal`].
    pub fn journal(mut self, mode: CheckpointMode) -> Self {
        self.journal = Some(JournalSpec::Memory {
            mode,
            format: WireFormat::Binary,
        });
        self
    }

    /// Enables a durable, file-backed write-ahead journal under `dir` on
    /// the built session — the builder form of
    /// [`DetectorSession::enable_durable_journal`].  An I/O failure while
    /// opening the journal surfaces from [`Self::build`] as
    /// [`ConfigError::Journal`].
    pub fn durable_journal(
        mut self,
        dir: impl Into<PathBuf>,
        config: DurableJournalConfig,
    ) -> Self {
        self.journal = Some(JournalSpec::Durable {
            dir: dir.into(),
            config,
        });
        self
    }

    /// The configuration assembled so far.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Validates the configuration and builds the session.
    ///
    /// Never panics: every degenerate configuration — zero quantum, window
    /// or σ, zero sketch width, out-of-range or NaN thresholds,
    /// `Threads(0)` — comes back as the matching [`ConfigError`] variant.
    pub fn build(self) -> Result<DetectorSession, ConfigError> {
        self.config.validate()?;
        let mut detector = EventDetector::from_config(self.config);
        if let Some(interner) = self.interner {
            detector = detector.with_interner(interner);
        }
        let mut session = DetectorSession {
            detector,
            sinks: Vec::new(),
            journal: None,
        };
        match self.journal {
            None => {}
            Some(JournalSpec::Memory { mode, format }) => {
                session.enable_journal_with_format(mode, format);
            }
            Some(JournalSpec::Durable { dir, config }) => {
                session
                    .enable_durable_journal(&dir, config)
                    .map_err(|e| ConfigError::Journal(format!("{}: {e}", dir.display())))?;
            }
        }
        Ok(session)
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A push-based subscriber to a [`DetectorSession`].
///
/// All methods have empty default bodies, so implementors override only
/// what they care about.  Per processed quantum a session calls, in order:
/// [`Self::on_slide`] (if a quantum slid out of the window),
/// [`Self::on_quantum`] with the full summary, then [`Self::on_event`] once
/// per event reported in that quantum — with the *up-to-date long-term
/// record*, so subscribers see rank history and keyword evolution without
/// keeping their own state.
pub trait EventSink {
    /// One quantum was processed.
    fn on_quantum(&mut self, _summary: &QuantumSummary) {}

    /// An event was reported in the quantum just processed.  `record` is
    /// the event's full history including this report.
    fn on_event(&mut self, _record: &EventRecord) {}

    /// The window slid past its capacity: quantum `evicted_quantum` just
    /// left the window of `window_quanta` quanta.
    fn on_slide(&mut self, _evicted_quantum: u64, _window_quanta: usize) {}

    /// Everything from one processed quantum, delivered in a single call:
    /// the slide (if any), the summary, and every reported event's
    /// up-to-date record, in that order.  The default implementation
    /// fans out to the three fine-grained callbacks, so ordinary sinks
    /// implement only those; adapters that pay a per-call cost (locks,
    /// syscalls, network round trips) override this to pay it **once per
    /// quantum** instead of once per notification.
    fn on_quantum_batch(&mut self, batch: &QuantumNotifications<'_>) {
        if let Some(evicted) = batch.evicted_quantum {
            self.on_slide(evicted, batch.window_quanta);
        }
        self.on_quantum(batch.summary);
        for record in batch.records {
            self.on_event(record);
        }
    }
}

/// One quantum's worth of sink notifications, bundled so adapters can
/// deliver them under a single lock acquisition (see
/// [`EventSink::on_quantum_batch`]).
pub struct QuantumNotifications<'a> {
    /// The processed quantum's summary.
    pub summary: &'a QuantumSummary,
    /// The up-to-date long-term record of each event reported this
    /// quantum, in report order.
    pub records: &'a [&'a EventRecord],
    /// The quantum that slid out of the window, if it was full.
    pub evicted_quantum: Option<u64>,
    /// The configured window length in quanta.
    pub window_quanta: usize,
}

/// Shared-ownership adapter: attach an `Arc<Mutex<S>>` and keep a clone to
/// read the sink's state back after (or while) the session runs.  The
/// mutex is taken **once per processed quantum** (via
/// [`EventSink::on_quantum_batch`]), not once per notification.
impl<S: EventSink> EventSink for Arc<Mutex<S>> {
    fn on_quantum(&mut self, summary: &QuantumSummary) {
        self.lock().expect("sink poisoned").on_quantum(summary);
    }

    fn on_event(&mut self, record: &EventRecord) {
        self.lock().expect("sink poisoned").on_event(record);
    }

    fn on_slide(&mut self, evicted_quantum: u64, window_quanta: usize) {
        self.lock()
            .expect("sink poisoned")
            .on_slide(evicted_quantum, window_quanta);
    }

    fn on_quantum_batch(&mut self, batch: &QuantumNotifications<'_>) {
        // One lock acquisition for the whole quantum; the inner sink's own
        // `on_quantum_batch` preserves the slide → quantum → events order.
        self.lock().expect("sink poisoned").on_quantum_batch(batch);
    }
}

/// Collects everything pushed to it (the in-memory default sink).
#[derive(Debug, Default)]
pub struct VecSink {
    summaries: Vec<QuantumSummary>,
    events: Vec<EventRecord>,
    slides: Vec<u64>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every summary received so far, in quantum order.
    pub fn summaries(&self) -> &[QuantumSummary] {
        &self.summaries
    }

    /// Every event-record snapshot received so far (one per report, so an
    /// evolving event appears repeatedly with growing history).
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Every evicted quantum index received so far.
    pub fn slides(&self) -> &[u64] {
        &self.slides
    }

    /// Consumes the sink, returning the collected summaries.
    pub fn into_summaries(self) -> Vec<QuantumSummary> {
        self.summaries
    }
}

impl EventSink for VecSink {
    fn on_quantum(&mut self, summary: &QuantumSummary) {
        self.summaries.push(summary.clone());
    }

    fn on_event(&mut self, record: &EventRecord) {
        self.events.push(record.clone());
    }

    fn on_slide(&mut self, evicted_quantum: u64, _window_quanta: usize) {
        self.slides.push(evicted_quantum);
    }
}

/// Writes one JSON object per notification to any [`Write`] destination
/// (a file, a socket, a `Vec<u8>` in tests):
/// `{"type":"quantum",…}`, `{"type":"event",…}`, `{"type":"slide",…}`.
///
/// Writes are buffered behind a [`BufWriter`] and flushed **once per
/// quantum batch** (and on drop), so a file- or socket-backed sink costs
/// one syscall per quantum instead of one per notification.
///
/// A sink must never abort the detector, so delivery failures do not
/// propagate out of the notification callbacks; instead the **first**
/// write/flush error is latched.  Callers that care about delivery call
/// [`Self::close`] when done — it surfaces the latched error (or the
/// final flush's) as a real `Err`.  A sink dropped with an unreported
/// error logs it to stderr rather than swallowing it.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    /// `None` only after `close`/`into_inner` moved the writer out.
    writer: Option<BufWriter<W>>,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Some(BufWriter::new(writer)),
            error: None,
        }
    }

    /// Flushes buffered lines to the underlying writer.  Called
    /// automatically at every quantum-batch boundary and on drop;
    /// exposed for subscribers that need an explicit sync point.
    /// Failures are latched (see [`Self::last_error`]), not returned —
    /// a sink must never abort the detector mid-quantum.
    pub fn flush(&mut self) {
        if let Some(writer) = &mut self.writer {
            if let Err(e) = writer.flush() {
                self.latch(e);
            }
        }
    }

    /// The first write or flush failure since the sink was created, if
    /// any.  Once set, it stays set (later lines may have been lost).
    pub fn last_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and unwraps the inner writer, surfacing the latched error
    /// (or the final flush's) instead of discarding it — the "did every
    /// line reach the destination?" exit path.
    pub fn close(mut self) -> io::Result<W> {
        let mut writer = self.writer.take().expect("writer present until close");
        let flushed = writer.flush();
        let inner = writer.into_parts().0;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        flushed?;
        Ok(inner)
    }

    /// Unwraps the inner writer, flushing buffered lines first.  Any
    /// latched delivery error is debug-logged on drop; use
    /// [`Self::close`] to receive it instead.
    pub fn into_inner(mut self) -> W {
        self.flush();
        let writer = self.writer.take().expect("writer present until into_inner");
        // Drop still runs on `self` and reports `self.error` if set.
        writer.into_parts().0
    }

    fn latch(&mut self, e: io::Error) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn write_line(&mut self, kind: &str, body: dengraph_json::Value) {
        use dengraph_json::Value;
        let Some(writer) = &mut self.writer else {
            return;
        };
        let mut line = match body {
            Value::Obj(map) => map,
            other => [("value".to_string(), other)].into_iter().collect(),
        };
        line.insert("type".to_string(), Value::str(kind));
        let text = dengraph_json::to_string(&Value::Obj(line));
        if let Err(e) = writeln!(writer, "{text}") {
            self.latch(e);
        }
    }
}

impl<W: Write> Drop for JsonLinesSink<W> {
    fn drop(&mut self) {
        self.flush();
        // Dropping is the lossy exit: an error nobody collected via
        // `close()`/`last_error()` would vanish silently, so make it at
        // least visible.
        if let Some(e) = &self.error {
            eprintln!("dengraph: JsonLinesSink dropped with undelivered output: {e}");
        }
    }
}

impl<W: Write> EventSink for JsonLinesSink<W> {
    fn on_quantum(&mut self, summary: &QuantumSummary) {
        self.write_line("quantum", summary.to_json());
    }

    fn on_event(&mut self, record: &EventRecord) {
        self.write_line("event", record.to_json());
    }

    fn on_slide(&mut self, evicted_quantum: u64, window_quanta: usize) {
        use dengraph_json::Value;
        self.write_line(
            "slide",
            Value::obj([
                ("evicted_quantum", Value::from(evicted_quantum)),
                ("window_quanta", Value::from(window_quanta)),
            ]),
        );
    }

    fn on_quantum_batch(&mut self, batch: &QuantumNotifications<'_>) {
        // Default fan-out (slide → quantum → events), then one flush for
        // the whole quantum.
        if let Some(evicted) = batch.evicted_quantum {
            self.on_slide(evicted, batch.window_quanta);
        }
        self.on_quantum(batch.summary);
        for record in batch.records {
            self.on_event(record);
        }
        self.flush();
    }
}

/// Adapts a closure into a per-quantum sink — the quickest way to hook a
/// dashboard or a log line onto the stream.
pub struct FnSink<F: FnMut(&QuantumSummary)> {
    f: F,
}

impl<F: FnMut(&QuantumSummary)> FnSink<F> {
    /// Wraps a closure invoked once per processed quantum.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: FnMut(&QuantumSummary)> EventSink for FnSink<F> {
    fn on_quantum(&mut self, summary: &QuantumSummary) {
        (self.f)(summary)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

/// A serialised snapshot of a [`DetectorSession`]'s complete state.
///
/// Produced by [`DetectorSession::checkpoint`], consumed by
/// [`DetectorSession::restore`].  The underlying representation is a
/// [`dengraph_json::Value`]; [`Self::to_json_string`] /
/// [`Self::from_json_str`] convert to and from the durable wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    value: dengraph_json::Value,
}

impl Checkpoint {
    /// Serialises the checkpoint to compact JSON.
    pub fn to_json_string(&self) -> String {
        dengraph_json::to_string(&self.value)
    }

    /// Parses a checkpoint from its JSON form.  Only the JSON grammar is
    /// checked here; structural and configuration validation happen in
    /// [`DetectorSession::restore`].
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Ok(Self {
            value: dengraph_json::parse(text)?,
        })
    }

    /// The checkpoint's value-model representation.
    pub fn as_value(&self) -> &dengraph_json::Value {
        &self.value
    }

    /// Wraps an already-parsed value (e.g. a checkpoint embedded in a
    /// larger document).
    pub fn from_value(value: dengraph_json::Value) -> Self {
        Self { value }
    }
}

/// Why a [`DetectorSession::restore`] failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The checkpoint is structurally broken (missing keys, wrong types,
    /// unknown format or version).
    Json(JsonError),
    /// The checkpoint's embedded configuration is degenerate.
    Config(ConfigError),
    /// The journal directory could not be read (the message carries the
    /// path and the underlying I/O error).  Note a *torn* journal tail is
    /// not an error — recovery rolls back to the last durable quantum —
    /// but an unreadable directory or a journal with no complete
    /// snapshot is.
    Io(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Json(e) => write!(f, "malformed checkpoint: {e}"),
            RestoreError::Config(e) => write!(f, "invalid configuration in checkpoint: {e}"),
            RestoreError::Io(detail) => write!(f, "cannot read journal: {detail}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<JsonError> for RestoreError {
    fn from(e: JsonError) -> Self {
        RestoreError::Json(e)
    }
}

impl From<ConfigError> for RestoreError {
    fn from(e: ConfigError) -> Self {
        RestoreError::Config(e)
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A long-running detector with attached [`EventSink`]s and durable state.
///
/// Built by [`DetectorBuilder::build`].  The polling API of the inner
/// [`EventDetector`] keeps working — [`Self::run`], [`Self::push_message`]
/// and [`Self::flush`] still *return* summaries — but every processed
/// quantum is additionally pushed to the attached sinks, so a service can
/// subscribe instead of polling.
pub struct DetectorSession {
    detector: EventDetector,
    sinks: Vec<Box<dyn EventSink>>,
    journal: Option<CheckpointJournal>,
}

impl std::fmt::Debug for DetectorSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorSession")
            .field("detector", &self.detector)
            .field("sinks", &self.sinks.len())
            .field("journal", &self.journal.is_some())
            .finish()
    }
}

impl DetectorSession {
    /// Attaches a sink; it receives every notification from now on.
    /// Returns `&mut self` so attachments chain.
    pub fn attach_sink(&mut self, sink: Box<dyn EventSink>) -> &mut Self {
        self.sinks.push(sink);
        self
    }

    /// Number of attached sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        self.detector.config()
    }

    /// Read access to the inner detector (AKG, clusters, records…).
    pub fn detector(&self) -> &EventDetector {
        &self.detector
    }

    /// The current AKG.
    pub fn akg(&self) -> &dengraph_graph::DynamicGraph {
        self.detector.akg()
    }

    /// The cluster maintainer (read access).
    pub fn clusters(&self) -> &crate::cluster::ClusterMaintainer {
        self.detector.clusters()
    }

    /// The long-term event records accumulated so far.
    pub fn event_records(&self) -> Vec<&EventRecord> {
        self.detector.event_records()
    }

    /// Event records not flagged spurious by the post-hoc heuristic.
    pub fn non_spurious_event_records(&self) -> Vec<&EventRecord> {
        self.detector.non_spurious_event_records()
    }

    /// Total messages ingested.
    pub fn total_messages(&self) -> u64 {
        self.detector.total_messages()
    }

    /// Number of quanta fully processed.
    pub fn quanta_processed(&self) -> u64 {
        self.detector.quanta_processed()
    }

    /// Messages sitting in the partially filled quantum buffer (not yet
    /// counted by [`Self::total_messages`]).  The next message any
    /// restored session expects is stream position
    /// `total_messages() + buffered_messages()` — a journal restore may
    /// land on a snapshot that still carries a partial buffer (taken
    /// mid-quantum) and those messages must **not** be re-fed.
    pub fn buffered_messages(&self) -> usize {
        self.detector.buffered_messages()
    }

    /// Streams one message; when the quantum completes, sinks are notified
    /// and the summary is also returned.
    pub fn push_message(&mut self, message: Message) -> Option<QuantumSummary> {
        let summary = self.detector.push_message(message);
        if let Some(summary) = &summary {
            self.after_quantum(summary);
        }
        summary
    }

    /// Flushes a partial quantum (e.g. at end of stream), notifying sinks.
    pub fn flush(&mut self) -> Option<QuantumSummary> {
        let summary = self.detector.flush();
        if let Some(summary) = &summary {
            self.after_quantum(summary);
        }
        summary
    }

    /// Processes one pre-batched quantum, notifying sinks.
    pub fn process_quantum(&mut self, quantum: &Quantum) -> QuantumSummary {
        let summary = self.detector.process_quantum(quantum);
        self.after_quantum(&summary);
        summary
    }

    /// Everything that happens once per completed quantum besides the
    /// detector pipeline itself: append to the checkpoint journal (if
    /// enabled), then push the batch to every sink.
    fn after_quantum(&mut self, summary: &QuantumSummary) {
        if let Some(journal) = &mut self.journal {
            journal.record_quantum(&self.detector, summary);
        }
        Self::dispatch(&self.detector, &mut self.sinks, summary);
    }

    /// Deep-checks the session's structural invariants: every stateful
    /// detector component
    /// ([`EventDetector::validate_invariants`]) plus, when a journal is
    /// enabled, a full re-read of its frame log
    /// ([`CheckpointJournal::validate_invariants`]).  O(total state +
    /// journal size) — a validation aid for tests and debugging, wired
    /// into quantum boundaries by the `invariants` cargo feature.
    pub fn validate_invariants(&self) -> Result<(), String> {
        self.detector.validate_invariants()?;
        if let Some(journal) = &self.journal {
            journal
                .validate_invariants()
                .map_err(|e| format!("journal: {e}"))?;
        }
        Ok(())
    }

    /// Runs an entire message slice through the detector (batching into
    /// quanta, flushing the remainder), notifying sinks along the way.
    /// Returns one summary per quantum, like the old polling API.
    pub fn run(&mut self, messages: &[Message]) -> Vec<QuantumSummary> {
        let mut out = Vec::new();
        for message in messages {
            if let Some(summary) = self.push_message(message.clone()) {
                out.push(summary);
            }
        }
        if let Some(summary) = self.flush() {
            out.push(summary);
        }
        out
    }

    /// Pushes one summary to every sink as a single batch per sink: slide
    /// first, then the quantum, then each reported event with its
    /// up-to-date long-term record.  The records are resolved once and
    /// shared across sinks, and batch delivery lets locking adapters take
    /// their lock once per quantum.
    fn dispatch(
        detector: &EventDetector,
        sinks: &mut [Box<dyn EventSink>],
        summary: &QuantumSummary,
    ) {
        if sinks.is_empty() {
            return;
        }
        let records: Vec<&EventRecord> = summary
            .events
            .iter()
            .filter_map(|event| detector.event_record(event.cluster_id))
            .collect();
        let batch = QuantumNotifications {
            summary,
            records: &records,
            evicted_quantum: summary.evicted_quantum,
            window_quanta: detector.config().window_quanta,
        };
        for sink in sinks {
            sink.on_quantum_batch(&batch);
        }
    }

    /// Snapshots the complete detector state — window records and
    /// incremental index, AKG graph and keyword automaton, cluster
    /// registry, event tracker, the partially filled message buffer and
    /// all counters.  Attached sinks are *not* part of the snapshot;
    /// re-attach them after [`Self::restore`].
    ///
    /// This is the JSON (debugging / cross-version fallback) form; the
    /// compact binary form is [`Self::checkpoint_bytes`] with
    /// [`WireFormat::Binary`].
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            value: self.detector.to_json(),
        }
    }

    /// Snapshots the complete detector state as standalone durable bytes
    /// in the requested wire format.  [`WireFormat::Binary`] (the
    /// default format) is typically several times smaller than the JSON
    /// text; [`WireFormat::Json`] yields exactly
    /// [`Checkpoint::to_json_string`]'s bytes.  [`Self::restore_bytes`]
    /// accepts either, sniffing the format from the first byte.
    pub fn checkpoint_bytes(&self, format: WireFormat) -> Vec<u8> {
        checkpoint::encode_checkpoint_document(&self.detector, format)
    }

    /// Reconstructs a session from checkpoint bytes written by
    /// [`Self::checkpoint_bytes`] (either wire format — the format is
    /// sniffed, JSON being the cross-version fallback).
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        Ok(Self {
            detector: checkpoint::decode_checkpoint_document(bytes)?,
            sinks: Vec::new(),
            journal: None,
        })
    }

    /// Reconstructs a session from a checkpoint.  The restored session
    /// continues exactly where the original left off: feeding both the
    /// same remaining stream produces bit-identical summaries and event
    /// records (`tests/checkpoint_resume.rs`).
    pub fn restore(checkpoint: &Checkpoint) -> Result<Self, RestoreError> {
        // Decode and validate the configuration once, surfacing a
        // degenerate one as the typed error; the detector decoder then
        // reuses the validated value.
        let config = DetectorConfig::from_json(checkpoint.value.get("config")?)?;
        config.validate()?;
        let detector = EventDetector::from_json_validated(config, &checkpoint.value)?;
        Ok(Self {
            detector,
            sinks: Vec::new(),
            journal: None,
        })
    }

    /// Enables incremental checkpointing: from now on every processed
    /// quantum appends one frame to an internal [`CheckpointJournal`]
    /// (binary wire format) — a full snapshot under
    /// [`CheckpointMode::Full`], an O(quantum Δ) [`DeltaRecord`] under
    /// [`CheckpointMode::Delta`] with periodic snapshot rebases.  The
    /// journal opens with a snapshot of the *current* state, so enabling
    /// mid-stream is safe.  Re-enabling replaces the previous journal.
    ///
    /// [`DeltaRecord`]: crate::checkpoint::DeltaRecord
    pub fn enable_journal(&mut self, mode: CheckpointMode) -> &mut Self {
        self.enable_journal_with_format(mode, WireFormat::Binary)
    }

    /// [`Self::enable_journal`] with an explicit wire format (JSON keeps
    /// the journal greppable for debugging, at a size cost).
    pub fn enable_journal_with_format(
        &mut self,
        mode: CheckpointMode,
        format: WireFormat,
    ) -> &mut Self {
        let mut journal = CheckpointJournal::with_format(mode, format);
        journal.append_snapshot(&self.detector);
        self.journal = Some(journal);
        self
    }

    /// Enables the durable, file-backed write-ahead journal: every
    /// processed quantum appends one checksummed frame to rotating
    /// segment files under `dir`, fsynced per
    /// [`config.fsync`](crate::wal::FsyncPolicy), so a crash loses at
    /// most the configured durability window and
    /// [`Self::restore_from_dir`] recovers the rest.
    ///
    /// Opening writes (and always fsyncs) an initial snapshot of the
    /// *current* state, then compacts segments left behind by earlier
    /// journal incarnations in the same directory.  Re-enabling replaces
    /// the previous journal.  Errors *after* this point do not surface
    /// from `push_message` — the first one is latched
    /// ([`Self::journal_io_error`]) and journaling stops while the
    /// detector keeps running.
    pub fn enable_durable_journal(
        &mut self,
        dir: impl AsRef<Path>,
        config: DurableJournalConfig,
    ) -> io::Result<&mut Self> {
        let journal = CheckpointJournal::open_durable(dir.as_ref(), config, &self.detector)?;
        self.journal = Some(journal);
        Ok(self)
    }

    /// The active checkpoint journal, if [`Self::enable_journal`] or
    /// [`Self::enable_durable_journal`] was called.  For an in-memory
    /// journal, [`memory_bytes`](CheckpointJournal::memory_bytes) is the
    /// durable, append-friendly byte log; a durable journal's bytes live
    /// in its segment files instead.
    pub fn journal(&self) -> Option<&CheckpointJournal> {
        self.journal.as_ref()
    }

    /// The journal's latched I/O error, if journaling has failed (always
    /// `None` for in-memory journals and sessions without a journal).
    /// After a failure the journal no longer appends; the detector keeps
    /// running.
    pub fn journal_io_error(&self) -> Option<&io::Error> {
        self.journal.as_ref().and_then(|j| j.io_error())
    }

    /// Forces all journaled frames to stable storage now, regardless of
    /// the configured [`FsyncPolicy`](crate::wal::FsyncPolicy) — the
    /// explicit sync point for `FsyncPolicy::Never`/`EveryN`
    /// deployments.  A no-op without a journal; returns the latched
    /// error if journaling already failed.
    pub fn sync_journal(&mut self) -> io::Result<()> {
        match &mut self.journal {
            Some(journal) => journal.sync(),
            None => Ok(()),
        }
    }

    /// Detaches and returns the active journal, disabling journaling.
    pub fn take_journal(&mut self) -> Option<CheckpointJournal> {
        self.journal.take()
    }

    /// Reconstructs a session from a checkpoint-journal byte log:
    /// restores the *latest* snapshot frame, then replays every delta
    /// frame after it.  The restored session is bit-identical to the
    /// session that wrote the journal as of its last frame; resume the
    /// stream from position `total_messages() + buffered_messages()` —
    /// the buffer is non-empty exactly when the restore landed on a
    /// snapshot taken mid-quantum with no delta after it, and those
    /// buffered messages must not be re-fed.  Re-enable journaling (and
    /// re-attach sinks) explicitly if the resumed session should keep
    /// checkpointing.
    pub fn restore_from_journal(bytes: &[u8]) -> Result<Self, RestoreError> {
        Ok(Self {
            detector: checkpoint::restore_journal_detector(bytes)?,
            sinks: Vec::new(),
            journal: None,
        })
    }

    /// Recovers a session from a durable journal directory written by
    /// [`Self::enable_durable_journal`]: scans the segment files in
    /// order, restores the latest snapshot and replays the delta tail.
    ///
    /// This is the crash-recovery entry point, so a **torn tail** —
    /// truncated or checksum-corrupt final frames from a crash
    /// mid-append — is *not* an error: recovery stops at the tear and
    /// the session resumes from the last fully-durable quantum (resume
    /// the stream from `total_messages() + buffered_messages()`, exactly
    /// like [`Self::restore_from_journal`]).  Errors are reserved for a
    /// directory that is unreadable, is not a journal, or holds no
    /// complete snapshot.  Journaling is **not** re-enabled on the
    /// recovered session; call [`Self::enable_durable_journal`] again
    /// (same directory is fine — recovery and startup compaction ignore
    /// the torn tail and the fresh snapshot supersedes it).
    pub fn restore_from_dir(dir: impl AsRef<Path>) -> Result<Self, RestoreError> {
        Self::restore_from_dir_with_report(dir).map(|(session, _report)| session)
    }

    /// [`Self::restore_from_dir`] plus the [`RecoveryReport`] describing
    /// what was scanned, how many deltas were replayed, and where (if
    /// anywhere) the journal was torn.
    pub fn restore_from_dir_with_report(
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), RestoreError> {
        let (detector, report) = wal::restore_detector_from_dir(dir.as_ref())?;
        Ok((
            Self {
                detector,
                sinks: Vec::new(),
                journal: None,
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigError;
    use dengraph_stream::UserId;
    use dengraph_text::KeywordId;

    fn builder() -> DetectorBuilder {
        DetectorBuilder::new()
            .quantum_size(20)
            .high_state_threshold(3)
            .edge_correlation_threshold(0.3)
            .window_quanta(4)
    }

    /// A quantum in which `users` distinct users each post the same keyword
    /// set, plus filler chatter to reach the quantum size.
    fn event_quantum(
        quantum_size: usize,
        users: u64,
        keywords: &[u32],
        time0: u64,
    ) -> Vec<Message> {
        let mut msgs = Vec::new();
        for u in 0..users {
            msgs.push(Message::new(
                UserId(100 + u),
                time0 + u,
                keywords.iter().map(|&i| KeywordId(i)).collect(),
            ));
        }
        let mut filler = 10_000 + time0 * 100;
        while msgs.len() < quantum_size {
            msgs.push(Message::new(
                UserId(filler),
                time0 + filler,
                vec![KeywordId(5_000 + filler as u32)],
            ));
            filler += 1;
        }
        msgs
    }

    #[test]
    fn build_rejects_every_degenerate_config() {
        let cases: Vec<(DetectorBuilder, ConfigError)> = vec![
            (builder().quantum_size(0), ConfigError::ZeroQuantumSize),
            (builder().window_quanta(0), ConfigError::ZeroWindowQuanta),
            (
                builder().high_state_threshold(0),
                ConfigError::ZeroHighStateThreshold,
            ),
            (builder().min_sketch_size(0), ConfigError::ZeroSketchWidth),
            (
                builder().edge_correlation_threshold(-0.1),
                ConfigError::EdgeCorrelationOutOfRange(-0.1),
            ),
            (
                builder().rank_threshold_factor(-2.0),
                ConfigError::RankThresholdFactorOutOfRange(-2.0),
            ),
            (
                builder().parallelism(Parallelism::Threads(0)),
                ConfigError::ZeroThreads,
            ),
        ];
        for (b, expected) in cases {
            assert_eq!(b.build().err(), Some(expected));
        }
        assert!(builder().build().is_ok());
    }

    #[test]
    fn sinks_receive_quanta_events_and_slides_without_polling() {
        let mut session = builder().build().unwrap();
        let sink = Arc::new(Mutex::new(VecSink::new()));
        session.attach_sink(Box::new(Arc::clone(&sink)));
        assert_eq!(session.sink_count(), 1);

        // Quantum 0 carries a correlated burst; the window (w = 4) then
        // slides past capacity on quantum 4.
        session.run(&event_quantum(20, 6, &[1, 2, 3], 0));
        for q in 1..=4u64 {
            session.run(&event_quantum(20, 0, &[], q * 1_000));
        }

        let sink = sink.lock().unwrap();
        assert_eq!(sink.summaries().len(), 5);
        assert_eq!(sink.summaries()[0].events.len(), 1);
        let reported: usize = sink.summaries().iter().map(|s| s.events.len()).sum();
        assert!(reported >= 1);
        assert_eq!(
            sink.events().len(),
            reported,
            "one record push per reported event"
        );
        assert_eq!(
            sink.events()[0].keywords,
            vec![KeywordId(1), KeywordId(2), KeywordId(3)]
        );
        assert_eq!(sink.slides(), &[0], "quantum 0 slid out at quantum 4");
    }

    /// The `Arc<Mutex<S>>` adapter must reach the inner sink through a
    /// single `on_quantum_batch` call per processed quantum (one lock
    /// acquisition), with the fine-grained callbacks fanned out inside
    /// and the slide → quantum → events order preserved.
    #[test]
    fn mutex_adapter_batches_to_one_delivery_per_quantum() {
        #[derive(Default)]
        struct BatchProbe {
            batches: usize,
            log: Vec<&'static str>,
        }
        impl EventSink for BatchProbe {
            fn on_quantum(&mut self, _summary: &QuantumSummary) {
                self.log.push("quantum");
            }
            fn on_event(&mut self, _record: &crate::event::EventRecord) {
                self.log.push("event");
            }
            fn on_slide(&mut self, _evicted: u64, _w: usize) {
                self.log.push("slide");
            }
            fn on_quantum_batch(&mut self, batch: &QuantumNotifications<'_>) {
                self.batches += 1;
                // Re-implement the default fan-out so the fine-grained
                // callbacks are still observed.
                if let Some(evicted) = batch.evicted_quantum {
                    self.on_slide(evicted, batch.window_quanta);
                }
                self.on_quantum(batch.summary);
                for record in batch.records {
                    self.on_event(record);
                }
            }
        }

        let mut session = builder().build().unwrap();
        let probe = Arc::new(Mutex::new(BatchProbe::default()));
        session.attach_sink(Box::new(Arc::clone(&probe)));
        session.run(&event_quantum(20, 6, &[1, 2, 3], 0));
        for q in 1..=4u64 {
            session.run(&event_quantum(20, 0, &[], q * 1_000));
        }
        let probe = probe.lock().unwrap();
        assert_eq!(probe.batches, 5, "exactly one batch per processed quantum");
        assert_eq!(probe.log[0], "quantum");
        assert_eq!(probe.log[1], "event", "quantum 0 reported one event");
        assert!(
            probe.log.contains(&"slide"),
            "the w=4 window slid during the run"
        );
    }

    #[test]
    fn on_event_receives_the_up_to_date_record() {
        let mut session = builder().build().unwrap();
        let sink = Arc::new(Mutex::new(VecSink::new()));
        session.attach_sink(Box::new(Arc::clone(&sink)));
        session.run(&event_quantum(20, 6, &[1, 2, 3], 0));
        session.run(&event_quantum(20, 6, &[1, 2, 3, 4], 1_000));
        let sink = sink.lock().unwrap();
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[0].rank_history.len(), 1);
        assert_eq!(sink.events()[1].rank_history.len(), 2);
        assert!(sink.events()[1].evolved());
    }

    #[test]
    fn fn_sink_observes_every_quantum() {
        let mut session = builder().build().unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_clone = Arc::clone(&seen);
        session.attach_sink(Box::new(FnSink::new(move |summary: &QuantumSummary| {
            seen_clone.lock().unwrap().push(summary.quantum);
        })));
        session.run(&event_quantum(20, 6, &[1, 2, 3], 0));
        session.run(&event_quantum(20, 0, &[], 1_000));
        assert_eq!(*seen.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_notification() {
        let mut session = builder().build().unwrap();
        session.attach_sink(Box::new(JsonLinesSink::new(Vec::new())));
        // Steal the sink back is not possible through the trait object, so
        // drive a second, standalone sink directly.
        let mut sink = JsonLinesSink::new(Vec::new());
        let summaries = session.run(&event_quantum(20, 6, &[1, 2, 3], 0));
        sink.on_quantum(&summaries[0]);
        sink.on_slide(7, 4);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let quantum = dengraph_json::parse(lines[0]).unwrap();
        assert_eq!(quantum.get("type").unwrap().as_str().unwrap(), "quantum");
        assert_eq!(quantum.get("quantum").unwrap().as_u64().unwrap(), 0);
        let slide = dengraph_json::parse(lines[1]).unwrap();
        assert_eq!(slide.get("type").unwrap().as_str().unwrap(), "slide");
        assert_eq!(slide.get("evicted_quantum").unwrap().as_u64().unwrap(), 7);
    }

    #[test]
    fn json_lines_sink_close_surfaces_latched_write_errors() {
        /// Accepts `good` bytes, then fails every later write.
        #[derive(Debug)]
        struct FailingWriter {
            good: usize,
        }
        impl io::Write for FailingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.good == 0 {
                    return Err(io::Error::other("disk full"));
                }
                let n = buf.len().min(self.good);
                self.good -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        // Clean path: close() hands the writer back.
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.on_slide(3, 4);
        let bytes = sink.close().expect("clean close succeeds");
        assert!(!bytes.is_empty());

        // Failure path: the error latched mid-run comes out of close()
        // instead of being dropped on the floor.
        let mut sink = JsonLinesSink::new(FailingWriter { good: 4 });
        sink.on_slide(3, 4);
        sink.flush();
        assert!(sink.last_error().is_some(), "flush latches the write error");
        let err = sink.close().expect_err("close surfaces the latched error");
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn checkpoint_restores_counters_and_partial_buffer() {
        let mut session = builder().build().unwrap();
        session.run(&event_quantum(20, 6, &[1, 2, 3], 0));
        // Leave 5 messages sitting in the partial-quantum buffer.
        for m in event_quantum(20, 6, &[1, 2, 3], 1_000).into_iter().take(5) {
            assert!(session.push_message(m).is_none());
        }
        let checkpoint = session.checkpoint();
        let text = checkpoint.to_json_string();
        let mut restored =
            DetectorSession::restore(&Checkpoint::from_json_str(&text).unwrap()).unwrap();
        assert_eq!(restored.quanta_processed(), 1);
        assert_eq!(restored.total_messages(), 20);
        // The buffered 5 messages survive: flushing yields a 5-message quantum.
        let summary = restored.flush().unwrap();
        assert_eq!(summary.messages, 5);
    }

    #[test]
    fn restore_rejects_tampered_configs_with_a_typed_error() {
        let session = builder().build().unwrap();
        let text = session.checkpoint().to_json_string();
        let tampered = text.replace("\"quantum_size\":20", "\"quantum_size\":0");
        assert_ne!(text, tampered, "the fixture must actually tamper");
        let checkpoint = Checkpoint::from_json_str(&tampered).unwrap();
        assert_eq!(
            DetectorSession::restore(&checkpoint).err(),
            Some(RestoreError::Config(ConfigError::ZeroQuantumSize))
        );
    }

    /// Derived state must agree with the validated configuration: a
    /// checkpoint whose window geometry was tampered (capacity, sketch
    /// size or mode out of step with the config) is rejected instead of
    /// silently restoring a self-contradictory detector.
    #[test]
    fn restore_rejects_window_geometry_contradicting_the_config() {
        let mut session = builder().build().unwrap();
        session.run(&event_quantum(20, 6, &[1, 2, 3], 0));
        let text = session.checkpoint().to_json_string();
        for (needle, replacement) in [
            ("\"capacity\":4", "\"capacity\":2"),
            ("\"capacity\":4", "\"capacity\":0"),
        ] {
            let tampered = text.replace(needle, replacement);
            assert_ne!(text, tampered, "the fixture must actually tamper");
            let checkpoint = Checkpoint::from_json_str(&tampered).unwrap();
            assert!(
                matches!(
                    DetectorSession::restore(&checkpoint),
                    Err(RestoreError::Json(_))
                ),
                "tamper {needle} -> {replacement} must be rejected"
            );
        }
    }

    #[test]
    fn restore_rejects_structural_garbage() {
        assert!(Checkpoint::from_json_str("{not json").is_err());
        let checkpoint = Checkpoint::from_json_str("{\"hello\": 1}").unwrap();
        assert!(matches!(
            DetectorSession::restore(&checkpoint),
            Err(RestoreError::Json(_))
        ));
    }

    #[test]
    fn builder_exposes_the_assembled_config() {
        let b = builder();
        assert_eq!(b.config().quantum_size, 20);
        let session = b.build().unwrap();
        assert_eq!(session.config().window_quanta, 4);
    }
}
