//! Active-CKG (AKG) maintenance — Section 3 of the paper.
//!
//! The AKG is the small, slowly changing subgraph of the CKG on which
//! clusters are actually discovered.  Per quantum the maintainer
//!
//! 1. removes *stale* keywords (not seen in any quantum of the window),
//! 2. promotes keywords that are *bursty* this quantum (≥ σ distinct users)
//!    into the high state and hence into the AKG,
//! 3. computes edge correlations for exactly the two candidate sets of
//!    Section 3.2.1 — (1) pairwise among this quantum's bursty keywords and
//!    (2) between AKG keywords occurring this quantum and their existing
//!    neighbours — adding, re-weighting or removing edges against the
//!    threshold τ, and
//! 4. lazily demotes AKG keywords that lost all their edges and are no
//!    longer bursty (the hysteresis rule keeps cluster members alive even
//!    when their frequency dips).
//!
//! Every change is reported as a [`GraphDelta`] so the cluster maintainer
//! (Section 5) can update clusters locally.
//!
//! ## Two-phase edge recomputation
//!
//! Edge-correlation work is split into a read-only **score** phase — build
//! one window sketch (or exact user set) per candidate keyword, then score
//! every candidate pair against the window — and a serial **apply** phase
//! that mutates the graph in canonical (sorted) order.  The score phase
//! carries almost all of the cost and is embarrassingly parallel, so it
//! fans out over shards per [`DetectorConfig::parallelism`]; because
//! results are collected in input order and applied canonically, the
//! parallel path is bit-identical to the serial one.

use dengraph_graph::fxhash::FxHashSet;
use dengraph_graph::{ComponentIndex, DynamicGraph, NodeId};
use dengraph_minhash::MinHashSketch;
use dengraph_parallel::par_map;
use dengraph_stream::UserId;
use dengraph_text::KeywordId;

use crate::config::DetectorConfig;
use crate::keyword_state::{KeywordState, KeywordStateMachine, QuantumRecord, WindowState};
use crate::scratch::ScratchArena;

/// Converts a keyword id into the graph-node id used by the AKG.
#[inline]
pub fn node_of(keyword: KeywordId) -> NodeId {
    NodeId(keyword.0)
}

/// Converts a graph-node id back into a keyword id.
#[inline]
pub fn keyword_of(node: NodeId) -> KeywordId {
    KeywordId(node.0)
}

/// One structural change applied to the AKG during a quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphDelta {
    /// A keyword entered the AKG.
    NodeAdded { node: NodeId },
    /// A new edge was admitted (correlation ≥ τ).
    EdgeAdded { a: NodeId, b: NodeId, weight: f64 },
    /// An existing edge's correlation was re-estimated and stays ≥ τ.
    EdgeWeightUpdated { a: NodeId, b: NodeId, weight: f64 },
    /// An existing edge's correlation dropped below τ.
    EdgeRemoved { a: NodeId, b: NodeId },
    /// A keyword left the AKG (stale or lazily demoted); all its incident
    /// edges are reported as [`GraphDelta::EdgeRemoved`] first.
    NodeRemoved { node: NodeId },
}

impl GraphDelta {
    /// Serialises the delta to a [`dengraph_json::Value`] (used by the
    /// JSON form of checkpoint-journal delta records).
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        match *self {
            GraphDelta::NodeAdded { node } => {
                Value::obj([("op", Value::str("node+")), ("node", Value::from(node.0))])
            }
            GraphDelta::EdgeAdded { a, b, weight } => Value::obj([
                ("op", Value::str("edge+")),
                ("a", Value::from(a.0)),
                ("b", Value::from(b.0)),
                ("weight", Value::from(weight)),
            ]),
            GraphDelta::EdgeWeightUpdated { a, b, weight } => Value::obj([
                ("op", Value::str("edge=")),
                ("a", Value::from(a.0)),
                ("b", Value::from(b.0)),
                ("weight", Value::from(weight)),
            ]),
            GraphDelta::EdgeRemoved { a, b } => Value::obj([
                ("op", Value::str("edge-")),
                ("a", Value::from(a.0)),
                ("b", Value::from(b.0)),
            ]),
            GraphDelta::NodeRemoved { node } => {
                Value::obj([("op", Value::str("node-")), ("node", Value::from(node.0))])
            }
        }
    }

    /// Reconstructs a delta serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let node = |v: &dengraph_json::Value| -> dengraph_json::Result<NodeId> {
            Ok(NodeId(v.get("node")?.as_u32()?))
        };
        let ends = |v: &dengraph_json::Value| -> dengraph_json::Result<(NodeId, NodeId)> {
            Ok((NodeId(v.get("a")?.as_u32()?), NodeId(v.get("b")?.as_u32()?)))
        };
        Ok(match value.get("op")?.as_str()? {
            "node+" => GraphDelta::NodeAdded { node: node(value)? },
            "edge+" => {
                let (a, b) = ends(value)?;
                GraphDelta::EdgeAdded {
                    a,
                    b,
                    weight: value.get("weight")?.as_f64()?,
                }
            }
            "edge=" => {
                let (a, b) = ends(value)?;
                GraphDelta::EdgeWeightUpdated {
                    a,
                    b,
                    weight: value.get("weight")?.as_f64()?,
                }
            }
            "edge-" => {
                let (a, b) = ends(value)?;
                GraphDelta::EdgeRemoved { a, b }
            }
            "node-" => GraphDelta::NodeRemoved { node: node(value)? },
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown graph delta op '{other}'"),
                    offset: 0,
                })
            }
        })
    }

    /// Appends the compact binary encoding (one tag byte plus operands).
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        match *self {
            GraphDelta::NodeAdded { node } => {
                w.byte(0);
                w.u32(node.0);
            }
            GraphDelta::EdgeAdded { a, b, weight } => {
                w.byte(1);
                w.u32(a.0);
                w.u32(b.0);
                w.f64(weight);
            }
            GraphDelta::EdgeWeightUpdated { a, b, weight } => {
                w.byte(2);
                w.u32(a.0);
                w.u32(b.0);
                w.f64(weight);
            }
            GraphDelta::EdgeRemoved { a, b } => {
                w.byte(3);
                w.u32(a.0);
                w.u32(b.0);
            }
            GraphDelta::NodeRemoved { node } => {
                w.byte(4);
                w.u32(node.0);
            }
        }
    }

    /// Reconstructs a delta encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Ok(match r.byte()? {
            0 => GraphDelta::NodeAdded {
                node: NodeId(r.u32()?),
            },
            1 => GraphDelta::EdgeAdded {
                a: NodeId(r.u32()?),
                b: NodeId(r.u32()?),
                weight: r.f64()?,
            },
            2 => GraphDelta::EdgeWeightUpdated {
                a: NodeId(r.u32()?),
                b: NodeId(r.u32()?),
                weight: r.f64()?,
            },
            3 => GraphDelta::EdgeRemoved {
                a: NodeId(r.u32()?),
                b: NodeId(r.u32()?),
            },
            4 => GraphDelta::NodeRemoved {
                node: NodeId(r.u32()?),
            },
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown graph delta tag {other}"),
                    offset: r.pos(),
                })
            }
        })
    }
}

/// Per-quantum summary statistics of the AKG maintenance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AkgQuantumStats {
    /// Keywords that were bursty this quantum.
    pub bursty_keywords: usize,
    /// Candidate pairs whose correlation was evaluated.
    pub pairs_evaluated: usize,
    /// Edges added this quantum.
    pub edges_added: usize,
    /// Edges removed this quantum.
    pub edges_removed: usize,
    /// Nodes added this quantum.
    pub nodes_added: usize,
    /// Nodes removed this quantum.
    pub nodes_removed: usize,
}

impl AkgQuantumStats {
    /// Serialises the statistics to a [`dengraph_json::Value`].
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("bursty_keywords", Value::from(self.bursty_keywords)),
            ("pairs_evaluated", Value::from(self.pairs_evaluated)),
            ("edges_added", Value::from(self.edges_added)),
            ("edges_removed", Value::from(self.edges_removed)),
            ("nodes_added", Value::from(self.nodes_added)),
            ("nodes_removed", Value::from(self.nodes_removed)),
        ])
    }

    /// Reconstructs statistics serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            bursty_keywords: value.get("bursty_keywords")?.as_usize()?,
            pairs_evaluated: value.get("pairs_evaluated")?.as_usize()?,
            edges_added: value.get("edges_added")?.as_usize()?,
            edges_removed: value.get("edges_removed")?.as_usize()?,
            nodes_added: value.get("nodes_added")?.as_usize()?,
            nodes_removed: value.get("nodes_removed")?.as_usize()?,
        })
    }

    /// Appends the compact binary encoding (six varints).
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.usize(self.bursty_keywords);
        w.usize(self.pairs_evaluated);
        w.usize(self.edges_added);
        w.usize(self.edges_removed);
        w.usize(self.nodes_added);
        w.usize(self.nodes_removed);
    }

    /// Reconstructs statistics encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Ok(Self {
            bursty_keywords: r.usize()?,
            pairs_evaluated: r.usize()?,
            edges_added: r.usize()?,
            edges_removed: r.usize()?,
            nodes_added: r.usize()?,
            nodes_removed: r.usize()?,
        })
    }
}

impl dengraph_json::Encode for AkgQuantumStats {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for AkgQuantumStats {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// Per-quantum cache of the window state each candidate keyword needs for
/// edge scoring: one min-hash sketch per keyword, or the exact window user
/// set when the config asks for exact Jaccard.
///
/// Under [`WindowIndexMode::Incremental`](crate::keyword_state::WindowIndexMode)
/// (the default) each entry **borrows** the window's cached per-keyword
/// sketch — zero copies; under `Rebuild` each entry is built by walking
/// all `w` window quanta (fanned out over keyword shards).  The keyword →
/// slot mapping is a binary search over the sorted `involved` column
/// instead of a hash map.  Both construction and lookup are pure reads,
/// so the score phase can run on any number of threads with identical
/// results.
enum CacheData<'w> {
    /// Borrowed cached window sketches (incremental index, the default).
    /// `None` marks a keyword absent from the window, scored as an empty
    /// sketch.
    Borrowed(Vec<Option<&'w MinHashSketch>>),
    /// Owned sketches rebuilt from the window records (`Rebuild` mode).
    Owned(Vec<MinHashSketch>),
    /// Exact window user sets (the `exact_edge_correlation` ablation).
    Exact(Vec<FxHashSet<UserId>>),
}

struct CorrelationCache<'a> {
    /// Sorted, deduped keywords; slot `i` of `data` belongs to
    /// `involved[i]`.
    involved: &'a [KeywordId],
    data: CacheData<'a>,
    /// Stand-in for keywords absent from the window (same sketch the old
    /// clone-based path materialised for them).
    empty: MinHashSketch,
}

impl<'a> CorrelationCache<'a> {
    /// Builds the cache over `involved` (sorted + deduped by the caller).
    fn build(config: &DetectorConfig, window: &'a WindowState, involved: &'a [KeywordId]) -> Self {
        let data = if config.exact_edge_correlation {
            CacheData::Exact(window.window_user_sets(involved, config.parallelism))
        } else if window.mode() == crate::keyword_state::WindowIndexMode::Incremental {
            CacheData::Borrowed(
                involved
                    .iter()
                    .map(|&k| window.window_sketch_ref(k))
                    .collect(),
            )
        } else {
            CacheData::Owned(window.window_sketches(involved, config.parallelism))
        };
        Self {
            involved,
            data,
            empty: MinHashSketch::new(window.sketch_size()),
        }
    }

    #[inline]
    fn slot(&self, keyword: KeywordId) -> usize {
        self.involved
            .binary_search(&keyword)
            .expect("candidate keyword missing from correlation cache")
    }

    /// Edge correlation of a cached pair; identical semantics to
    /// [`WindowState::estimated_edge_correlation`] /
    /// [`WindowState::exact_edge_correlation`].
    fn correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        let (ia, ib) = (self.slot(a), self.slot(b));
        let estimate = |sa: &MinHashSketch, sb: &MinHashSketch| {
            if !sa.shares_minimum(sb) {
                return 0.0;
            }
            sa.estimate_jaccard(sb)
        };
        match &self.data {
            CacheData::Borrowed(sketches) => estimate(
                sketches[ia].unwrap_or(&self.empty),
                sketches[ib].unwrap_or(&self.empty),
            ),
            CacheData::Owned(sketches) => estimate(&sketches[ia], &sketches[ib]),
            CacheData::Exact(sets) => dengraph_minhash::exact_jaccard(&sets[ia], &sets[ib]),
        }
    }
}

/// Maintains the AKG across quanta.
#[derive(Debug)]
pub struct AkgMaintainer {
    config: DetectorConfig,
    graph: DynamicGraph,
    /// Persistent connected-component index over `graph`, maintained in
    /// lock step with every mutation below so the stage-3 shard partition
    /// never re-walks the AKG's edges.
    components: ComponentIndex,
    states: KeywordStateMachine,
    last_stats: AkgQuantumStats,
    /// Cumulative wall-clock of the read-only score phase (candidate
    /// collection + correlation-cache build + pair scoring), diagnostics
    /// only — never serialised.
    score_ns: u64,
    /// Cumulative wall-clock of the mutation phases (stale removal,
    /// admission, edge apply, lazy demotion), diagnostics only.  Excludes
    /// component-index maintenance, which is attributed to `component_ns`.
    apply_ns: u64,
    /// Cumulative wall-clock of component-index maintenance, diagnostics
    /// only.
    component_ns: u64,
}

impl AkgMaintainer {
    /// Creates an empty AKG maintainer.
    pub fn new(config: DetectorConfig) -> Self {
        Self {
            config,
            graph: DynamicGraph::new(),
            components: ComponentIndex::new(),
            states: KeywordStateMachine::new(),
            last_stats: AkgQuantumStats::default(),
            score_ns: 0,
            apply_ns: 0,
            component_ns: 0,
        }
    }

    /// The current AKG.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The persistent connected-component index over the AKG, always in
    /// lock step with [`Self::graph`].
    pub fn components(&self) -> &ComponentIndex {
        &self.components
    }

    /// Statistics of the most recently processed quantum.
    pub fn last_stats(&self) -> AkgQuantumStats {
        self.last_stats
    }

    /// Cumulative `(score_ns, apply_ns, component_ns)` wall-clock split of
    /// the per-quantum maintenance: the read-only scoring phase, the
    /// serial graph-mutation phases, and the component-index maintenance
    /// carved out of the latter.
    pub fn stage_ns(&self) -> (u64, u64, u64) {
        (self.score_ns, self.apply_ns, self.component_ns)
    }

    /// Current state of a keyword.
    pub fn keyword_state(&self, keyword: KeywordId) -> KeywordState {
        self.states.state(keyword)
    }

    /// Serialises the maintainer's state (graph, component index, keyword
    /// automaton, last stats).  The configuration is *not* included — it
    /// is shared detector state and travels once at the checkpoint's top
    /// level.  The component index travels in its canonical encoding, so
    /// an incrementally maintained index and its restored twin serialise
    /// byte-identically.
    pub fn to_json(&self) -> dengraph_json::Value {
        dengraph_json::Value::obj([
            ("graph", self.graph.to_json()),
            ("components", self.components.to_json()),
            ("states", self.states.to_json()),
            ("last_stats", self.last_stats.to_json()),
        ])
    }

    /// Reconstructs a maintainer serialised by [`Self::to_json`] under the
    /// given configuration.
    pub fn from_json(
        config: DetectorConfig,
        value: &dengraph_json::Value,
    ) -> dengraph_json::Result<Self> {
        Ok(Self {
            config,
            graph: DynamicGraph::from_json(value.get("graph")?)?,
            components: ComponentIndex::from_json(value.get("components")?)?,
            states: KeywordStateMachine::from_json(value.get("states")?)?,
            last_stats: AkgQuantumStats::from_json(value.get("last_stats")?)?,
            score_ns: 0,
            apply_ns: 0,
            component_ns: 0,
        })
    }

    /// Appends the compact binary encoding (graph, keyword automaton,
    /// last stats) — the binary twin of [`Self::to_json`].
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.graph.to_bin(w);
        self.components.to_bin(w);
        self.states.to_bin(w);
        self.last_stats.to_bin(w);
    }

    /// Reconstructs a maintainer encoded by [`Self::to_bin`] under the
    /// given configuration.
    pub fn from_bin(
        config: DetectorConfig,
        r: &mut dengraph_json::BinReader<'_>,
    ) -> dengraph_json::Result<Self> {
        Ok(Self {
            config,
            graph: DynamicGraph::from_bin(r)?,
            components: ComponentIndex::from_bin(r)?,
            states: KeywordStateMachine::from_bin(r)?,
            last_stats: AkgQuantumStats::from_bin(r)?,
            score_ns: 0,
            apply_ns: 0,
            component_ns: 0,
        })
    }

    /// Re-applies one quantum's worth of logged deltas to the graph and
    /// the keyword automaton — the redo half of incremental
    /// checkpointing.  Promotions and demotions mirror the original run
    /// exactly: a node enters the AKG iff its keyword just turned bursty
    /// (promoted), and leaves it iff it was demoted, so replaying the
    /// node deltas reproduces the automaton bit-for-bit without
    /// re-scoring a single correlation.
    pub(crate) fn replay_deltas(&mut self, deltas: &[GraphDelta], stats: AkgQuantumStats) {
        for delta in deltas {
            match *delta {
                GraphDelta::NodeAdded { node } => {
                    self.graph.add_node(node);
                    self.components.add_node(node);
                    // Saturated observe is exactly "force High".
                    self.states.observe(keyword_of(node), 1, 1);
                }
                GraphDelta::NodeRemoved { node } => {
                    self.graph.remove_node(node);
                    self.components.remove_node(&self.graph, node);
                    self.states.demote(keyword_of(node));
                }
                GraphDelta::EdgeAdded { a, b, weight } => {
                    self.graph.add_edge(a, b, weight);
                    self.components.add_edge(a, b);
                }
                GraphDelta::EdgeWeightUpdated { a, b, weight } => {
                    self.graph.add_edge(a, b, weight);
                }
                GraphDelta::EdgeRemoved { a, b } => {
                    self.graph.remove_edge(a, b);
                    self.components.remove_edge(&self.graph, a, b);
                }
            }
        }
        self.last_stats = stats;
    }

    /// Processes one quantum.  `window` must already contain `record` as its
    /// most recent entry.  `cluster_members` answers "is this keyword
    /// currently part of any cluster?" — the hysteresis rule keeps such
    /// keywords in the AKG even when they stop being bursty.
    pub fn process_quantum<F>(
        &mut self,
        record: &QuantumRecord,
        window: &WindowState,
        cluster_members: F,
    ) -> Vec<GraphDelta>
    where
        F: Fn(KeywordId) -> bool,
    {
        let mut scratch = ScratchArena::default();
        self.process_quantum_into(record, window, cluster_members, &mut scratch);
        std::mem::take(&mut scratch.deltas)
    }

    /// Scratch-reusing variant of [`Self::process_quantum`]: the delta log
    /// lands in `scratch.deltas` and every working vector reuses the
    /// arena's capacity, so steady-state quanta allocate nothing here.
    pub(crate) fn process_quantum_into<F>(
        &mut self,
        record: &QuantumRecord,
        window: &WindowState,
        cluster_members: F,
        scratch: &mut ScratchArena,
    ) where
        F: Fn(KeywordId) -> bool,
    {
        let ScratchArena {
            ref mut deltas,
            ref mut nodes,
            ref mut set1,
            ref mut set2,
            ref mut bursty_pairs,
            ref mut edge_pairs,
            ref mut all_pairs,
            ref mut involved,
            ..
        } = *scratch;
        deltas.clear();
        let mut stats = AkgQuantumStats::default();
        let sigma = self.config.high_state_threshold;
        let tau = self.config.edge_correlation_threshold;
        let parallelism = self.config.parallelism;
        // Index maintenance runs inside the apply-timed segments below;
        // its growth is carved back out at the end so `apply_ns` and
        // `component_ns` stay disjoint attributions.
        let component_ns_at_entry = self.component_ns;
        let apply_start = std::time::Instant::now();

        // --- 1. stale removal -------------------------------------------------
        // Sorted so the delta order is canonical regardless of the
        // adjacency map's internal iteration order.
        nodes.clear();
        nodes.extend(
            self.graph
                .nodes()
                .filter(|&n| window.is_stale(keyword_of(n))),
        );
        nodes.sort_unstable();
        // (Index loop: `nodes` and `deltas` are sibling scratch buffers,
        // so an iterator over one would pin the borrow across the push
        // into the other.)
        #[allow(clippy::needless_range_loop)]
        for i in 0..nodes.len() {
            self.remove_node(nodes[i], deltas, &mut stats);
        }

        // --- 2. burstiness / node admission -----------------------------------
        // `record.iter()` is ascending by keyword id, so the admission
        // order is canonical without a sort.
        set1.clear();
        // set(2): keywords already in the AKG that occur in this quantum.
        set2.clear();
        for (keyword, users) in record.iter() {
            let count = users.len();
            let already_in_akg = self.graph.contains_node(node_of(keyword));
            self.states.observe(keyword, count, sigma);
            if count >= sigma as usize {
                set1.push(keyword);
                if !already_in_akg {
                    self.graph.add_node(node_of(keyword));
                    let t = std::time::Instant::now();
                    self.components.add_node(node_of(keyword));
                    self.component_ns += t.elapsed().as_nanos() as u64;
                    deltas.push(GraphDelta::NodeAdded {
                        node: node_of(keyword),
                    });
                    stats.nodes_added += 1;
                }
            }
            if already_in_akg {
                set2.push(keyword);
            }
        }
        stats.bursty_keywords = set1.len();

        self.apply_ns += apply_start.elapsed().as_nanos() as u64;
        let score_start = std::time::Instant::now();

        // --- 3. candidate collection (read-only) ------------------------------
        // Exactly the two candidate sets of Section 3.2.1: (1) pairwise
        // among this quantum's bursty keywords and (2) existing edges of
        // AKG keywords seen this quantum (skipping pairs already covered
        // by set 1).  Collected before any edge mutation so the score
        // phase can run on an immutable snapshot.  `set1` is sorted, so
        // membership is a binary search.
        bursty_pairs.clear();
        for i in 0..set1.len() {
            for j in (i + 1)..set1.len() {
                bursty_pairs.push((set1[i], set1[j]));
            }
        }
        edge_pairs.clear();
        for &keyword in set2.iter() {
            let keyword_bursty = set1.binary_search(&keyword).is_ok();
            for other in self.graph.neighbors(node_of(keyword)) {
                let other_kw = keyword_of(other);
                if keyword_bursty && set1.binary_search(&other_kw).is_ok() {
                    continue;
                }
                let pair = if keyword <= other_kw {
                    (keyword, other_kw)
                } else {
                    (other_kw, keyword)
                };
                edge_pairs.push(pair);
            }
        }
        // An edge between two set-2 keywords is reachable from both ends;
        // canonicalise + dedup so each pair is evaluated exactly once.
        edge_pairs.sort_unstable();
        edge_pairs.dedup();
        stats.pairs_evaluated = bursty_pairs.len() + edge_pairs.len();

        // --- 3a. score phase (parallel, read-only) ----------------------------
        // Both candidate sets are scored in a single fan-out (one fork-join
        // per quantum); the scores vector is split back afterwards.
        all_pairs.clear();
        all_pairs.extend(bursty_pairs.iter().copied());
        all_pairs.extend(edge_pairs.iter().copied());
        involved.clear();
        involved.extend(all_pairs.iter().flat_map(|&(a, b)| [a, b]));
        involved.sort_unstable();
        involved.dedup();
        let cache = CorrelationCache::build(&self.config, window, involved);
        let all_scores = par_map(parallelism, all_pairs, |&(a, b)| cache.correlation(a, b));
        let (bursty_scores, edge_scores) = all_scores.split_at(bursty_pairs.len());
        self.score_ns += score_start.elapsed().as_nanos() as u64;
        let apply_start = std::time::Instant::now();

        // --- 3b. apply phase (serial, canonical order) ------------------------
        for (&(a, b), &ec) in bursty_pairs.iter().zip(bursty_scores) {
            let (na, nb) = (node_of(a), node_of(b));
            if ec >= tau {
                if self.graph.contains_edge(na, nb) {
                    self.graph.set_edge_weight(na, nb, ec);
                    deltas.push(GraphDelta::EdgeWeightUpdated {
                        a: na,
                        b: nb,
                        weight: ec,
                    });
                } else {
                    self.graph.add_edge(na, nb, ec);
                    let t = std::time::Instant::now();
                    self.components.add_edge(na, nb);
                    self.component_ns += t.elapsed().as_nanos() as u64;
                    deltas.push(GraphDelta::EdgeAdded {
                        a: na,
                        b: nb,
                        weight: ec,
                    });
                    stats.edges_added += 1;
                }
            }
        }
        for (&(a, b), &ec) in edge_pairs.iter().zip(edge_scores) {
            let (na, nb) = (node_of(a), node_of(b));
            if ec >= tau {
                self.graph.set_edge_weight(na, nb, ec);
                deltas.push(GraphDelta::EdgeWeightUpdated {
                    a: na,
                    b: nb,
                    weight: ec,
                });
            } else {
                self.graph.remove_edge(na, nb);
                let t = std::time::Instant::now();
                self.components.remove_edge(&self.graph, na, nb);
                self.component_ns += t.elapsed().as_nanos() as u64;
                deltas.push(GraphDelta::EdgeRemoved { a: na, b: nb });
                stats.edges_removed += 1;
            }
        }

        // --- 4. lazy demotion --------------------------------------------------
        nodes.clear();
        nodes.extend(self.graph.nodes().filter(|&n| self.graph.degree(n) == 0));
        nodes.sort_unstable();
        #[allow(clippy::needless_range_loop)]
        for i in 0..nodes.len() {
            let node = nodes[i];
            let keyword = keyword_of(node);
            if set1.binary_search(&keyword).is_ok() {
                continue;
            }
            let keep = self.config.hysteresis && cluster_members(keyword);
            if !keep {
                self.remove_node(node, deltas, &mut stats);
            }
        }

        self.apply_ns += apply_start.elapsed().as_nanos() as u64;
        self.apply_ns = self
            .apply_ns
            .saturating_sub(self.component_ns - component_ns_at_entry);
        self.last_stats = stats;
    }

    /// Removes a node (and its incident edges) from the AKG, recording the
    /// corresponding deltas and re-fragmenting the component index.
    fn remove_node(
        &mut self,
        node: NodeId,
        deltas: &mut Vec<GraphDelta>,
        stats: &mut AkgQuantumStats,
    ) {
        let removed_edges = self.graph.remove_node(node);
        let t = std::time::Instant::now();
        self.components.remove_node(&self.graph, node);
        self.component_ns += t.elapsed().as_nanos() as u64;
        for (edge, _) in removed_edges {
            deltas.push(GraphDelta::EdgeRemoved {
                a: edge.0,
                b: edge.1,
            });
            stats.edges_removed += 1;
        }
        deltas.push(GraphDelta::NodeRemoved { node });
        stats.nodes_removed += 1;
        self.states.demote(keyword_of(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_minhash::UserHasher;
    use dengraph_stream::{Message, UserId};

    fn config() -> DetectorConfig {
        DetectorConfig {
            high_state_threshold: 3,
            edge_correlation_threshold: 0.3,
            window_quanta: 3,
            ..Default::default()
        }
    }

    fn k(i: u32) -> KeywordId {
        KeywordId(i)
    }

    fn msg(user: u64, kws: &[u32]) -> Message {
        Message::new(UserId(user), 0, kws.iter().map(|&i| KeywordId(i)).collect())
    }

    /// Pushes a quantum of messages through a window + maintainer pair.
    fn step(
        akg: &mut AkgMaintainer,
        window: &mut WindowState,
        index: u64,
        messages: &[Message],
    ) -> Vec<GraphDelta> {
        let record = QuantumRecord::from_messages(index, messages);
        window.push(record.clone());
        akg.process_quantum(&record, window, |_| false)
    }

    fn window_for(cfg: &DetectorConfig) -> WindowState {
        WindowState::new(cfg.window_quanta, cfg.sketch_size(), UserHasher::new(1))
    }

    /// Messages where three users all mention keywords 1 and 2 together.
    fn correlated_burst() -> Vec<Message> {
        vec![
            msg(1, &[1, 2]),
            msg(2, &[1, 2]),
            msg(3, &[1, 2]),
            msg(4, &[50]),
            msg(5, &[51]),
        ]
    }

    #[test]
    fn bursty_correlated_keywords_get_nodes_and_an_edge() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        let deltas = step(&mut akg, &mut window, 0, &correlated_burst());
        assert!(akg.graph().contains_node(node_of(k(1))));
        assert!(akg.graph().contains_node(node_of(k(2))));
        assert!(akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
        assert!(deltas
            .iter()
            .any(|d| matches!(d, GraphDelta::EdgeAdded { .. })));
        // Non-bursty keywords stay out of the AKG.
        assert!(!akg.graph().contains_node(node_of(k(50))));
        assert_eq!(akg.keyword_state(k(1)), KeywordState::High);
        assert_eq!(akg.keyword_state(k(50)), KeywordState::Low);
    }

    #[test]
    fn uncorrelated_bursty_keywords_get_no_edge() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        // Keywords 1 and 2 are each bursty but never used by the same user.
        let messages = vec![
            msg(1, &[1]),
            msg(2, &[1]),
            msg(3, &[1]),
            msg(4, &[2]),
            msg(5, &[2]),
            msg(6, &[2]),
        ];
        step(&mut akg, &mut window, 0, &messages);
        assert!(akg.graph().contains_node(node_of(k(1))));
        assert!(akg.graph().contains_node(node_of(k(2))));
        assert!(!akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
    }

    #[test]
    fn stale_keywords_are_removed_after_the_window_passes() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        step(&mut akg, &mut window, 0, &correlated_burst());
        assert!(akg.graph().contains_node(node_of(k(1))));
        // Three quanta of unrelated traffic push the burst out of the window.
        for q in 1..=3 {
            step(&mut akg, &mut window, q, &[msg(9, &[90]), msg(10, &[91])]);
        }
        assert!(!akg.graph().contains_node(node_of(k(1))));
        assert!(!akg.graph().contains_node(node_of(k(2))));
        assert_eq!(akg.keyword_state(k(1)), KeywordState::Low);
    }

    #[test]
    fn edge_is_dropped_when_correlation_decays() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        step(&mut akg, &mut window, 0, &correlated_burst());
        assert!(akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
        // Subsequent quanta: keyword 1 is used by many users *without*
        // keyword 2, so the window Jaccard drops below tau; keyword 1 keeps
        // occurring so set(2) refreshes the edge.
        for q in 1..=2 {
            let messages: Vec<Message> = (0..12).map(|u| msg(100 + u + q * 50, &[1])).collect();
            step(&mut akg, &mut window, q, &messages);
        }
        assert!(!akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
    }

    #[test]
    fn isolated_non_bursty_nodes_are_lazily_demoted() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        // Keyword 1 bursts alone (no correlated partner): node added, no edges.
        let messages = vec![msg(1, &[1]), msg(2, &[1]), msg(3, &[1])];
        step(&mut akg, &mut window, 0, &messages);
        assert!(akg.graph().contains_node(node_of(k(1))));
        // Next quantum it appears once (not bursty): with no cluster
        // membership, the lazy update removes it.
        step(&mut akg, &mut window, 1, &[msg(4, &[1])]);
        assert!(!akg.graph().contains_node(node_of(k(1))));
    }

    #[test]
    fn cluster_membership_keeps_nodes_via_hysteresis() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        let messages = vec![msg(1, &[1]), msg(2, &[1]), msg(3, &[1])];
        let record = QuantumRecord::from_messages(0, &messages);
        window.push(record.clone());
        akg.process_quantum(&record, &window, |_| false);
        assert!(akg.graph().contains_node(node_of(k(1))));
        // Keyword 1 stops being bursty but is claimed by a cluster.
        let record = QuantumRecord::from_messages(1, &[msg(4, &[1])]);
        window.push(record.clone());
        akg.process_quantum(&record, &window, |kw| kw == k(1));
        assert!(
            akg.graph().contains_node(node_of(k(1))),
            "cluster membership must keep the node"
        );
    }

    #[test]
    fn stats_reflect_the_quantum() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        step(&mut akg, &mut window, 0, &correlated_burst());
        let stats = akg.last_stats();
        assert_eq!(stats.bursty_keywords, 2);
        assert_eq!(stats.nodes_added, 2);
        assert_eq!(stats.edges_added, 1);
        assert!(stats.pairs_evaluated >= 1);
    }

    #[test]
    fn exact_and_minhash_agree_on_strong_correlation() {
        for exact in [false, true] {
            let cfg = DetectorConfig {
                exact_edge_correlation: exact,
                ..config()
            };
            let mut akg = AkgMaintainer::new(cfg.clone());
            let mut window = window_for(&cfg);
            step(&mut akg, &mut window, 0, &correlated_burst());
            assert!(
                akg.graph().contains_edge(node_of(k(1)), node_of(k(2))),
                "edge must exist with exact_edge_correlation={exact}"
            );
        }
    }

    #[test]
    fn node_conversion_round_trips() {
        assert_eq!(keyword_of(node_of(k(17))), k(17));
    }
}
