//! Active-CKG (AKG) maintenance — Section 3 of the paper.
//!
//! The AKG is the small, slowly changing subgraph of the CKG on which
//! clusters are actually discovered.  Per quantum the maintainer
//!
//! 1. removes *stale* keywords (not seen in any quantum of the window),
//! 2. promotes keywords that are *bursty* this quantum (≥ σ distinct users)
//!    into the high state and hence into the AKG,
//! 3. computes edge correlations for exactly the two candidate sets of
//!    Section 3.2.1 — (1) pairwise among this quantum's bursty keywords and
//!    (2) between AKG keywords occurring this quantum and their existing
//!    neighbours — adding, re-weighting or removing edges against the
//!    threshold τ, and
//! 4. lazily demotes AKG keywords that lost all their edges and are no
//!    longer bursty (the hysteresis rule keeps cluster members alive even
//!    when their frequency dips).
//!
//! Every change is reported as a [`GraphDelta`] so the cluster maintainer
//! (Section 5) can update clusters locally.
//!
//! ## Two-phase edge recomputation
//!
//! Edge-correlation work is split into a read-only **score** phase — build
//! one window sketch (or exact user set) per candidate keyword, then score
//! every candidate pair against the window — and a serial **apply** phase
//! that mutates the graph in canonical (sorted) order.  The score phase
//! carries almost all of the cost and is embarrassingly parallel, so it
//! fans out over shards per [`DetectorConfig::parallelism`]; because
//! results are collected in input order and applied canonically, the
//! parallel path is bit-identical to the serial one.

use dengraph_graph::fxhash::{FxHashMap, FxHashSet};
use dengraph_graph::{DynamicGraph, NodeId};
use dengraph_minhash::MinHashSketch;
use dengraph_parallel::par_map;
use dengraph_stream::UserId;
use dengraph_text::KeywordId;

use crate::config::DetectorConfig;
use crate::keyword_state::{KeywordState, KeywordStateMachine, QuantumRecord, WindowState};

/// Converts a keyword id into the graph-node id used by the AKG.
#[inline]
pub fn node_of(keyword: KeywordId) -> NodeId {
    NodeId(keyword.0)
}

/// Converts a graph-node id back into a keyword id.
#[inline]
pub fn keyword_of(node: NodeId) -> KeywordId {
    KeywordId(node.0)
}

/// One structural change applied to the AKG during a quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphDelta {
    /// A keyword entered the AKG.
    NodeAdded { node: NodeId },
    /// A new edge was admitted (correlation ≥ τ).
    EdgeAdded { a: NodeId, b: NodeId, weight: f64 },
    /// An existing edge's correlation was re-estimated and stays ≥ τ.
    EdgeWeightUpdated { a: NodeId, b: NodeId, weight: f64 },
    /// An existing edge's correlation dropped below τ.
    EdgeRemoved { a: NodeId, b: NodeId },
    /// A keyword left the AKG (stale or lazily demoted); all its incident
    /// edges are reported as [`GraphDelta::EdgeRemoved`] first.
    NodeRemoved { node: NodeId },
}

/// Per-quantum summary statistics of the AKG maintenance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AkgQuantumStats {
    /// Keywords that were bursty this quantum.
    pub bursty_keywords: usize,
    /// Candidate pairs whose correlation was evaluated.
    pub pairs_evaluated: usize,
    /// Edges added this quantum.
    pub edges_added: usize,
    /// Edges removed this quantum.
    pub edges_removed: usize,
    /// Nodes added this quantum.
    pub nodes_added: usize,
    /// Nodes removed this quantum.
    pub nodes_removed: usize,
}

impl AkgQuantumStats {
    /// Serialises the statistics to a [`dengraph_json::Value`].
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("bursty_keywords", Value::from(self.bursty_keywords)),
            ("pairs_evaluated", Value::from(self.pairs_evaluated)),
            ("edges_added", Value::from(self.edges_added)),
            ("edges_removed", Value::from(self.edges_removed)),
            ("nodes_added", Value::from(self.nodes_added)),
            ("nodes_removed", Value::from(self.nodes_removed)),
        ])
    }

    /// Reconstructs statistics serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            bursty_keywords: value.get("bursty_keywords")?.as_usize()?,
            pairs_evaluated: value.get("pairs_evaluated")?.as_usize()?,
            edges_added: value.get("edges_added")?.as_usize()?,
            edges_removed: value.get("edges_removed")?.as_usize()?,
            nodes_added: value.get("nodes_added")?.as_usize()?,
            nodes_removed: value.get("nodes_removed")?.as_usize()?,
        })
    }
}

/// Per-quantum cache of the window state each candidate keyword needs for
/// edge scoring: one min-hash sketch per keyword, or the exact window user
/// set when the config asks for exact Jaccard.
///
/// Under [`WindowIndexMode::Incremental`](crate::keyword_state::WindowIndexMode)
/// (the default) each entry is an O(p) clone of the window's cached
/// per-keyword sketch (or an O(set) copy of its indexed user set); under
/// `Rebuild` building an entry walks all `w` window quanta.  Either way
/// construction fans out over keyword shards and scoring a pair touches
/// only the two cached entries.  Both construction and lookup are pure
/// reads, so the score phase can run on any number of threads with
/// identical results.
enum CorrelationCache {
    /// Min-hash sketches (the paper's estimator, Section 3.2.2).
    Sketches {
        index: FxHashMap<KeywordId, usize>,
        sketches: Vec<MinHashSketch>,
    },
    /// Exact window user sets (the `exact_edge_correlation` ablation).
    Exact {
        index: FxHashMap<KeywordId, usize>,
        sets: Vec<FxHashSet<UserId>>,
    },
}

impl CorrelationCache {
    /// Builds the cache for every keyword appearing in `pairs`.
    fn build<'p, I>(config: &DetectorConfig, window: &WindowState, pairs: I) -> Self
    where
        I: Iterator<Item = &'p (KeywordId, KeywordId)>,
    {
        let mut involved: Vec<KeywordId> = pairs.flat_map(|&(a, b)| [a, b]).collect();
        involved.sort_unstable();
        involved.dedup();
        let index: FxHashMap<KeywordId, usize> =
            involved.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        if config.exact_edge_correlation {
            let sets = window.window_user_sets(&involved, config.parallelism);
            CorrelationCache::Exact { index, sets }
        } else {
            let sketches = window.window_sketches(&involved, config.parallelism);
            CorrelationCache::Sketches { index, sketches }
        }
    }

    /// Edge correlation of a cached pair; identical semantics to
    /// [`WindowState::estimated_edge_correlation`] /
    /// [`WindowState::exact_edge_correlation`].
    fn correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        match self {
            CorrelationCache::Sketches { index, sketches } => {
                let sa = &sketches[index[&a]];
                let sb = &sketches[index[&b]];
                if !sa.shares_minimum(sb) {
                    return 0.0;
                }
                sa.estimate_jaccard(sb)
            }
            CorrelationCache::Exact { index, sets } => {
                dengraph_minhash::exact_jaccard(&sets[index[&a]], &sets[index[&b]])
            }
        }
    }
}

/// Maintains the AKG across quanta.
#[derive(Debug)]
pub struct AkgMaintainer {
    config: DetectorConfig,
    graph: DynamicGraph,
    states: KeywordStateMachine,
    last_stats: AkgQuantumStats,
}

impl AkgMaintainer {
    /// Creates an empty AKG maintainer.
    pub fn new(config: DetectorConfig) -> Self {
        Self {
            config,
            graph: DynamicGraph::new(),
            states: KeywordStateMachine::new(),
            last_stats: AkgQuantumStats::default(),
        }
    }

    /// The current AKG.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Statistics of the most recently processed quantum.
    pub fn last_stats(&self) -> AkgQuantumStats {
        self.last_stats
    }

    /// Current state of a keyword.
    pub fn keyword_state(&self, keyword: KeywordId) -> KeywordState {
        self.states.state(keyword)
    }

    /// Serialises the maintainer's state (graph, keyword automaton, last
    /// stats).  The configuration is *not* included — it is shared detector
    /// state and travels once at the checkpoint's top level.
    pub fn to_json(&self) -> dengraph_json::Value {
        dengraph_json::Value::obj([
            ("graph", self.graph.to_json()),
            ("states", self.states.to_json()),
            ("last_stats", self.last_stats.to_json()),
        ])
    }

    /// Reconstructs a maintainer serialised by [`Self::to_json`] under the
    /// given configuration.
    pub fn from_json(
        config: DetectorConfig,
        value: &dengraph_json::Value,
    ) -> dengraph_json::Result<Self> {
        Ok(Self {
            config,
            graph: DynamicGraph::from_json(value.get("graph")?)?,
            states: KeywordStateMachine::from_json(value.get("states")?)?,
            last_stats: AkgQuantumStats::from_json(value.get("last_stats")?)?,
        })
    }

    /// Processes one quantum.  `window` must already contain `record` as its
    /// most recent entry.  `cluster_members` answers "is this keyword
    /// currently part of any cluster?" — the hysteresis rule keeps such
    /// keywords in the AKG even when they stop being bursty.
    pub fn process_quantum<F>(
        &mut self,
        record: &QuantumRecord,
        window: &WindowState,
        cluster_members: F,
    ) -> Vec<GraphDelta>
    where
        F: Fn(KeywordId) -> bool,
    {
        let mut deltas = Vec::new();
        let mut stats = AkgQuantumStats::default();
        let sigma = self.config.high_state_threshold;
        let tau = self.config.edge_correlation_threshold;
        let parallelism = self.config.parallelism;

        // --- 1. stale removal -------------------------------------------------
        // Sorted so the delta order is canonical regardless of the
        // adjacency map's internal iteration order.
        let mut stale: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|&n| window.is_stale(keyword_of(n)))
            .collect();
        stale.sort_unstable();
        for node in stale {
            self.remove_node(node, &mut deltas, &mut stats);
        }

        // --- 2. burstiness / node admission -----------------------------------
        let mut quantum_keywords: Vec<KeywordId> = record.keywords().collect();
        quantum_keywords.sort_unstable();
        let mut set1: Vec<KeywordId> = Vec::new();
        // set(2): keywords already in the AKG that occur in this quantum.
        let mut set2: Vec<KeywordId> = Vec::new();
        for &keyword in &quantum_keywords {
            let count = record.user_count(keyword);
            let already_in_akg = self.graph.contains_node(node_of(keyword));
            self.states.observe(keyword, count, sigma);
            if count >= sigma as usize {
                set1.push(keyword);
                if !already_in_akg {
                    self.graph.add_node(node_of(keyword));
                    deltas.push(GraphDelta::NodeAdded {
                        node: node_of(keyword),
                    });
                    stats.nodes_added += 1;
                }
            }
            if already_in_akg {
                set2.push(keyword);
            }
        }
        stats.bursty_keywords = set1.len();

        // --- 3. candidate collection (read-only) ------------------------------
        // Exactly the two candidate sets of Section 3.2.1: (1) pairwise
        // among this quantum's bursty keywords and (2) existing edges of
        // AKG keywords seen this quantum (skipping pairs already covered
        // by set 1).  Collected before any edge mutation so the score
        // phase can run on an immutable snapshot.
        let set1_lookup: FxHashSet<KeywordId> = set1.iter().copied().collect();
        let mut bursty_pairs: Vec<(KeywordId, KeywordId)> = Vec::new();
        for i in 0..set1.len() {
            for j in (i + 1)..set1.len() {
                bursty_pairs.push((set1[i], set1[j]));
            }
        }
        let mut edge_pairs: Vec<(KeywordId, KeywordId)> = Vec::new();
        for &keyword in &set2 {
            for other in self.graph.neighbors(node_of(keyword)) {
                let other_kw = keyword_of(other);
                if set1_lookup.contains(&keyword) && set1_lookup.contains(&other_kw) {
                    continue;
                }
                let pair = if keyword <= other_kw {
                    (keyword, other_kw)
                } else {
                    (other_kw, keyword)
                };
                edge_pairs.push(pair);
            }
        }
        // An edge between two set-2 keywords is reachable from both ends;
        // canonicalise + dedup so each pair is evaluated exactly once.
        edge_pairs.sort_unstable();
        edge_pairs.dedup();
        stats.pairs_evaluated = bursty_pairs.len() + edge_pairs.len();

        // --- 3a. score phase (parallel, read-only) ----------------------------
        let cache = CorrelationCache::build(
            &self.config,
            window,
            bursty_pairs.iter().chain(edge_pairs.iter()),
        );
        // Both candidate sets are scored in a single fan-out (one fork-join
        // per quantum); the scores vector is split back afterwards.
        let all_pairs: Vec<(KeywordId, KeywordId)> = bursty_pairs
            .iter()
            .chain(edge_pairs.iter())
            .copied()
            .collect();
        let all_scores = par_map(parallelism, &all_pairs, |&(a, b)| cache.correlation(a, b));
        let (bursty_scores, edge_scores) = all_scores.split_at(bursty_pairs.len());

        // --- 3b. apply phase (serial, canonical order) ------------------------
        for (&(a, b), &ec) in bursty_pairs.iter().zip(bursty_scores) {
            let (na, nb) = (node_of(a), node_of(b));
            if ec >= tau {
                if self.graph.contains_edge(na, nb) {
                    self.graph.set_edge_weight(na, nb, ec);
                    deltas.push(GraphDelta::EdgeWeightUpdated {
                        a: na,
                        b: nb,
                        weight: ec,
                    });
                } else {
                    self.graph.add_edge(na, nb, ec);
                    deltas.push(GraphDelta::EdgeAdded {
                        a: na,
                        b: nb,
                        weight: ec,
                    });
                    stats.edges_added += 1;
                }
            }
        }
        for (&(a, b), &ec) in edge_pairs.iter().zip(edge_scores) {
            let (na, nb) = (node_of(a), node_of(b));
            if ec >= tau {
                self.graph.set_edge_weight(na, nb, ec);
                deltas.push(GraphDelta::EdgeWeightUpdated {
                    a: na,
                    b: nb,
                    weight: ec,
                });
            } else {
                self.graph.remove_edge(na, nb);
                deltas.push(GraphDelta::EdgeRemoved { a: na, b: nb });
                stats.edges_removed += 1;
            }
        }

        // --- 4. lazy demotion --------------------------------------------------
        let bursty_now = set1_lookup;
        let mut candidates: Vec<NodeId> = self
            .graph
            .nodes()
            .filter(|&n| self.graph.degree(n) == 0)
            .collect();
        candidates.sort_unstable();
        for node in candidates {
            let keyword = keyword_of(node);
            if bursty_now.contains(&keyword) {
                continue;
            }
            let keep = self.config.hysteresis && cluster_members(keyword);
            if !keep {
                self.remove_node(node, &mut deltas, &mut stats);
            }
        }

        self.last_stats = stats;
        deltas
    }

    /// Removes a node (and its incident edges) from the AKG, recording the
    /// corresponding deltas.
    fn remove_node(
        &mut self,
        node: NodeId,
        deltas: &mut Vec<GraphDelta>,
        stats: &mut AkgQuantumStats,
    ) {
        let removed_edges = self.graph.remove_node(node);
        for (edge, _) in removed_edges {
            deltas.push(GraphDelta::EdgeRemoved {
                a: edge.0,
                b: edge.1,
            });
            stats.edges_removed += 1;
        }
        deltas.push(GraphDelta::NodeRemoved { node });
        stats.nodes_removed += 1;
        self.states.demote(keyword_of(node));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_minhash::UserHasher;
    use dengraph_stream::{Message, UserId};

    fn config() -> DetectorConfig {
        DetectorConfig {
            high_state_threshold: 3,
            edge_correlation_threshold: 0.3,
            window_quanta: 3,
            ..Default::default()
        }
    }

    fn k(i: u32) -> KeywordId {
        KeywordId(i)
    }

    fn msg(user: u64, kws: &[u32]) -> Message {
        Message::new(UserId(user), 0, kws.iter().map(|&i| KeywordId(i)).collect())
    }

    /// Pushes a quantum of messages through a window + maintainer pair.
    fn step(
        akg: &mut AkgMaintainer,
        window: &mut WindowState,
        index: u64,
        messages: &[Message],
    ) -> Vec<GraphDelta> {
        let record = QuantumRecord::from_messages(index, messages);
        window.push(record.clone());
        akg.process_quantum(&record, window, |_| false)
    }

    fn window_for(cfg: &DetectorConfig) -> WindowState {
        WindowState::new(cfg.window_quanta, cfg.sketch_size(), UserHasher::new(1))
    }

    /// Messages where three users all mention keywords 1 and 2 together.
    fn correlated_burst() -> Vec<Message> {
        vec![
            msg(1, &[1, 2]),
            msg(2, &[1, 2]),
            msg(3, &[1, 2]),
            msg(4, &[50]),
            msg(5, &[51]),
        ]
    }

    #[test]
    fn bursty_correlated_keywords_get_nodes_and_an_edge() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        let deltas = step(&mut akg, &mut window, 0, &correlated_burst());
        assert!(akg.graph().contains_node(node_of(k(1))));
        assert!(akg.graph().contains_node(node_of(k(2))));
        assert!(akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
        assert!(deltas
            .iter()
            .any(|d| matches!(d, GraphDelta::EdgeAdded { .. })));
        // Non-bursty keywords stay out of the AKG.
        assert!(!akg.graph().contains_node(node_of(k(50))));
        assert_eq!(akg.keyword_state(k(1)), KeywordState::High);
        assert_eq!(akg.keyword_state(k(50)), KeywordState::Low);
    }

    #[test]
    fn uncorrelated_bursty_keywords_get_no_edge() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        // Keywords 1 and 2 are each bursty but never used by the same user.
        let messages = vec![
            msg(1, &[1]),
            msg(2, &[1]),
            msg(3, &[1]),
            msg(4, &[2]),
            msg(5, &[2]),
            msg(6, &[2]),
        ];
        step(&mut akg, &mut window, 0, &messages);
        assert!(akg.graph().contains_node(node_of(k(1))));
        assert!(akg.graph().contains_node(node_of(k(2))));
        assert!(!akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
    }

    #[test]
    fn stale_keywords_are_removed_after_the_window_passes() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        step(&mut akg, &mut window, 0, &correlated_burst());
        assert!(akg.graph().contains_node(node_of(k(1))));
        // Three quanta of unrelated traffic push the burst out of the window.
        for q in 1..=3 {
            step(&mut akg, &mut window, q, &[msg(9, &[90]), msg(10, &[91])]);
        }
        assert!(!akg.graph().contains_node(node_of(k(1))));
        assert!(!akg.graph().contains_node(node_of(k(2))));
        assert_eq!(akg.keyword_state(k(1)), KeywordState::Low);
    }

    #[test]
    fn edge_is_dropped_when_correlation_decays() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        step(&mut akg, &mut window, 0, &correlated_burst());
        assert!(akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
        // Subsequent quanta: keyword 1 is used by many users *without*
        // keyword 2, so the window Jaccard drops below tau; keyword 1 keeps
        // occurring so set(2) refreshes the edge.
        for q in 1..=2 {
            let messages: Vec<Message> = (0..12).map(|u| msg(100 + u + q * 50, &[1])).collect();
            step(&mut akg, &mut window, q, &messages);
        }
        assert!(!akg.graph().contains_edge(node_of(k(1)), node_of(k(2))));
    }

    #[test]
    fn isolated_non_bursty_nodes_are_lazily_demoted() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        // Keyword 1 bursts alone (no correlated partner): node added, no edges.
        let messages = vec![msg(1, &[1]), msg(2, &[1]), msg(3, &[1])];
        step(&mut akg, &mut window, 0, &messages);
        assert!(akg.graph().contains_node(node_of(k(1))));
        // Next quantum it appears once (not bursty): with no cluster
        // membership, the lazy update removes it.
        step(&mut akg, &mut window, 1, &[msg(4, &[1])]);
        assert!(!akg.graph().contains_node(node_of(k(1))));
    }

    #[test]
    fn cluster_membership_keeps_nodes_via_hysteresis() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        let messages = vec![msg(1, &[1]), msg(2, &[1]), msg(3, &[1])];
        let record = QuantumRecord::from_messages(0, &messages);
        window.push(record.clone());
        akg.process_quantum(&record, &window, |_| false);
        assert!(akg.graph().contains_node(node_of(k(1))));
        // Keyword 1 stops being bursty but is claimed by a cluster.
        let record = QuantumRecord::from_messages(1, &[msg(4, &[1])]);
        window.push(record.clone());
        akg.process_quantum(&record, &window, |kw| kw == k(1));
        assert!(
            akg.graph().contains_node(node_of(k(1))),
            "cluster membership must keep the node"
        );
    }

    #[test]
    fn stats_reflect_the_quantum() {
        let cfg = config();
        let mut akg = AkgMaintainer::new(cfg.clone());
        let mut window = window_for(&cfg);
        step(&mut akg, &mut window, 0, &correlated_burst());
        let stats = akg.last_stats();
        assert_eq!(stats.bursty_keywords, 2);
        assert_eq!(stats.nodes_added, 2);
        assert_eq!(stats.edges_added, 1);
        assert!(stats.pairs_evaluated >= 1);
    }

    #[test]
    fn exact_and_minhash_agree_on_strong_correlation() {
        for exact in [false, true] {
            let cfg = DetectorConfig {
                exact_edge_correlation: exact,
                ..config()
            };
            let mut akg = AkgMaintainer::new(cfg.clone());
            let mut window = window_for(&cfg);
            step(&mut akg, &mut window, 0, &correlated_burst());
            assert!(
                akg.graph().contains_edge(node_of(k(1)), node_of(k(2))),
                "edge must exist with exact_edge_correlation={exact}"
            );
        }
    }

    #[test]
    fn node_conversion_round_trips() {
        assert_eq!(keyword_of(node_of(k(17))), k(17));
    }
}
