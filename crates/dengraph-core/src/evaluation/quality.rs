//! Event-quality statistics (Section 7.2.4).
//!
//! Besides precision and recall the paper tracks two quality measures:
//! the *average cluster size* (small, focused clusters are preferable) and
//! the *average cluster rank* (a proxy for how strong the discovered
//! clusters are).

use crate::event::EventRecord;

/// Quality statistics over a set of discovered events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityStats {
    /// Number of events the statistics were computed over.
    pub events: usize,
    /// Mean number of keywords per event (using the event's full keyword
    /// union, i.e. the evolved cluster).
    pub avg_cluster_size: f64,
    /// Mean peak rank of the events.
    pub avg_rank: f64,
    /// Mean number of quanta an event stayed reported.
    pub avg_lifetime_quanta: f64,
    /// Fraction of events whose keyword set evolved after first report.
    pub evolved_fraction: f64,
}

impl Default for QualityStats {
    fn default() -> Self {
        Self {
            events: 0,
            avg_cluster_size: 0.0,
            avg_rank: 0.0,
            avg_lifetime_quanta: 0.0,
            evolved_fraction: 0.0,
        }
    }
}

/// Computes quality statistics from event records.
pub fn quality_stats(records: &[&EventRecord]) -> QualityStats {
    if records.is_empty() {
        return QualityStats::default();
    }
    let n = records.len() as f64;
    let avg_cluster_size = records
        .iter()
        .map(|r| r.all_keywords.len() as f64)
        .sum::<f64>()
        / n;
    let avg_rank = records.iter().map(|r| r.peak_rank).sum::<f64>() / n;
    let avg_lifetime_quanta = records
        .iter()
        .map(|r| r.reported_quanta() as f64)
        .sum::<f64>()
        / n;
    let evolved_fraction = records.iter().filter(|r| r.evolved()).count() as f64 / n;
    QualityStats {
        events: records.len(),
        avg_cluster_size,
        avg_rank,
        avg_lifetime_quanta,
        evolved_fraction,
    }
}

/// Quality statistics computed directly from per-quantum cluster snapshots
/// (used by the offline baselines, which have no cross-quantum identity).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SnapshotQuality {
    /// Number of cluster snapshots.
    pub clusters: usize,
    /// Mean cluster size (nodes).
    pub avg_cluster_size: f64,
    /// Mean cluster rank.
    pub avg_rank: f64,
}

/// Accumulates snapshot quality incrementally.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotQualityAccumulator {
    count: usize,
    size_sum: f64,
    rank_sum: f64,
}

impl SnapshotQualityAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cluster snapshot.
    pub fn add(&mut self, size: usize, rank: f64) {
        self.count += 1;
        self.size_sum += size as f64;
        self.rank_sum += rank;
    }

    /// Finalises the statistics.
    pub fn finish(&self) -> SnapshotQuality {
        if self.count == 0 {
            return SnapshotQuality::default();
        }
        SnapshotQuality {
            clusters: self.count,
            avg_cluster_size: self.size_sum / self.count as f64,
            avg_rank: self.rank_sum / self.count as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterId;
    use dengraph_text::KeywordId;

    fn record(keywords: usize, peak_rank: f64, quanta: usize) -> EventRecord {
        EventRecord {
            cluster_id: ClusterId(0),
            first_seen: 0,
            last_seen: quanta as u64,
            keywords: (0..keywords as u32).map(KeywordId).collect(),
            all_keywords: (0..keywords as u32).map(KeywordId).collect(),
            rank_history: (0..quanta as u64).map(|q| (q, peak_rank)).collect(),
            peak_rank,
            peak_support: 10,
            ..Default::default()
        }
    }

    #[test]
    fn averages_are_computed() {
        let a = record(4, 10.0, 2);
        let b = record(8, 30.0, 4);
        let stats = quality_stats(&[&a, &b]);
        assert_eq!(stats.events, 2);
        assert!((stats.avg_cluster_size - 6.0).abs() < 1e-12);
        assert!((stats.avg_rank - 20.0).abs() < 1e-12);
        assert!((stats.avg_lifetime_quanta - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_zeroed_stats() {
        let stats = quality_stats(&[]);
        assert_eq!(stats.events, 0);
        assert_eq!(stats.avg_cluster_size, 0.0);
    }

    #[test]
    fn snapshot_accumulator() {
        let mut acc = SnapshotQualityAccumulator::new();
        acc.add(3, 10.0);
        acc.add(5, 20.0);
        let q = acc.finish();
        assert_eq!(q.clusters, 2);
        assert!((q.avg_cluster_size - 4.0).abs() < 1e-12);
        assert!((q.avg_rank - 15.0).abs() < 1e-12);
        assert_eq!(
            SnapshotQualityAccumulator::new().finish(),
            SnapshotQuality::default()
        );
    }
}
