//! Evaluation harness — Section 7 of the paper.
//!
//! * [`matching`] — matching discovered events against the injected ground
//!   truth.
//! * [`mod@precision_recall`] — precision / recall / F1 (Figures 7–10).
//! * [`quality`] — average cluster size and rank (Section 7.2.4).
//! * [`comparison`] — SCP vs offline biconnected clustering (Table 3, §7.3).
//! * [`throughput`] — messages/second (Table 4).
//!
//! The top-level entry point is [`run_detector_on_trace`], which runs the
//! streaming detector over a generated trace and scores it against the
//! trace's ground truth, and [`ground_truth_report`], which reproduces the
//! structure of the Section 7.1 / Table 1 study.

// Module docs live as `//!` inner docs in each module's own file (outer
// `///` docs here would re-scope their intra-doc links into this file).
pub mod comparison;
pub mod matching;
pub mod precision_recall;
pub mod quality;
pub mod throughput;

use dengraph_stream::ground_truth::GroundTruthEventKind;
use dengraph_stream::Trace;

use crate::config::DetectorConfig;
use crate::evaluation::matching::{best_match, match_records};
use crate::evaluation::precision_recall::{precision_recall, PrecisionRecall};
use crate::evaluation::quality::{quality_stats, QualityStats};
use crate::session::DetectorBuilder;

pub use comparison::{compare_schemes, SchemeComparison, SchemeReport};
pub use matching::MatchReport;
pub use throughput::{measure_throughput, ThroughputReport};

/// The scored result of running the detector over one trace with one
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorRunReport {
    /// Name of the trace profile.
    pub trace_name: String,
    /// Quantum size Δ used.
    pub quantum_size: usize,
    /// Edge-correlation threshold τ used.
    pub edge_correlation_threshold: f64,
    /// Messages processed.
    pub messages: usize,
    /// Quanta processed.
    pub quanta: u64,
    /// Precision / recall against the trace's ground truth.
    pub scores: PrecisionRecall,
    /// Cluster-quality statistics over discovered events.
    pub quality: QualityStats,
    /// Mean AKG node count across quanta.
    pub avg_akg_nodes: f64,
    /// Mean AKG edge count across quanta.
    pub avg_akg_edges: f64,
    /// Mean live clusters across quanta.
    pub avg_live_clusters: f64,
    /// Wall-clock seconds spent in the detector.
    pub elapsed_secs: f64,
}

/// Runs the streaming detector over `trace` and scores it.
pub fn run_detector_on_trace(trace: &Trace, config: &DetectorConfig) -> DetectorRunReport {
    let mut detector = DetectorBuilder::from_config(config.clone())
        .interner(trace.interner.clone())
        .build()
        .expect("evaluation configs are validated upstream");
    let start = std::time::Instant::now();
    let summaries = detector.run(&trace.messages);
    let elapsed_secs = start.elapsed().as_secs_f64();

    let records = detector.event_records();
    let report = match_records(&records, &trace.ground_truth);
    let scores = precision_recall(&report, &trace.ground_truth);
    let quality = quality_stats(&records);

    let n = summaries.len().max(1) as f64;
    DetectorRunReport {
        trace_name: trace.profile_name.clone(),
        quantum_size: config.quantum_size,
        edge_correlation_threshold: config.edge_correlation_threshold,
        messages: trace.messages.len(),
        quanta: detector.quanta_processed(),
        scores,
        quality,
        avg_akg_nodes: summaries.iter().map(|s| s.akg_nodes as f64).sum::<f64>() / n,
        avg_akg_edges: summaries.iter().map(|s| s.akg_edges as f64).sum::<f64>() / n,
        avg_live_clusters: summaries
            .iter()
            .map(|s| s.live_clusters as f64)
            .sum::<f64>()
            / n,
        elapsed_secs,
    }
}

/// One row of the Table 1 style ground-truth report.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineOutcome {
    /// The injected event's "headline".
    pub headline: String,
    /// Whether the detector discovered it.
    pub discovered: bool,
    /// The discovered keywords (resolved to strings) when discovered.
    pub discovered_keywords: Vec<String>,
}

/// The Section 7.1 ground-truth study result.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthReport {
    /// Total injected "headline" events (the paper's 60).
    pub headline_events_total: usize,
    /// Headline events with too few messages to ever detect (the paper's 27).
    pub headline_events_too_weak: usize,
    /// Headline events that were detectable (the paper's 33).
    pub headline_events_detectable: usize,
    /// Detectable headline events actually discovered (the paper's 31).
    pub headline_events_discovered: usize,
    /// Discovered events that match local-only ground truth (the paper's
    /// "6× additional events").
    pub additional_local_events_discovered: usize,
    /// Reported events that matched nothing real.
    pub unmatched_reported_events: usize,
    /// Per-headline outcomes (for the Table 1 style listing).
    pub outcomes: Vec<HeadlineOutcome>,
    /// The underlying precision/recall scores.
    pub scores: PrecisionRecall,
}

/// Runs the detector over a ground-truth style trace and reproduces the
/// structure of the Section 7.1 study.
pub fn ground_truth_report(trace: &Trace, config: &DetectorConfig) -> GroundTruthReport {
    let mut detector = DetectorBuilder::from_config(config.clone())
        .interner(trace.interner.clone())
        .build()
        .expect("evaluation configs are validated upstream");
    detector.run(&trace.messages);
    let records = detector.event_records();
    let match_report = match_records(&records, &trace.ground_truth);
    let scores = precision_recall(&match_report, &trace.ground_truth);

    // Per-headline outcomes.
    let mut outcomes = Vec::new();
    let mut headline_discovered = 0usize;
    // Note: headline events that are injected as "too weak" are stored with
    // kind TooWeak, so the Headline kind below is exactly the detectable set.
    for truth in trace.ground_truth.of_kind(GroundTruthEventKind::Headline) {
        let matching_record = records.iter().find(|r| {
            best_match(&r.all_keywords, &trace.ground_truth).is_some_and(|(t, _)| t.id == truth.id)
        });
        let discovered = matching_record.is_some();
        if discovered {
            headline_discovered += 1;
        }
        outcomes.push(HeadlineOutcome {
            headline: truth.name.clone(),
            discovered,
            discovered_keywords: matching_record
                .map(|r| {
                    r.all_keywords
                        .iter()
                        .filter_map(|k| trace.interner.resolve(*k).map(str::to_string))
                        .collect()
                })
                .unwrap_or_default(),
        });
    }

    let additional_local_events_discovered = trace
        .ground_truth
        .of_kind(GroundTruthEventKind::LocalOnly)
        .filter(|truth| {
            records.iter().any(|r| {
                best_match(&r.all_keywords, &trace.ground_truth)
                    .is_some_and(|(t, _)| t.id == truth.id)
            })
        })
        .count();

    let unmatched_reported_events = match_report
        .matches
        .iter()
        .filter(|m| m.matched_event.is_none())
        .count();

    GroundTruthReport {
        headline_events_total: trace.ground_truth.headline_count()
            + trace
                .ground_truth
                .of_kind(GroundTruthEventKind::TooWeak)
                .count(),
        headline_events_too_weak: trace
            .ground_truth
            .of_kind(GroundTruthEventKind::TooWeak)
            .count(),
        headline_events_detectable: trace.ground_truth.headline_count(),
        headline_events_discovered: headline_discovered,
        additional_local_events_discovered,
        unmatched_reported_events,
        outcomes,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_stream::generator::profiles::{tw_profile, ProfileScale};
    use dengraph_stream::StreamGenerator;

    #[test]
    fn detector_run_report_on_small_tw_trace() {
        let trace = StreamGenerator::new(tw_profile(21, ProfileScale::Small)).generate();
        let config = DetectorConfig {
            quantum_size: 160,
            window_quanta: 20,
            ..Default::default()
        };
        let report = run_detector_on_trace(&trace, &config);
        assert_eq!(report.messages, trace.messages.len());
        assert!(report.quanta > 10);
        // The detector must find a substantial fraction of the injected events.
        assert!(
            report.scores.recall >= 0.5,
            "recall too low: {:?}",
            report.scores
        );
        assert!(
            report.scores.precision >= 0.5,
            "precision too low: {:?}",
            report.scores
        );
        // AKG stays small relative to the keyword universe (thousands).
        assert!(report.avg_akg_nodes < 500.0);
        assert!(report.quality.avg_cluster_size >= 3.0);
    }
}
