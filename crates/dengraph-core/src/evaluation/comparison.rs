//! SCP clusters vs offline biconnected clusters (Section 7.3, Table 3).
//!
//! The comparison runs all clustering schemes over *exactly the same AKG*:
//! one shared AKG maintainer processes the stream, and per quantum
//!
//! * the incremental SCP maintenance applies the AKG deltas locally,
//! * the offline biconnected baseline recomputes the BCs of the whole AKG
//!   (with and without size-2 edge clusters), and
//! * every scheme's clusters are ranked with the same ranking function and
//!   tracked into events so precision/recall can be compared.

use std::time::Instant;

use dengraph_graph::fxhash::FxHashMap;
use dengraph_graph::NodeId;
use dengraph_minhash::UserHasher;
use dengraph_stream::Trace;
use dengraph_text::KeywordId;

use crate::akg::{keyword_of, AkgMaintainer};
use crate::baseline::offline_bc::{offline_bc_clusters, OfflineClusterScheme};
use crate::cluster::{Cluster, ClusterId, ClusterMaintainer};
use crate::config::DetectorConfig;
use crate::evaluation::matching::match_records;
use crate::evaluation::precision_recall::precision_recall;
use crate::evaluation::quality::SnapshotQualityAccumulator;
use crate::event::{DetectedEvent, EventTracker};
use crate::keyword_state::{QuantumRecord, WindowState};
use crate::ranking::{cluster_rank, cluster_support};

/// Per-scheme results (one column of Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeReport {
    /// Scheme name.
    pub name: String,
    /// Number of distinct events discovered over the run.
    pub events_discovered: usize,
    /// Precision against the trace's ground truth.
    pub precision: f64,
    /// Recall against the trace's ground truth.
    pub recall: f64,
    /// Average rank of reported clusters.
    pub avg_rank: f64,
    /// Average cluster size (nodes) of reported clusters.
    pub avg_cluster_size: f64,
    /// Total cluster snapshots reported across all quanta.
    pub cluster_snapshots: usize,
    /// Wall-clock milliseconds spent on clustering + ranking.
    pub clustering_ms: f64,
}

/// The full comparison (Table 3 plus the §7.3 derived statistics).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeComparison {
    /// Incremental SCP clustering (the paper's technique).
    pub scp: SchemeReport,
    /// Offline biconnected clusters only.
    pub biconnected: SchemeReport,
    /// Offline biconnected clusters plus size-2 edge clusters.
    pub biconnected_plus_edges: SchemeReport,
    /// Additional cluster snapshots in the offline (+edges) method relative
    /// to SCP, in percent (the paper's `Ac`, +276 %).
    pub additional_clusters_pct: f64,
    /// Additional events in the offline (+edges) method relative to SCP, in
    /// percent (the paper's `AE`, −11.1 %).
    pub additional_events_pct: f64,
    /// Percentage of offline BC clusters (≥3 nodes) that exactly match an
    /// SCP cluster of the same quantum (the paper reports 74.5 %).
    pub exact_overlap_pct: f64,
    /// How much faster the incremental SCP clustering ran than the offline
    /// recomputation, in percent (the paper reports 46 %).
    pub scp_speedup_pct: f64,
}

/// Tracks offline clusters across quanta by node-set overlap, giving them a
/// synthetic stable identity so events can be counted for the baselines.
#[derive(Debug, Default)]
struct OfflineEventTracker {
    tracker: EventTracker,
    /// node-set (sorted) of previous quantum's clusters -> synthetic id
    previous: Vec<(Vec<NodeId>, ClusterId)>,
    next_id: u64,
}

impl OfflineEventTracker {
    fn assign_id(&mut self, nodes: &[NodeId]) -> ClusterId {
        // Same event if at least half the nodes overlap with a previous
        // quantum's cluster.
        let mut best: Option<(usize, ClusterId)> = None;
        for (prev_nodes, id) in &self.previous {
            let shared = nodes.iter().filter(|n| prev_nodes.contains(n)).count();
            if shared * 2 >= nodes.len().max(1) && best.is_none_or(|(s, _)| shared > s) {
                best = Some((shared, *id));
            }
        }
        match best {
            Some((_, id)) => id,
            None => {
                let id = ClusterId(self.next_id);
                self.next_id += 1;
                id
            }
        }
    }

    fn observe_quantum(&mut self, clusters: &[(Vec<NodeId>, f64, usize)], quantum: u64) {
        let mut current = Vec::with_capacity(clusters.len());
        for (nodes, rank, support) in clusters {
            let id = self.assign_id(nodes);
            current.push((nodes.clone(), id));
            let keywords: Vec<KeywordId> = nodes.iter().map(|&n| keyword_of(n)).collect();
            self.tracker.observe(&DetectedEvent {
                cluster_id: id,
                quantum,
                keywords,
                rank: *rank,
                support: *support,
            });
        }
        self.previous = current;
    }
}

/// Runs the full scheme comparison over one trace.
pub fn compare_schemes(trace: &Trace, config: &DetectorConfig) -> SchemeComparison {
    let mut window = WindowState::with_mode(
        config.window_quanta,
        config.sketch_size(),
        UserHasher::new(0x5EED_CAFE),
        config.window_index_mode,
    );
    let mut akg = AkgMaintainer::new(config.clone());
    let mut scp_clusters = ClusterMaintainer::new();
    let mut scp_tracker = EventTracker::new();
    let mut bc_tracker = OfflineEventTracker::default();
    let mut bce_tracker = OfflineEventTracker::default();

    let mut scp_quality = SnapshotQualityAccumulator::new();
    let mut bc_quality = SnapshotQualityAccumulator::new();
    let mut bce_quality = SnapshotQualityAccumulator::new();

    let mut scp_snapshots = 0usize;
    let mut bc_snapshots = 0usize;
    let mut bce_snapshots = 0usize;

    let mut scp_time = 0.0f64;
    let mut offline_time = 0.0f64;

    let mut exact_overlap_hits = 0usize;
    let mut exact_overlap_total = 0usize;

    let quanta = trace.quanta(config.quantum_size);
    for quantum in &quanta {
        let record = QuantumRecord::from_messages(quantum.index, &quantum.messages);
        window.push(record.clone());
        let registry_probe = &scp_clusters;
        let deltas = akg.process_quantum(&record, &window, |kw| {
            registry_probe
                .registry()
                .is_cluster_member(crate::akg::node_of(kw))
        });

        let support = |node: NodeId| window.window_user_count(keyword_of(node));

        // --- incremental SCP -------------------------------------------------
        let start = Instant::now();
        scp_clusters.apply_deltas(akg.graph(), &deltas, quantum.index);
        let mut scp_snapshot: Vec<(Vec<NodeId>, f64, usize)> = Vec::new();
        for c in scp_clusters.clusters() {
            let rank = cluster_rank(c, akg.graph(), &support);
            if rank < config.rank_report_threshold() {
                continue;
            }
            scp_snapshot.push((c.sorted_nodes(), rank, cluster_support(c, &support)));
        }
        scp_time += start.elapsed().as_secs_f64();
        // `clusters()` iterates an FxHashMap; sort each snapshot by node
        // set so downstream synthetic-id assignment and record ordering
        // never see hash-iteration order.
        scp_snapshot.sort_by(|a, b| a.0.cmp(&b.0));
        scp_snapshots += scp_snapshot.len();
        for (nodes, rank, support_value) in &scp_snapshot {
            scp_quality.add(nodes.len(), *rank);
            let keywords: Vec<KeywordId> = nodes.iter().map(|&n| keyword_of(n)).collect();
            // Anchor SCP events to the real (stable) cluster ids.
            let id = scp_clusters
                .clusters()
                .find(|c| c.sorted_nodes() == *nodes)
                .map(|c| c.id)
                .unwrap_or(ClusterId(u64::MAX));
            scp_tracker.observe(&DetectedEvent {
                cluster_id: id,
                quantum: quantum.index,
                keywords,
                rank: *rank,
                support: *support_value,
            });
        }

        // --- offline biconnected (both flavours) -----------------------------
        let start = Instant::now();
        let bce = offline_bc_clusters(akg.graph(), OfflineClusterScheme::BiconnectedPlusEdges);
        let rank_of = |c: &Cluster| cluster_rank(c, akg.graph(), &support);
        let mut bc_snapshot: Vec<(Vec<NodeId>, f64, usize)> = Vec::new();
        let mut bce_snapshot: Vec<(Vec<NodeId>, f64, usize)> = Vec::new();
        for c in &bce {
            let rank = rank_of(c);
            let entry = (c.sorted_nodes(), rank, cluster_support(c, &support));
            if c.size() >= 3 && rank >= config.rank_report_threshold() {
                bc_snapshot.push(entry.clone());
            }
            // The +edges scheme reports everything, including size-2 clusters
            // (no rank filter can save them: that is the point of the
            // baseline's poor precision).
            bce_snapshot.push(entry);
        }
        offline_time += start.elapsed().as_secs_f64();
        // Same hash-order shielding for the offline baselines (the BC
        // decomposition walks hash-ordered adjacency maps).
        bc_snapshot.sort_by(|a, b| a.0.cmp(&b.0));
        bce_snapshot.sort_by(|a, b| a.0.cmp(&b.0));

        bc_snapshots += bc_snapshot.len();
        bce_snapshots += bce_snapshot.len();
        for (nodes, rank, _) in &bc_snapshot {
            bc_quality.add(nodes.len(), *rank);
        }
        for (nodes, rank, _) in &bce_snapshot {
            bce_quality.add(nodes.len(), *rank);
        }
        bc_tracker.observe_quantum(&bc_snapshot, quantum.index);
        bce_tracker.observe_quantum(&bce_snapshot, quantum.index);

        // --- exact overlap between BC(≥3) clusters and SCP clusters ----------
        for (nodes, _, _) in &bc_snapshot {
            exact_overlap_total += 1;
            if scp_snapshot
                .iter()
                .any(|(scp_nodes, _, _)| scp_nodes == nodes)
            {
                exact_overlap_hits += 1;
            }
        }
    }

    let scheme_report = |name: &str,
                         tracker: &EventTracker,
                         quality: &SnapshotQualityAccumulator,
                         snapshots: usize,
                         clustering_ms: f64| {
        let records = tracker.records();
        let match_report = match_records(&records, &trace.ground_truth);
        let pr = precision_recall(&match_report, &trace.ground_truth);
        let q = quality.finish();
        SchemeReport {
            name: name.to_string(),
            events_discovered: records.len(),
            precision: pr.precision,
            recall: pr.recall,
            avg_rank: q.avg_rank,
            avg_cluster_size: q.avg_cluster_size,
            cluster_snapshots: snapshots,
            clustering_ms,
        }
    };

    let scp = scheme_report(
        "SCP clusters",
        &scp_tracker,
        &scp_quality,
        scp_snapshots,
        scp_time * 1000.0,
    );
    let biconnected = scheme_report(
        "Bi-connected clusters",
        &bc_tracker.tracker,
        &bc_quality,
        bc_snapshots,
        offline_time * 1000.0,
    );
    let biconnected_plus_edges = scheme_report(
        "Bi-connected clusters + edges",
        &bce_tracker.tracker,
        &bce_quality,
        bce_snapshots,
        offline_time * 1000.0,
    );

    let pct = |offline: f64, scp_value: f64| {
        if scp_value == 0.0 {
            0.0
        } else {
            (offline - scp_value) / scp_value * 100.0
        }
    };
    SchemeComparison {
        additional_clusters_pct: pct(bce_snapshots as f64, scp_snapshots as f64),
        additional_events_pct: pct(
            biconnected_plus_edges.events_discovered as f64,
            scp.events_discovered as f64,
        ),
        exact_overlap_pct: if exact_overlap_total == 0 {
            0.0
        } else {
            exact_overlap_hits as f64 / exact_overlap_total as f64 * 100.0
        },
        scp_speedup_pct: if offline_time > 0.0 {
            (offline_time - scp_time) / offline_time * 100.0
        } else {
            0.0
        },
        scp,
        biconnected,
        biconnected_plus_edges,
    }
}

/// Convenience: a map from scheme name to report, for table printing.
pub fn as_rows(cmp: &SchemeComparison) -> FxHashMap<String, SchemeReport> {
    let mut m = FxHashMap::default();
    for r in [&cmp.scp, &cmp.biconnected, &cmp.biconnected_plus_edges] {
        m.insert(r.name.clone(), r.clone());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_stream::generator::profiles::{tw_profile, ProfileScale};
    use dengraph_stream::StreamGenerator;

    #[test]
    fn comparison_runs_and_produces_sane_shapes() {
        let trace = StreamGenerator::new(tw_profile(5, ProfileScale::Small)).generate();
        let config = DetectorConfig {
            quantum_size: 160,
            window_quanta: 20,
            ..Default::default()
        };
        let cmp = compare_schemes(&trace, &config);
        // The SCP scheme must find at least one event on a trace with
        // injected events.
        assert!(cmp.scp.events_discovered > 0);
        // The +edges baseline reports far more cluster snapshots …
        assert!(cmp.biconnected_plus_edges.cluster_snapshots >= cmp.scp.cluster_snapshots);
        // … and its precision is no better than the SCP scheme's.
        assert!(cmp.biconnected_plus_edges.precision <= cmp.scp.precision + 1e-9);
        // Exact overlap is a percentage.
        assert!((0.0..=100.0).contains(&cmp.exact_overlap_pct));
        assert_eq!(as_rows(&cmp).len(), 3);
    }
}
