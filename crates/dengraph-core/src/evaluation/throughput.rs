//! Message-processing throughput (Table 4).
//!
//! The paper reports messages/second for the TW and ES traces at quantum
//! sizes 120/160/200.  Absolute numbers obviously depend on the hardware;
//! what carries over is the *shape*: the event-dense ES trace processes
//! several times slower than the TW trace (more bursty keywords, more
//! clusters to maintain), and throughput decreases as the quantum grows.

use std::time::Instant;

use dengraph_stream::Trace;

use crate::config::DetectorConfig;
use crate::session::DetectorBuilder;

/// Result of one throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Messages processed.
    pub messages: usize,
    /// Quanta processed.
    pub quanta: u64,
    /// Wall-clock seconds spent inside the detector.
    pub elapsed_secs: f64,
    /// Messages per second.
    pub messages_per_sec: f64,
    /// Events reported over the run.
    pub events_reported: usize,
}

/// Runs the detector over the whole trace and measures throughput.
pub fn measure_throughput(trace: &Trace, config: &DetectorConfig) -> ThroughputReport {
    let mut detector = DetectorBuilder::from_config(config.clone())
        .interner(trace.interner.clone())
        .build()
        .expect("throughput configs are validated upstream");
    let start = Instant::now();
    detector.run(&trace.messages);
    let elapsed = start.elapsed();
    let elapsed_secs = elapsed.as_secs_f64();
    let events_reported = detector.event_records().len();
    ThroughputReport {
        messages: trace.messages.len(),
        quanta: detector.quanta_processed(),
        elapsed_secs,
        messages_per_sec: if elapsed_secs > 0.0 {
            trace.messages.len() as f64 / elapsed_secs
        } else {
            0.0
        },
        events_reported,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_stream::generator::profiles::{tw_profile, ProfileScale};
    use dengraph_stream::StreamGenerator;

    #[test]
    fn throughput_measurement_processes_every_message() {
        let trace = StreamGenerator::new(tw_profile(3, ProfileScale::Small)).generate();
        let config = DetectorConfig {
            quantum_size: 160,
            high_state_threshold: 4,
            ..Default::default()
        };
        let report = measure_throughput(&trace, &config);
        assert_eq!(report.messages, trace.messages.len());
        assert!(report.quanta >= (trace.messages.len() / 160) as u64);
        assert!(report.elapsed_secs > 0.0);
        assert!(report.messages_per_sec > 0.0);
    }
}
