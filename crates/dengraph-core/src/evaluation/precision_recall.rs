//! Precision and recall (Section 7.2.2).
//!
//! * **Recall** — the fraction of *detectable* ground-truth events
//!   (headline or local-only, not too weak, not spurious) that were matched
//!   by at least one reported event.
//! * **Precision** — the fraction of reported events that matched a real
//!   (headline or local-only) ground-truth event.

use dengraph_stream::ground_truth::{GroundTruth, GroundTruthEventKind};

use super::matching::MatchReport;

/// The precision/recall scores of one detector run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Number of reported events (after the detector's own filters).
    pub reported_events: usize,
    /// Reported events that matched a real (headline or local-only) event.
    pub true_positives: usize,
    /// Reported events that matched nothing or matched a spurious /
    /// too-weak injection.
    pub false_positives: usize,
    /// Distinct detectable ground-truth events that were found.
    pub truth_events_found: usize,
    /// Total detectable ground-truth events.
    pub truth_events_total: usize,
    /// Precision = true_positives / reported_events (1.0 when nothing was
    /// reported).
    pub precision: f64,
    /// Recall = truth_events_found / truth_events_total (1.0 when there was
    /// nothing to find).
    pub recall: f64,
}

impl PrecisionRecall {
    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Computes precision and recall from a matching report.
pub fn precision_recall(report: &MatchReport, ground_truth: &GroundTruth) -> PrecisionRecall {
    let reported_events = report.matches.len();
    let true_positives = report
        .matches
        .iter()
        .filter(|m| {
            matches!(
                m.matched_kind,
                Some(GroundTruthEventKind::Headline) | Some(GroundTruthEventKind::LocalOnly)
            )
        })
        .count();
    let false_positives = reported_events - true_positives;
    let truth_events_total = ground_truth.detectable_count();
    let truth_events_found = report.detected_truth_ids.len();
    let precision = if reported_events == 0 {
        1.0
    } else {
        true_positives as f64 / reported_events as f64
    };
    let recall = if truth_events_total == 0 {
        1.0
    } else {
        truth_events_found as f64 / truth_events_total as f64
    };
    PrecisionRecall {
        reported_events,
        true_positives,
        false_positives,
        truth_events_found,
        truth_events_total,
        precision,
        recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::matching::EventMatch;
    use dengraph_stream::ground_truth::GroundTruthEvent;
    use dengraph_text::KeywordId;

    fn ground_truth(detectable: usize) -> GroundTruth {
        GroundTruth {
            events: (0..detectable as u32)
                .map(|id| GroundTruthEvent {
                    id,
                    name: format!("event {id}"),
                    keywords: vec![KeywordId(id * 10)],
                    headline_keywords: vec![],
                    start_round: 0,
                    duration_rounds: 1,
                    peak_messages_per_round: 10,
                    kind: GroundTruthEventKind::Headline,
                })
                .collect(),
        }
    }

    fn matched(kind: GroundTruthEventKind, id: u32) -> EventMatch {
        EventMatch {
            record_index: 0,
            matched_event: Some(id),
            matched_kind: Some(kind),
            shared_keywords: 3,
        }
    }

    fn unmatched() -> EventMatch {
        EventMatch {
            record_index: 0,
            matched_event: None,
            matched_kind: None,
            shared_keywords: 0,
        }
    }

    #[test]
    fn perfect_run() {
        let gt = ground_truth(2);
        let report = MatchReport {
            matches: vec![
                matched(GroundTruthEventKind::Headline, 0),
                matched(GroundTruthEventKind::Headline, 1),
            ],
            detected_truth_ids: vec![0, 1],
        };
        let pr = precision_recall(&report, &gt);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn spurious_and_unmatched_reports_cost_precision() {
        let gt = ground_truth(2);
        let report = MatchReport {
            matches: vec![
                matched(GroundTruthEventKind::Headline, 0),
                matched(GroundTruthEventKind::Spurious, 5),
                unmatched(),
            ],
            detected_truth_ids: vec![0],
        };
        let pr = precision_recall(&report, &gt);
        assert!((pr.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 0.5).abs() < 1e-12);
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 2);
    }

    #[test]
    fn local_only_matches_count_as_true_positives() {
        let gt = ground_truth(1);
        let report = MatchReport {
            matches: vec![matched(GroundTruthEventKind::LocalOnly, 7)],
            detected_truth_ids: vec![],
        };
        let pr = precision_recall(&report, &gt);
        assert_eq!(pr.precision, 1.0);
    }

    #[test]
    fn empty_run_has_full_precision_and_zero_recall() {
        let gt = ground_truth(3);
        let pr = precision_recall(&MatchReport::default(), &gt);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1(), 0.0);
    }

    #[test]
    fn empty_ground_truth_has_full_recall() {
        let gt = GroundTruth::default();
        let pr = precision_recall(&MatchReport::default(), &gt);
        assert_eq!(pr.recall, 1.0);
    }
}
