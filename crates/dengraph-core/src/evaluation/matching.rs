//! Matching discovered events against ground truth.
//!
//! The paper matches discovered keyword clusters against Google News
//! headlines by keyword overlap (Section 7.1, Table 1).  Here the ground
//! truth comes from the workload generator, so matching is by keyword *ids*:
//! a discovered event matches an injected event when at least
//! [`MIN_SHARED_KEYWORDS`] of its keywords belong to the injected event's
//! vocabulary and they make up at least [`MIN_OVERLAP`] of the discovered
//! keyword set.

use dengraph_stream::ground_truth::{GroundTruth, GroundTruthEvent, GroundTruthEventKind};
use dengraph_text::KeywordId;

use crate::event::EventRecord;

/// Minimum number of keywords a discovered event must share with a
/// ground-truth event to be considered a match.
pub const MIN_SHARED_KEYWORDS: usize = 2;

/// Minimum fraction of the discovered event's keywords that must belong to
/// the matched ground-truth event.
pub const MIN_OVERLAP: f64 = 0.5;

/// The outcome of matching one discovered event record.
#[derive(Debug, Clone, PartialEq)]
pub struct EventMatch {
    /// Index of the record in the input slice.
    pub record_index: usize,
    /// The matched ground-truth event id, or `None` when nothing matched.
    pub matched_event: Option<u32>,
    /// The kind of the matched event (if any).
    pub matched_kind: Option<GroundTruthEventKind>,
    /// Number of shared keywords with the matched event.
    pub shared_keywords: usize,
}

/// The full matching report for one detector run.
#[derive(Debug, Clone, Default)]
pub struct MatchReport {
    /// One entry per discovered event record, in input order.
    pub matches: Vec<EventMatch>,
    /// Ground-truth ids (detectable events only) that were matched by at
    /// least one record.
    pub detected_truth_ids: Vec<u32>,
}

/// Scores the overlap between a discovered keyword set and one ground-truth
/// event.  Returns `(shared, fraction_of_discovered)`.
fn overlap(discovered: &[KeywordId], truth: &GroundTruthEvent) -> (usize, f64) {
    if discovered.is_empty() {
        return (0, 0.0);
    }
    let shared = discovered
        .iter()
        .filter(|k| truth.keywords.contains(k))
        .count();
    (shared, shared as f64 / discovered.len() as f64)
}

/// Finds the best ground-truth match for one discovered keyword set.
pub fn best_match<'a>(
    discovered: &[KeywordId],
    ground_truth: &'a GroundTruth,
) -> Option<(&'a GroundTruthEvent, usize)> {
    let mut best: Option<(&GroundTruthEvent, usize, f64)> = None;
    for truth in &ground_truth.events {
        let (shared, frac) = overlap(discovered, truth);
        if shared < MIN_SHARED_KEYWORDS || frac < MIN_OVERLAP {
            continue;
        }
        let better = match &best {
            None => true,
            Some((_, best_shared, best_frac)) => {
                shared > *best_shared || (shared == *best_shared && frac > *best_frac)
            }
        };
        if better {
            best = Some((truth, shared, frac));
        }
    }
    best.map(|(t, s, _)| (t, s))
}

/// Matches every discovered event record against the ground truth.
pub fn match_records(records: &[&EventRecord], ground_truth: &GroundTruth) -> MatchReport {
    let mut report = MatchReport::default();
    let mut detected: Vec<u32> = Vec::new();
    for (i, record) in records.iter().enumerate() {
        match best_match(&record.all_keywords, ground_truth) {
            Some((truth, shared)) => {
                if truth.is_detectable_real_event() && !detected.contains(&truth.id) {
                    detected.push(truth.id);
                }
                report.matches.push(EventMatch {
                    record_index: i,
                    matched_event: Some(truth.id),
                    matched_kind: Some(truth.kind),
                    shared_keywords: shared,
                });
            }
            None => report.matches.push(EventMatch {
                record_index: i,
                matched_event: None,
                matched_kind: None,
                shared_keywords: 0,
            }),
        }
    }
    detected.sort_unstable();
    report.detected_truth_ids = detected;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterId;

    fn truth() -> GroundTruth {
        GroundTruth {
            events: vec![
                GroundTruthEvent {
                    id: 0,
                    name: "earthquake".into(),
                    keywords: (10..16).map(KeywordId).collect(),
                    headline_keywords: (10..14).map(KeywordId).collect(),
                    start_round: 0,
                    duration_rounds: 5,
                    peak_messages_per_round: 20,
                    kind: GroundTruthEventKind::Headline,
                },
                GroundTruthEvent {
                    id: 1,
                    name: "spurious ad".into(),
                    keywords: (50..54).map(KeywordId).collect(),
                    headline_keywords: vec![],
                    start_round: 3,
                    duration_rounds: 1,
                    peak_messages_per_round: 30,
                    kind: GroundTruthEventKind::Spurious,
                },
            ],
        }
    }

    fn record(keywords: &[u32]) -> EventRecord {
        EventRecord {
            cluster_id: ClusterId(0),
            first_seen: 0,
            last_seen: 1,
            keywords: keywords.iter().map(|&k| KeywordId(k)).collect(),
            all_keywords: keywords.iter().map(|&k| KeywordId(k)).collect(),
            rank_history: vec![(0, 10.0), (1, 12.0)],
            peak_rank: 12.0,
            peak_support: 20,
            ..Default::default()
        }
    }

    #[test]
    fn strong_overlap_matches_the_event() {
        let gt = truth();
        let r = record(&[10, 11, 12]);
        let m = best_match(&r.all_keywords, &gt).unwrap();
        assert_eq!(m.0.id, 0);
        assert_eq!(m.1, 3);
    }

    #[test]
    fn one_shared_keyword_is_not_enough() {
        let gt = truth();
        let r = record(&[10, 99, 98]);
        assert!(best_match(&r.all_keywords, &gt).is_none());
    }

    #[test]
    fn low_overlap_fraction_is_rejected() {
        let gt = truth();
        // 2 shared out of 6 keywords = 0.33 < 0.5.
        let r = record(&[10, 11, 90, 91, 92, 93]);
        assert!(best_match(&r.all_keywords, &gt).is_none());
    }

    #[test]
    fn spurious_matches_do_not_count_as_detected_truth() {
        let gt = truth();
        let records = [record(&[50, 51, 52])];
        let refs: Vec<&EventRecord> = records.iter().collect();
        let report = match_records(&refs, &gt);
        assert_eq!(report.matches[0].matched_event, Some(1));
        assert_eq!(
            report.matches[0].matched_kind,
            Some(GroundTruthEventKind::Spurious)
        );
        assert!(report.detected_truth_ids.is_empty());
    }

    #[test]
    fn detected_truth_ids_are_deduplicated() {
        let gt = truth();
        let records = [record(&[10, 11, 12]), record(&[12, 13, 14])];
        let refs: Vec<&EventRecord> = records.iter().collect();
        let report = match_records(&refs, &gt);
        assert_eq!(report.detected_truth_ids, vec![0]);
        assert_eq!(report.matches.len(), 2);
    }

    #[test]
    fn empty_record_matches_nothing() {
        let gt = truth();
        let r = record(&[]);
        assert!(best_match(&r.all_keywords, &gt).is_none());
    }
}
