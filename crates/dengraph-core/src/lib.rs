//! # dengraph-core — real-time dense-cluster discovery in dynamic graphs
//!
//! This crate implements the system described in *"Real Time Discovery of
//! Dense Clusters in Highly Dynamic Graphs: Identifying Real World Events in
//! Highly Dynamic Environments"* (Agarwal, Ramamritham, Bhide — VLDB 2012):
//! discovering emerging events in a microblog stream by maintaining
//! approximate ½-quasi cliques (clusters with the *short-cycle property*) in
//! a highly dynamic keyword graph, using only local computation.
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`config`] | Table 2 | tunable parameters and nominal values |
//! | [`keyword_state`] | §3.1 | sliding window, per-keyword user sets, two-state automaton |
//! | [`ckg`] | §3 / §7.4 | full-CKG size bookkeeping (for the AKG-reduction numbers) |
//! | [`akg`] | §3.1–3.2 | AKG node admission, min-hash edge correlation, lazy removal |
//! | [`cluster`] | §4–5 | short-cycle clusters, local addition/deletion maintenance |
//! | [`ranking`] | §6 | local cluster ranking |
//! | [`event`] | §7.2.2 | event records, evolution and post-hoc spuriousness |
//! | [`detector`] | all | the end-to-end streaming [`EventDetector`] |
//! | [`session`] | service surface | [`DetectorBuilder`], push-based [`EventSink`]s, [`Checkpoint`]/restore |
//! | [`checkpoint`] | durability | [`CheckpointMode`], per-quantum [`DeltaRecord`]s, the [`CheckpointJournal`] |
//! | [`wal`] | durability | segmented on-disk write-ahead log: [`FsyncPolicy`], rotation, compaction, torn-write recovery |
//! | [`baseline`] | §7.3 | offline biconnected-component clustering and global SCP recomputation |
//! | [`evaluation`] | §7 | ground-truth matching, precision/recall, quality, comparisons, throughput |
//!
//! ## Quick start
//!
//! ```
//! use dengraph_core::DetectorBuilder;
//! use dengraph_stream::{Message, UserId};
//! use dengraph_text::KeywordId;
//!
//! // Five users tweet about the same breaking story within one quantum.
//! let mut session = DetectorBuilder::new()
//!     .quantum_size(8)
//!     .high_state_threshold(3)
//!     .build()
//!     .expect("valid configuration");
//! let mut summaries = Vec::new();
//! for u in 0..8u64 {
//!     let keywords = if u < 5 {
//!         vec![KeywordId(1), KeywordId(2), KeywordId(3)] // earthquake struck turkey
//!     } else {
//!         vec![KeywordId(100 + u as u32)] // unrelated chatter
//!     };
//!     if let Some(summary) = session.push_message(Message::new(UserId(u), u, keywords)) {
//!         summaries.push(summary);
//!     }
//! }
//! assert_eq!(summaries.len(), 1);
//! assert_eq!(summaries[0].events.len(), 1);
//! assert_eq!(summaries[0].events[0].keywords.len(), 3);
//! ```
//!
//! For push-based delivery and checkpoint/restore, see [`session`].

// Module docs live as `//!` inner docs in each module's own file;
// adding outer `///` docs here would merge with them and re-scope
// their intra-doc links into this file, breaking `cargo doc`.
pub mod akg;
pub mod baseline;
pub mod checkpoint;
pub mod ckg;
pub mod cluster;
pub mod config;
pub mod detector;
pub mod evaluation;
pub mod event;
pub mod keyword_state;
pub mod ranking;
pub(crate) mod scratch;
pub mod session;
pub mod wal;

pub use akg::{AkgMaintainer, GraphDelta};
pub use checkpoint::{CheckpointJournal, CheckpointMode, DeltaRecord};
pub use cluster::{Cluster, ClusterId, ClusterMaintainer, ClusterRegistry};
pub use config::{ComponentIndexMode, ConfigError, DetectorConfig, Parallelism};
pub use dengraph_json::WireFormat;
pub use detector::{EventDetector, QuantumSummary, StageTimes};
pub use event::{DetectedEvent, EventRecord, EventTracker};
pub use keyword_state::WindowIndexMode;
pub use ranking::cluster_rank;
pub use session::{
    Checkpoint, DetectorBuilder, DetectorSession, EventSink, FnSink, JsonLinesSink,
    QuantumNotifications, RestoreError, VecSink,
};
pub use wal::{
    DurableJournalConfig, FsyncPolicy, JournalFrameEvent, JournalReader, JournalSink,
    JournalWriter, RecoveryReport, TornWrite, TornWriteReason,
};
