//! The end-to-end real-time event detector.
//!
//! [`EventDetector`] wires the pieces of the paper together.  Per quantum of
//! Δ messages it
//!
//! 1. aggregates the quantum into per-keyword user sets and slides the
//!    window ([`crate::keyword_state`]),
//! 2. updates the AKG — node admission, edge correlations, stale removal
//!    ([`crate::akg`], Section 3),
//! 3. applies the resulting deltas to the cluster registry with the local
//!    short-cycle maintenance algorithms ([`crate::cluster`], Sections 4–5),
//! 4. ranks every live cluster ([`crate::ranking`], Section 6), filters by
//!    the rank threshold and the noun requirement (Section 7.2.2), and
//! 5. reports the surviving clusters as this quantum's emerging events,
//!    feeding the long-term [`EventTracker`].

use dengraph_minhash::UserHasher;
use dengraph_stream::{Message, Quantum};
use dengraph_text::{KeywordId, KeywordInterner, NounHeuristic};

use crate::akg::{keyword_of, node_of, AkgMaintainer, AkgQuantumStats};
use crate::cluster::maintainer::MaintenanceStats;
use crate::cluster::ClusterMaintainer;
use crate::config::DetectorConfig;
use crate::event::{DetectedEvent, EventRecord, EventTracker};
use crate::keyword_state::{QuantumRecord, WindowState};
use crate::ranking::{cluster_rank, cluster_support};
use crate::scratch::ScratchArena;

/// Summary of one processed quantum.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumSummary {
    /// Quantum index (0-based).
    pub quantum: u64,
    /// Messages processed in this quantum.
    pub messages: usize,
    /// Events reported this quantum, ranked best-first.
    pub events: Vec<DetectedEvent>,
    /// AKG maintenance statistics.
    pub akg_stats: AkgQuantumStats,
    /// Cluster maintenance statistics.
    pub maintenance_stats: MaintenanceStats,
    /// Number of live clusters after this quantum (before report filters).
    pub live_clusters: usize,
    /// Number of AKG nodes after this quantum.
    pub akg_nodes: usize,
    /// Number of AKG edges after this quantum.
    pub akg_edges: usize,
    /// The quantum that slid out of the window while processing this one,
    /// if the window was already full ([`EventSink::on_slide`]
    /// notifications derive from this).
    ///
    /// [`EventSink::on_slide`]: crate::session::EventSink::on_slide
    pub evicted_quantum: Option<u64>,
}

impl QuantumSummary {
    /// Serialises the summary to a [`dengraph_json::Value`] (the shape
    /// [`JsonLinesSink`](crate::session::JsonLinesSink) writes).
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("quantum", Value::from(self.quantum)),
            ("messages", Value::from(self.messages)),
            (
                "events",
                Value::arr(self.events.iter().map(|e| e.to_json())),
            ),
            ("akg_stats", self.akg_stats.to_json()),
            ("maintenance_stats", self.maintenance_stats.to_json()),
            ("live_clusters", Value::from(self.live_clusters)),
            ("akg_nodes", Value::from(self.akg_nodes)),
            ("akg_edges", Value::from(self.akg_edges)),
            (
                "evicted_quantum",
                match self.evicted_quantum {
                    Some(q) => Value::from(q),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Reconstructs a summary serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            quantum: value.get("quantum")?.as_u64()?,
            messages: value.get("messages")?.as_usize()?,
            events: value
                .get("events")?
                .as_arr()?
                .iter()
                .map(DetectedEvent::from_json)
                .collect::<dengraph_json::Result<_>>()?,
            akg_stats: AkgQuantumStats::from_json(value.get("akg_stats")?)?,
            maintenance_stats: MaintenanceStats::from_json(value.get("maintenance_stats")?)?,
            live_clusters: value.get("live_clusters")?.as_usize()?,
            akg_nodes: value.get("akg_nodes")?.as_usize()?,
            akg_edges: value.get("akg_edges")?.as_usize()?,
            evicted_quantum: value
                .get_opt("evicted_quantum")?
                .map(|v| v.as_u64())
                .transpose()?,
        })
    }
}

/// Cumulative wall-clock spent in each stage of the per-quantum pipeline
/// since the detector was created (or restored — timings are diagnostics,
/// not state, so they are never serialised).
///
/// The seven buckets mirror the pipeline described on [`EventDetector`]:
/// window aggregation, the AKG's read-only score phase, the AKG's serial
/// apply phase, the incremental component-index maintenance folded into
/// that apply phase (attributed separately, and subtracted from
/// `akg_apply_ns` so the buckets stay disjoint), cluster maintenance, the
/// ranking-support pass, and the rank-filter-report loop.  `bench_smoke`
/// publishes these as `stage_ms` so perf PRs can attribute their wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Stage 1: quantum aggregation + window slide, in nanoseconds.
    pub window_ns: u64,
    /// Stage 2a: AKG candidate collection + correlation scoring (read-only).
    pub akg_score_ns: u64,
    /// Stage 2b: AKG mutation (stale removal, admission, edge apply, demotion).
    pub akg_apply_ns: u64,
    /// Stage 2c: incremental component-index maintenance (union/splits)
    /// performed in lock step with the AKG mutations of stage 2b.
    pub component_ns: u64,
    /// Stage 3: cluster maintenance from AKG deltas.
    pub cluster_ns: u64,
    /// Stage 4: the sharded ranking-support (window user count) pass.
    pub ranking_ns: u64,
    /// Stage 5: rank, filter, sort and report.
    pub report_ns: u64,
}

impl StageTimes {
    /// Total time across all stages, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.window_ns
            + self.akg_score_ns
            + self.akg_apply_ns
            + self.component_ns
            + self.cluster_ns
            + self.ranking_ns
            + self.report_ns
    }

    /// The stages as `(name, milliseconds)` pairs, pipeline order.
    pub fn as_millis(&self) -> [(&'static str, f64); 7] {
        let ms = |ns: u64| ns as f64 / 1e6;
        [
            ("window", ms(self.window_ns)),
            ("akg_score", ms(self.akg_score_ns)),
            ("akg_apply", ms(self.akg_apply_ns)),
            ("component", ms(self.component_ns)),
            ("cluster", ms(self.cluster_ns)),
            ("ranking", ms(self.ranking_ns)),
            ("report", ms(self.report_ns)),
        ]
    }
}

/// The streaming event detector.
#[derive(Debug)]
pub struct EventDetector {
    config: DetectorConfig,
    window: WindowState,
    akg: AkgMaintainer,
    clusters: ClusterMaintainer,
    tracker: EventTracker,
    noun_filter: Option<(KeywordInterner, NounHeuristic)>,
    buffer: Vec<Message>,
    next_quantum: u64,
    total_messages: u64,
    stage_times: StageTimes,
    /// Reusable per-quantum buffers (never part of checkpoints; a fresh
    /// arena produces bit-identical output to a warmed one).
    scratch: ScratchArena,
}

/// The fixed seed of the window's user hasher.  Part of the detector's
/// deterministic identity: checkpoints record it, and a restored session
/// hashes users exactly as the original did.
const WINDOW_HASHER_SEED: u64 = 0x5EED_CAFE;

impl EventDetector {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`DetectorConfig::validate`]).
    #[deprecated(
        since = "0.1.0",
        note = "use `dengraph_core::DetectorBuilder`, whose `build()` returns a typed \
                `ConfigError` instead of panicking on bad configuration"
    )]
    pub fn new(config: DetectorConfig) -> Self {
        config.validate().expect("invalid detector configuration");
        Self::from_config(config)
    }

    /// Creates a detector from an already-validated configuration.  Callers
    /// outside this crate go through
    /// [`DetectorBuilder`](crate::session::DetectorBuilder), which enforces
    /// validation.
    pub(crate) fn from_config(config: DetectorConfig) -> Self {
        let window = WindowState::with_mode(
            config.window_quanta,
            config.sketch_size(),
            UserHasher::new(WINDOW_HASHER_SEED),
            config.window_index_mode,
        )
        // Only keywords that were bursty at least once are ever read
        // through the index, so the long tail below σ skips all
        // incremental bookkeeping (reads fall back to the record walk).
        .with_materialize_threshold(config.high_state_threshold as usize);
        Self {
            akg: AkgMaintainer::new(config.clone()),
            clusters: ClusterMaintainer::new(),
            tracker: EventTracker::new(),
            noun_filter: None,
            buffer: Vec::with_capacity(config.quantum_size),
            next_quantum: 0,
            total_messages: 0,
            stage_times: StageTimes::default(),
            scratch: ScratchArena::default(),
            window,
            config,
        }
    }

    /// Creates a detector with the nominal configuration of Table 2.
    #[deprecated(
        since = "0.1.0",
        note = "use `dengraph_core::DetectorBuilder::new().build()` (the builder defaults \
                to the nominal configuration of Table 2)"
    )]
    pub fn with_nominal_config() -> Self {
        Self::from_config(DetectorConfig::nominal())
    }

    /// Enables the noun-based precision filter by supplying the keyword
    /// interner used by the message stream (needed to resolve keyword ids
    /// back to strings).
    pub fn with_interner(mut self, interner: KeywordInterner) -> Self {
        self.noun_filter = Some((interner, NounHeuristic::new()));
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The current AKG.
    pub fn akg(&self) -> &dengraph_graph::DynamicGraph {
        self.akg.graph()
    }

    /// The persistent connected-component index the AKG maintainer keeps
    /// in lock step with [`Self::akg`] (read access).
    pub fn component_index(&self) -> &dengraph_graph::ComponentIndex {
        self.akg.components()
    }

    /// The cluster maintainer (read access).
    pub fn clusters(&self) -> &ClusterMaintainer {
        &self.clusters
    }

    /// The long-term event records accumulated so far.
    pub fn event_records(&self) -> Vec<&EventRecord> {
        self.tracker.records()
    }

    /// The long-term record of one event, if it has ever been reported.
    pub fn event_record(&self, cluster_id: crate::cluster::ClusterId) -> Option<&EventRecord> {
        self.tracker.get(cluster_id)
    }

    /// Event records not flagged spurious by the post-hoc heuristic.
    pub fn non_spurious_event_records(&self) -> Vec<&EventRecord> {
        self.tracker.non_spurious_records()
    }

    /// Total messages ingested.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Number of quanta fully processed.
    pub fn quanta_processed(&self) -> u64 {
        self.next_quantum
    }

    /// Messages sitting in the partially filled quantum buffer (not yet
    /// counted by [`Self::total_messages`]).  After a restore, the next
    /// message this detector expects is stream position
    /// `total_messages() + buffered_messages()`.
    pub fn buffered_messages(&self) -> usize {
        self.buffer.len()
    }

    /// Cumulative per-stage wall-clock since construction (or restore).
    /// Diagnostics only — never serialised, and identical configurations
    /// produce identical *outputs* regardless of what this reports.
    pub fn stage_times(&self) -> StageTimes {
        let (score_ns, apply_ns, component_ns) = self.akg.stage_ns();
        StageTimes {
            akg_score_ns: score_ns,
            akg_apply_ns: apply_ns,
            component_ns,
            ..self.stage_times
        }
    }

    /// Streams a single message into the detector.  When the internal
    /// buffer reaches the configured quantum size Δ, the quantum is
    /// processed and its summary returned.
    pub fn push_message(&mut self, message: Message) -> Option<QuantumSummary> {
        self.buffer.push(message);
        if self.buffer.len() >= self.config.quantum_size {
            let messages = std::mem::take(&mut self.buffer);
            Some(self.process_messages(&messages))
        } else {
            None
        }
    }

    /// Flushes a partial quantum (e.g. at end of stream).  Returns `None`
    /// when the buffer is empty.
    pub fn flush(&mut self) -> Option<QuantumSummary> {
        if self.buffer.is_empty() {
            return None;
        }
        let messages = std::mem::take(&mut self.buffer);
        Some(self.process_messages(&messages))
    }

    /// Processes one pre-batched quantum.
    pub fn process_quantum(&mut self, quantum: &Quantum) -> QuantumSummary {
        self.process_messages(&quantum.messages)
    }

    /// Runs an entire message slice through the detector, batching it into
    /// quanta of the configured size.  Returns one summary per quantum.
    pub fn run(&mut self, messages: &[Message]) -> Vec<QuantumSummary> {
        let mut out = Vec::new();
        for m in messages {
            if let Some(summary) = self.push_message(m.clone()) {
                out.push(summary);
            }
        }
        if let Some(summary) = self.flush() {
            out.push(summary);
        }
        out
    }

    /// Core per-quantum pipeline.
    fn process_messages(&mut self, messages: &[Message]) -> QuantumSummary {
        let quantum = self.next_quantum;
        self.next_quantum += 1;
        self.total_messages += messages.len() as u64;

        // 1. Aggregate and slide the window (fanned out over message
        //    chunks per the configured parallelism).  The record's backing
        //    storage is recycled from the quantum that slides out, and the
        //    AKG reads it in place from the window — no clone.
        let stage_start = std::time::Instant::now();
        let storage = self.scratch.record_storage.take().unwrap_or_default();
        let record = QuantumRecord::from_messages_into(
            quantum,
            messages,
            self.config.parallelism,
            &mut self.scratch.pairs,
            &mut self.scratch.pair_sort,
            storage,
        );
        let evicted = self.window.push_with_lanes(record, &mut self.scratch.lanes);
        let evicted_quantum = evicted.as_ref().map(|r| r.index);
        if let Some(old) = evicted {
            self.scratch.record_storage = Some(old.into_storage());
        }
        self.stage_times.window_ns += stage_start.elapsed().as_nanos() as u64;

        // 2. AKG maintenance.  The hysteresis callback consults the cluster
        //    registry as it stood at the end of the previous quantum.
        let registry = &self.clusters;
        let record = self.window.current().expect("record was just pushed");
        self.akg.process_quantum_into(
            record,
            &self.window,
            |kw: KeywordId| registry.registry().is_cluster_member(node_of(kw)),
            &mut self.scratch,
        );

        // 3. Cluster maintenance, sharded by AKG connected component.  The
        //    partition comes from the persistent component index the AKG
        //    maintainer keeps in lock step (O(deltas)); Rebuild mode is the
        //    from-scratch ablation the bench measures the index against.
        let stage_start = std::time::Instant::now();
        match self.config.component_index_mode {
            crate::config::ComponentIndexMode::Incremental => self.clusters.apply_deltas_indexed(
                self.akg.graph(),
                self.akg.components(),
                &self.scratch.deltas,
                quantum,
                self.config.parallelism,
            ),
            crate::config::ComponentIndexMode::Rebuild => self.clusters.apply_deltas_with(
                self.akg.graph(),
                &self.scratch.deltas,
                quantum,
                self.config.parallelism,
            ),
        }
        self.stage_times.cluster_ns += stage_start.elapsed().as_nanos() as u64;

        // 4 + 5. Rank, filter and report.
        let (events, ranking_ns, report_ns) = self.report_events(quantum);
        self.stage_times.ranking_ns += ranking_ns;
        let stage_start = std::time::Instant::now();
        for e in &events {
            self.tracker.observe(e);
        }
        self.stage_times.report_ns += report_ns + stage_start.elapsed().as_nanos() as u64;

        #[cfg(feature = "invariants")]
        if let Err(e) = self.validate_invariants() {
            // lint: allow(L002, the invariants feature exists to fail loudly the moment state corrupts; it is never enabled in production builds) allow(L007, reachable only with the opt-in invariants feature; crashing beats streaming corrupt clusters)
            panic!("invariant violated after quantum {quantum}: {e}");
        }

        QuantumSummary {
            quantum,
            messages: messages.len(),
            akg_stats: self.akg.last_stats(),
            maintenance_stats: self.clusters.last_stats(),
            live_clusters: self.clusters.cluster_count(),
            akg_nodes: self.akg.graph().node_count(),
            akg_edges: self.akg.graph().edge_count(),
            events,
            evicted_quantum,
        }
    }

    /// Deep-checks the structural invariants of every stateful component:
    /// the AKG's sorted-adjacency/edge-symmetry contract
    /// ([`dengraph_graph::DynamicGraph::validate_invariants`]), the sliding
    /// window and its incremental index against a raw record walk
    /// ([`WindowState::validate_invariants`](crate::keyword_state::WindowState::validate_invariants)),
    /// the persistent component index against a from-scratch recompute of
    /// the AKG's connected components
    /// ([`ComponentIndex::validate_against`](dengraph_graph::ComponentIndex::validate_against)),
    /// and the cluster registry's index/SCP/id-allocation contract
    /// ([`ClusterRegistry::check_invariants`](crate::cluster::ClusterRegistry::check_invariants)).
    ///
    /// O(total state) — a validation aid.  Under the `invariants` cargo
    /// feature this runs automatically at every quantum boundary and
    /// panics on the first violation; without the feature it is only ever
    /// invoked explicitly (tests, debugging sessions).
    pub fn validate_invariants(&self) -> Result<(), String> {
        self.akg
            .graph()
            .validate_invariants()
            .map_err(|e| format!("AKG: {e}"))?;
        self.window
            .validate_invariants()
            .map_err(|e| format!("window: {e}"))?;
        self.akg
            .components()
            .validate_against(self.akg.graph())
            .map_err(|e| format!("component index: {e}"))?;
        self.clusters
            .registry()
            .check_invariants()
            .map_err(|e| format!("cluster registry: {e}"))?;
        Ok(())
    }

    /// Serialises the complete detector state — configuration, sliding
    /// window (records + incremental index), AKG graph and keyword
    /// automaton, cluster registry, event tracker, the partially filled
    /// message buffer and the quantum counters — to a
    /// [`dengraph_json::Value`].
    ///
    /// [`Self::from_json`] reconstructs a detector whose subsequent output
    /// is bit-identical to this one continuing uninterrupted; the
    /// session-level wrapper is
    /// [`DetectorSession::checkpoint`](crate::session::DetectorSession::checkpoint).
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("format", Value::str("dengraph-detector-state")),
            ("version", Value::from(1u32)),
            ("config", self.config.to_json()),
            ("window", self.window.to_json()),
            ("akg", self.akg.to_json()),
            ("clusters", self.clusters.to_json()),
            ("tracker", self.tracker.to_json()),
            (
                "interner",
                match &self.noun_filter {
                    Some((interner, _)) => {
                        Value::arr(interner.iter().map(|(_, word)| Value::str(word)))
                    }
                    None => Value::Null,
                },
            ),
            (
                "buffer",
                Value::arr(
                    self.buffer
                        .iter()
                        .map(dengraph_stream::json::message_to_value),
                ),
            ),
            ("next_quantum", Value::from(self.next_quantum)),
            ("total_messages", Value::from(self.total_messages)),
        ])
    }

    /// Reconstructs a detector serialised by [`Self::to_json`].  The
    /// embedded configuration is re-validated, so a tampered or corrupted
    /// checkpoint cannot smuggle a degenerate configuration past
    /// [`DetectorConfig::validate`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let config = DetectorConfig::from_json(value.get("config")?)?;
        config.validate().map_err(|e| dengraph_json::JsonError {
            message: format!("invalid configuration in checkpoint: {e}"),
            offset: 0,
        })?;
        Self::from_json_validated(config, value)
    }

    /// Decodes the full detector state under an already-decoded and
    /// -validated configuration (the session restore path, which surfaces
    /// configuration failures as a typed error before calling this).
    pub(crate) fn from_json_validated(
        config: DetectorConfig,
        value: &dengraph_json::Value,
    ) -> dengraph_json::Result<Self> {
        match value.get("format")?.as_str()? {
            "dengraph-detector-state" => {}
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown checkpoint format '{other}'"),
                    offset: 0,
                })
            }
        }
        let version = value.get("version")?.as_u32()?;
        if version != 1 {
            return Err(dengraph_json::JsonError {
                message: format!("unsupported checkpoint version {version}"),
                offset: 0,
            });
        }
        let noun_filter = match value.get_opt("interner")? {
            Some(words) => {
                let mut interner = KeywordInterner::new();
                for word in words.as_arr()? {
                    interner.intern(word.as_str()?);
                }
                Some((interner, NounHeuristic::new()))
            }
            None => None,
        };
        let window = WindowState::from_json(value.get("window")?)?;
        Self::check_window_geometry(&config, &window)?;
        Ok(Self {
            window,
            akg: AkgMaintainer::from_json(config.clone(), value.get("akg")?)?,
            clusters: ClusterMaintainer::from_json(value.get("clusters")?)?,
            tracker: EventTracker::from_json(value.get("tracker")?)?,
            noun_filter,
            buffer: value
                .get("buffer")?
                .as_arr()?
                .iter()
                .map(dengraph_stream::json::message_from_value)
                .collect::<dengraph_json::Result<_>>()?,
            next_quantum: value.get("next_quantum")?.as_u64()?,
            total_messages: value.get("total_messages")?.as_u64()?,
            stage_times: StageTimes::default(),
            scratch: ScratchArena::default(),
            config,
        })
    }

    /// The window's geometry is derived state; a checkpoint whose window
    /// contradicts its own (validated) configuration is corrupt, and
    /// restoring it would silently change slide/sketch behaviour.
    /// The materialization threshold is deliberately *not* cross-checked:
    /// every threshold yields bit-identical reads (non-materialized
    /// keywords fall back to the record walk), so a checkpoint written
    /// under a different threshold — including pre-threshold checkpoints,
    /// which decode as "materialize everything" — restores correctly.
    /// Shared by the JSON and binary decoders.
    fn check_window_geometry(
        config: &DetectorConfig,
        window: &WindowState,
    ) -> dengraph_json::Result<()> {
        if window.capacity() != config.window_quanta
            || window.sketch_size() != config.sketch_size()
            || window.mode() != config.window_index_mode
        {
            return Err(dengraph_json::JsonError {
                message: format!(
                    "window geometry (capacity {}, sketch size {}, mode {:?}) contradicts \
                     the embedded configuration (window_quanta {}, sketch size {}, mode {:?})",
                    window.capacity(),
                    window.sketch_size(),
                    window.mode(),
                    config.window_quanta,
                    config.sketch_size(),
                    config.window_index_mode,
                ),
                offset: 0,
            });
        }
        Ok(())
    }

    /// Appends the complete detector state in the compact binary format —
    /// the binary twin of [`Self::to_json`], byte layout:
    /// config · window · AKG · clusters · tracker · optional interner ·
    /// partial message buffer · quantum counters.  The document header
    /// (magic + version) is written by the checkpoint container
    /// ([`Checkpoint`](crate::session::Checkpoint) /
    /// [`CheckpointJournal`](crate::checkpoint::CheckpointJournal)), not
    /// here.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.config.to_bin(w);
        self.window.to_bin(w);
        self.akg.to_bin(w);
        self.clusters.to_bin(w);
        self.tracker.to_bin(w);
        match &self.noun_filter {
            Some((interner, _)) => {
                w.bool(true);
                w.usize(interner.len());
                for (_, word) in interner.iter() {
                    w.str(word);
                }
            }
            None => w.bool(false),
        }
        w.usize(self.buffer.len());
        for message in &self.buffer {
            dengraph_stream::json::message_to_bin(message, w);
        }
        w.u64(self.next_quantum);
        w.u64(self.total_messages);
    }

    /// Reconstructs a detector encoded by [`Self::to_bin`], re-validating
    /// the embedded configuration exactly like [`Self::from_json`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let config = DetectorConfig::from_bin(r)?;
        config.validate().map_err(|e| dengraph_json::JsonError {
            message: format!("invalid configuration in checkpoint: {e}"),
            offset: r.pos(),
        })?;
        Self::from_bin_validated(config, r)
    }

    /// Decodes the binary detector state under an already-decoded and
    /// -validated configuration.  The reader must be positioned just past
    /// the configuration bytes.
    pub(crate) fn from_bin_validated(
        config: DetectorConfig,
        r: &mut dengraph_json::BinReader<'_>,
    ) -> dengraph_json::Result<Self> {
        let window = WindowState::from_bin(r)?;
        Self::check_window_geometry(&config, &window)?;
        let akg = AkgMaintainer::from_bin(config.clone(), r)?;
        let clusters = ClusterMaintainer::from_bin(r)?;
        let tracker = EventTracker::from_bin(r)?;
        let noun_filter = if r.bool()? {
            let words = r.seq_len(1)?;
            let mut interner = KeywordInterner::new();
            for _ in 0..words {
                interner.intern(&r.str()?);
            }
            Some((interner, NounHeuristic::new()))
        } else {
            None
        };
        let buffered = r.seq_len(2)?;
        let mut buffer = Vec::with_capacity(buffered.min(config.quantum_size));
        for _ in 0..buffered {
            buffer.push(dengraph_stream::json::message_from_bin(r)?);
        }
        Ok(Self {
            window,
            akg,
            clusters,
            tracker,
            noun_filter,
            buffer,
            next_quantum: r.u64()?,
            total_messages: r.u64()?,
            stage_times: StageTimes::default(),
            scratch: ScratchArena::default(),
            config,
        })
    }

    /// Encodes the state transition of the quantum that just completed
    /// (`summary` must be its summary) as a journal delta-record payload:
    /// the window record, the AKG delta log still sitting in the scratch
    /// arena, the quantum's AKG statistics and the reported events.
    /// Encodes straight from the borrowed state — this runs once per
    /// quantum on the journaled hot path, so it must not clone the
    /// delta log or the window record first.
    pub(crate) fn encode_delta_record(
        &self,
        summary: &QuantumSummary,
        format: dengraph_json::WireFormat,
    ) -> Vec<u8> {
        use dengraph_json::Encode as _;
        let record = self.window.current().expect("a quantum was just processed");
        debug_assert_eq!(record.index, summary.quantum, "summary is stale");
        crate::checkpoint::DeltaRecordView {
            record,
            akg_deltas: &self.scratch.deltas,
            akg_stats: self.akg.last_stats(),
            events: &summary.events,
        }
        .encode(format)
    }

    /// Redoes one quantum from a journal delta record — the replay half
    /// of incremental checkpointing.  Pushes the logged window record,
    /// re-applies the AKG delta log to the graph and keyword automaton,
    /// re-runs cluster maintenance from the same deltas (deterministic,
    /// cluster ids included) and re-observes the logged events; no
    /// correlation is re-scored.  Rejects records that do not continue
    /// exactly at this detector's next quantum.
    pub(crate) fn apply_delta_record(
        &mut self,
        record: &crate::checkpoint::DeltaRecord,
    ) -> dengraph_json::Result<()> {
        if record.record.index != self.next_quantum {
            return Err(dengraph_json::JsonError {
                message: format!(
                    "journal gap: delta record for quantum {} cannot apply to a detector \
                     at quantum {}",
                    record.record.index, self.next_quantum
                ),
                offset: 0,
            });
        }
        // The record aggregates the full quantum, superseding any
        // partially buffered prefix of it restored from the snapshot.
        self.buffer.clear();
        let evicted = self.window.push(record.record.clone());
        if let Some(old) = evicted {
            self.scratch.record_storage = Some(old.into_storage());
        }
        self.akg.replay_deltas(&record.akg_deltas, record.akg_stats);
        self.clusters
            .apply_deltas(self.akg.graph(), &record.akg_deltas, record.record.index);
        for event in &record.events {
            self.tracker.observe(event);
        }
        self.next_quantum = record.record.index + 1;
        self.total_messages += record.record.message_count as u64;
        Ok(())
    }

    /// Ranks every live cluster and applies the reporting filters.
    ///
    /// The per-node support weights (distinct window users per keyword)
    /// dominate the ranking cost, and each is an independent read of the
    /// window — so they are precomputed in one sharded pass before the
    /// serial rank-and-filter loop.  Returns the events plus the
    /// nanoseconds spent in the support pass and the rank/filter loop.
    fn report_events(&self, quantum: u64) -> (Vec<DetectedEvent>, u64, u64) {
        let ranking_start = std::time::Instant::now();
        let graph = self.akg.graph();
        let mut cluster_nodes: Vec<dengraph_graph::NodeId> = self
            .clusters
            .clusters()
            .flat_map(|c| c.nodes.iter().copied())
            .collect();
        cluster_nodes.sort_unstable();
        cluster_nodes.dedup();
        let cluster_keywords: Vec<KeywordId> =
            cluster_nodes.iter().map(|&n| keyword_of(n)).collect();
        let counts = self
            .window
            .window_user_counts(&cluster_keywords, self.config.parallelism);
        // `cluster_nodes` is sorted, so the support lookup is a binary
        // search over a dense column instead of a hash probe.
        let support = |node: dengraph_graph::NodeId| {
            cluster_nodes
                .binary_search(&node)
                .map(|i| counts[i])
                .unwrap_or(0)
        };
        let ranking_ns = ranking_start.elapsed().as_nanos() as u64;
        let report_start = std::time::Instant::now();
        let mut events: Vec<DetectedEvent> = Vec::new();
        for cluster in self.clusters.clusters() {
            let rank = cluster_rank(cluster, graph, &support);
            if rank < self.config.rank_report_threshold() {
                continue;
            }
            let mut keywords: Vec<KeywordId> =
                cluster.nodes.iter().map(|&n| keyword_of(n)).collect();
            keywords.sort();
            if self.config.require_noun {
                if let Some((interner, heuristic)) = &self.noun_filter {
                    let has_noun = keywords
                        .iter()
                        .filter_map(|k| interner.resolve(*k))
                        .any(|w| heuristic.is_noun(w));
                    if !has_noun {
                        continue;
                    }
                }
            }
            events.push(DetectedEvent {
                cluster_id: cluster.id,
                quantum,
                rank,
                support: cluster_support(cluster, &support),
                keywords,
            });
        }
        // Best rank first; equal ranks tie-break on cluster id so the
        // report order never depends on hash-map iteration order.
        events.sort_by(|a, b| {
            b.rank
                .total_cmp(&a.rank)
                .then(a.cluster_id.cmp(&b.cluster_id))
        });
        (events, ranking_ns, report_start.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dengraph_stream::UserId;

    /// Test constructor mirroring what `DetectorBuilder::build` does for
    /// a known-valid configuration.
    fn detector(config: DetectorConfig) -> EventDetector {
        config.validate().expect("test configuration is valid");
        EventDetector::from_config(config)
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            quantum_size: 20,
            high_state_threshold: 3,
            edge_correlation_threshold: 0.3,
            window_quanta: 4,
            ..Default::default()
        }
    }

    fn k(i: u32) -> KeywordId {
        KeywordId(i)
    }

    /// A quantum in which `users` distinct users each post the same keyword
    /// set, plus filler chatter from other users.
    fn event_quantum(
        detector_cfg: &DetectorConfig,
        users: u64,
        base_user: u64,
        keywords: &[u32],
        time0: u64,
    ) -> Vec<Message> {
        let mut msgs = Vec::new();
        for u in 0..users {
            msgs.push(Message::new(
                UserId(base_user + u),
                time0 + u,
                keywords.iter().map(|&i| KeywordId(i)).collect(),
            ));
        }
        // Filler: unique users, unique keywords (never bursty).
        let mut filler_id = 10_000 + time0 * 100;
        while msgs.len() < detector_cfg.quantum_size {
            msgs.push(Message::new(
                UserId(filler_id),
                time0 + filler_id,
                vec![KeywordId(5_000 + filler_id as u32)],
            ));
            filler_id += 1;
        }
        msgs
    }

    #[test]
    fn correlated_burst_is_reported_as_an_event() {
        let config = cfg();
        let mut det = detector(config.clone());
        let msgs = event_quantum(&config, 6, 100, &[1, 2, 3], 0);
        let summary = det.push_message_all(msgs);
        assert_eq!(summary.len(), 1);
        let events = &summary[0].events;
        assert_eq!(
            events.len(),
            1,
            "exactly one event expected, got {events:?}"
        );
        assert_eq!(events[0].keywords, vec![k(1), k(2), k(3)]);
        assert!(events[0].rank >= config.rank_report_threshold());
        assert!(events[0].support >= 18); // 6 users × 3 keywords
    }

    impl EventDetector {
        /// Test helper: push a whole vector and collect summaries.
        fn push_message_all(&mut self, msgs: Vec<Message>) -> Vec<QuantumSummary> {
            let mut out = Vec::new();
            for m in msgs {
                if let Some(s) = self.push_message(m) {
                    out.push(s);
                }
            }
            out
        }
    }

    #[test]
    fn delta_record_view_encodes_identically() {
        use dengraph_json::{Encode as _, WireFormat};
        let config = cfg();
        let mut det = detector(config.clone());
        let mut summaries = det.push_message_all(event_quantum(&config, 6, 100, &[1, 2, 3], 0));
        summaries.extend(det.push_message_all(event_quantum(
            &config,
            6,
            200,
            &[1, 2, 3, 4],
            1_000,
        )));
        let summary = summaries.last().expect("two quanta processed");
        assert!(!summary.events.is_empty(), "fixture must exercise events");
        // The owned record the hot path used to build and encode.
        let owned = crate::checkpoint::DeltaRecord {
            record: det
                .window
                .current()
                .expect("a quantum was just processed")
                .clone(),
            akg_deltas: det.scratch.deltas.clone(),
            akg_stats: det.akg.last_stats(),
            events: summary.events.clone(),
        };
        for format in [WireFormat::Json, WireFormat::Binary] {
            assert_eq!(
                det.encode_delta_record(summary, format),
                owned.encode(format),
                "borrowed view must encode byte-identically ({format})"
            );
        }
    }

    #[test]
    fn uncorrelated_chatter_produces_no_events() {
        let config = cfg();
        let mut det = detector(config.clone());
        let mut msgs = Vec::new();
        for u in 0..(config.quantum_size as u64) {
            msgs.push(Message::new(UserId(u), u, vec![KeywordId(u as u32 % 7)]));
        }
        let summaries = det.push_message_all(msgs);
        assert_eq!(summaries.len(), 1);
        assert!(summaries[0].events.is_empty());
    }

    #[test]
    fn event_evolves_when_a_new_keyword_joins() {
        let config = cfg();
        let mut det = detector(config.clone());
        det.push_message_all(event_quantum(&config, 6, 100, &[1, 2, 3], 0));
        // Next quantum the same event gains keyword 4 (the "5.9" of Figure 1).
        let summaries = det.push_message_all(event_quantum(&config, 6, 200, &[1, 2, 3, 4], 1_000));
        let events = &summaries[0].events;
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].keywords, vec![k(1), k(2), k(3), k(4)]);
        // Both quanta anchor to the same cluster id, so the tracker sees one
        // evolving event.
        let records = det.event_records();
        assert_eq!(records.len(), 1);
        assert!(records[0].evolved());
    }

    #[test]
    fn event_disappears_after_the_window_slides_past_it() {
        let config = cfg();
        let mut det = detector(config.clone());
        det.push_message_all(event_quantum(&config, 6, 100, &[1, 2, 3], 0));
        assert_eq!(det.clusters().cluster_count(), 1);
        // Quanta of pure filler for longer than the window length.
        for q in 1..=(config.window_quanta as u64 + 1) {
            det.push_message_all(event_quantum(&config, 0, 0, &[], q * 1_000));
        }
        assert_eq!(
            det.clusters().cluster_count(),
            0,
            "stale keywords must dissolve the cluster"
        );
        assert!(det.akg().node_count() <= 1);
    }

    #[test]
    fn two_simultaneous_events_are_reported_separately() {
        let config = cfg();
        let mut det = detector(config.clone());
        let mut msgs = Vec::new();
        for u in 0..5u64 {
            msgs.push(Message::new(UserId(100 + u), u, vec![k(1), k(2), k(3)]));
            msgs.push(Message::new(
                UserId(200 + u),
                50 + u,
                vec![k(11), k(12), k(13)],
            ));
        }
        while msgs.len() < config.quantum_size {
            let id = 900 + msgs.len() as u64;
            msgs.push(Message::new(
                UserId(id),
                id,
                vec![KeywordId(7_000 + id as u32)],
            ));
        }
        let summaries = det.push_message_all(msgs);
        assert_eq!(summaries[0].events.len(), 2);
        let keyword_sets: Vec<Vec<KeywordId>> = summaries[0]
            .events
            .iter()
            .map(|e| e.keywords.clone())
            .collect();
        assert!(keyword_sets.contains(&vec![k(1), k(2), k(3)]));
        assert!(keyword_sets.contains(&vec![k(11), k(12), k(13)]));
    }

    /// Regression: two simultaneous events with identical rank must be
    /// ordered by cluster id, not by `FxHashMap` iteration order.
    #[test]
    fn equal_rank_events_are_ordered_by_cluster_id() {
        let config = cfg();
        let mut det = detector(config.clone());
        // Two structurally identical bursts in one quantum: same user
        // count, same keyword count, fully correlated within each burst —
        // their ranks are bit-identical.
        let mut msgs = Vec::new();
        for u in 0..5u64 {
            msgs.push(Message::new(UserId(100 + u), u, vec![k(1), k(2), k(3)]));
            msgs.push(Message::new(
                UserId(200 + u),
                50 + u,
                vec![k(11), k(12), k(13)],
            ));
        }
        while msgs.len() < config.quantum_size {
            let id = 900 + msgs.len() as u64;
            msgs.push(Message::new(
                UserId(id),
                id,
                vec![KeywordId(7_000 + id as u32)],
            ));
        }
        let summaries = det.push_message_all(msgs);
        let events = &summaries[0].events;
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].rank, events[1].rank,
            "the fixture must produce an exact rank tie"
        );
        assert!(
            events[0].cluster_id < events[1].cluster_id,
            "equal-rank events must be ordered by cluster id, got {:?} then {:?}",
            events[0].cluster_id,
            events[1].cluster_id
        );
    }

    #[test]
    fn flush_processes_partial_quanta() {
        let config = cfg();
        let mut det = detector(config.clone());
        for u in 0..5u64 {
            det.push_message(Message::new(UserId(u), u, vec![k(1), k(2), k(3)]));
        }
        assert_eq!(det.quanta_processed(), 0);
        let summary = det.flush().unwrap();
        assert_eq!(summary.messages, 5);
        assert_eq!(det.quanta_processed(), 1);
        assert!(det.flush().is_none());
    }

    #[test]
    fn summary_statistics_are_populated() {
        let config = cfg();
        let mut det = detector(config.clone());
        let summaries = det.push_message_all(event_quantum(&config, 6, 100, &[1, 2, 3], 0));
        let s = &summaries[0];
        assert_eq!(s.quantum, 0);
        assert_eq!(s.messages, config.quantum_size);
        assert!(s.akg_nodes >= 3);
        assert!(s.akg_edges >= 3);
        assert_eq!(s.live_clusters, 1);
        assert!(s.akg_stats.bursty_keywords >= 3);
        assert_eq!(det.total_messages(), config.quantum_size as u64);
    }

    #[test]
    fn noun_filter_suppresses_all_non_noun_clusters() {
        let mut interner = KeywordInterner::new();
        // Keywords 0..3 resolve to non-noun words.
        for w in ["massive", "awesome", "really", "watching"] {
            interner.intern(w);
        }
        let config = cfg();
        let mut det = detector(config.clone()).with_interner(interner);
        let summaries = det.push_message_all(event_quantum(&config, 6, 100, &[0, 1, 2], 0));
        assert!(
            summaries[0].events.is_empty(),
            "non-noun cluster must be filtered"
        );
        // The cluster itself still exists; only reporting is filtered.
        assert_eq!(det.clusters().cluster_count(), 1);
    }

    /// Pins the deprecated constructor's panic-on-error contract for as
    /// long as it exists; everything else goes through `DetectorBuilder`
    /// (or `from_config` for in-crate tests).
    #[test]
    #[should_panic(expected = "invalid detector configuration")]
    #[allow(deprecated)]
    fn invalid_config_is_rejected() {
        let _ = EventDetector::new(DetectorConfig {
            quantum_size: 0,
            ..Default::default()
        });
    }
}
