//! Sliding-window keyword state: the two-state automaton and per-keyword
//! user-id bookkeeping of Section 3.1 / 3.2.
//!
//! For every keyword the detector needs to know, over the current window of
//! `w` quanta:
//!
//! * how many distinct users mentioned it in the **current** quantum (the
//!   burstiness test against the high-state threshold σ),
//! * the min-hash sketch of the users who mentioned it anywhere in the
//!   window (for edge-correlation estimation),
//! * the exact user-id set over the window (for exact-EC ablation and for
//!   cluster support in the ranking function), and
//! * the most recent quantum in which it occurred (for stale removal).
//!
//! Each quantum contributes one immutable [`QuantumRecord`]; sliding the
//! window simply drops the oldest record.  How the per-keyword aggregates
//! are produced from those records is governed by [`WindowIndexMode`]:
//!
//! * [`WindowIndexMode::Rebuild`] — every read walks all `w` records (the
//!   naive cache-build cost the paper's incremental AKG design avoids;
//!   kept as the ablation baseline),
//! * [`WindowIndexMode::Incremental`] — a `WindowIndex` keeps, per
//!   keyword, a refcounted window user multiset, per-quantum sub-sketches
//!   merged into a cached window sketch, and a recency mark, all updated
//!   in O(Δ) as the window slides, so reads are O(1) / O(set size).
//!
//! Both modes are **bit-identical**: same sketches, same counts, same
//! user sets (`tests/window_index_equivalence.rs` gates this).

use std::collections::VecDeque;

use dengraph_graph::fxhash::{FxHashMap, FxHashSet};
use dengraph_minhash::{EpochSketchStore, MinHashSketch, UserHasher};
use dengraph_parallel::{par_chunks, par_map, Parallelism};
use dengraph_stream::{Message, UserId};
use dengraph_text::KeywordId;

/// Per-quantum aggregation of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumRecord {
    /// Quantum index.
    pub index: u64,
    /// For every keyword occurring in the quantum, the distinct users that
    /// mentioned it.
    pub keyword_users: FxHashMap<KeywordId, FxHashSet<UserId>>,
    /// Number of messages aggregated into this record.
    pub message_count: usize,
}

impl QuantumRecord {
    /// Builds a record from the messages of one quantum.
    pub fn from_messages(index: u64, messages: &[Message]) -> Self {
        Self::from_messages_with(index, messages, Parallelism::Serial)
    }

    /// Builds a record, fanning the aggregation out over contiguous message
    /// chunks per `parallelism`.  The resulting per-keyword user *sets* are
    /// identical to the serial path's (set contents carry the semantics;
    /// everything downstream orders keywords canonically).
    pub fn from_messages_with(index: u64, messages: &[Message], parallelism: Parallelism) -> Self {
        let aggregate = |msgs: &[Message]| {
            let mut map: FxHashMap<KeywordId, FxHashSet<UserId>> = FxHashMap::default();
            for m in msgs {
                for &k in &m.keywords {
                    map.entry(k).or_default().insert(m.user);
                }
            }
            map
        };
        // One partial map per chunk (par_chunks falls back to a single
        // serial chunk for small quanta), merged serially.
        let mut partials = par_chunks(parallelism, messages, 16, aggregate);
        let mut merged = partials.remove(0);
        for partial in partials {
            for (keyword, users) in partial {
                match merged.entry(keyword) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(users);
                    }
                    std::collections::hash_map::Entry::Occupied(mut slot) => {
                        slot.get_mut().extend(users);
                    }
                }
            }
        }
        Self {
            index,
            keyword_users: merged,
            message_count: messages.len(),
        }
    }

    /// Distinct users that mentioned `keyword` in this quantum.
    pub fn user_count(&self, keyword: KeywordId) -> usize {
        self.keyword_users.get(&keyword).map_or(0, |s| s.len())
    }

    /// Keywords occurring in this quantum.
    pub fn keywords(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.keyword_users.keys().copied()
    }

    /// Serialises the record to a [`dengraph_json::Value`]: the quantum
    /// index, message count, and one `[keyword, [users…]]` pair per keyword
    /// (keywords and users sorted, so the encoding is canonical).
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        let mut keywords: Vec<KeywordId> = self.keywords().collect();
        keywords.sort_unstable();
        Value::obj([
            ("index", Value::from(self.index)),
            ("message_count", Value::from(self.message_count)),
            (
                "keywords",
                Value::arr(keywords.into_iter().map(|k| {
                    let mut users: Vec<UserId> = self.keyword_users[&k].iter().copied().collect();
                    users.sort_unstable();
                    Value::arr([
                        Value::from(k.0),
                        Value::arr(users.into_iter().map(|u| Value::from(u.0))),
                    ])
                })),
            ),
        ])
    }

    /// Reconstructs a record serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let mut keyword_users: FxHashMap<KeywordId, FxHashSet<UserId>> = FxHashMap::default();
        for pair in value.get("keywords")?.as_arr()? {
            let parts = pair.as_arr()?;
            if parts.len() != 2 {
                return Err(dengraph_json::JsonError {
                    message: format!("keyword pair has {} elements", parts.len()),
                    offset: 0,
                });
            }
            let keyword = KeywordId(parts[0].as_u32()?);
            let users: FxHashSet<UserId> = parts[1]
                .as_arr()?
                .iter()
                .map(|u| u.as_u64().map(UserId))
                .collect::<dengraph_json::Result<_>>()?;
            keyword_users.insert(keyword, users);
        }
        Ok(Self {
            index: value.get("index")?.as_u64()?,
            keyword_users,
            message_count: value.get("message_count")?.as_usize()?,
        })
    }
}

/// How the sliding window serves per-keyword aggregate reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowIndexMode {
    /// Rebuild every aggregate from scratch by walking all `w` quanta per
    /// read (the ablation baseline).
    Rebuild,
    /// Maintain a per-keyword incremental index updated in O(Δ) per slide
    /// (refcounted user multisets + merged per-quantum sub-sketches).
    #[default]
    Incremental,
}

/// Per-keyword incremental state over the current window.
#[derive(Debug, PartialEq)]
struct KeywordWindowEntry {
    /// user → number of window quanta in which the user mentioned the
    /// keyword.  The key set is exactly the window user set; its size the
    /// window user count.
    users: FxHashMap<UserId, u32>,
    /// One sub-sketch per window quantum containing the keyword, merged
    /// into a cached window sketch.
    sketches: EpochSketchStore,
    /// Most recent quantum index in which the keyword occurred.
    last_seen: u64,
}

/// The incremental window index: everything [`WindowState`] serves per
/// keyword, kept hot instead of recomputed.  An entry exists iff the
/// keyword occurs somewhere in the window, so staleness is a lookup miss.
#[derive(Debug, PartialEq)]
struct WindowIndex {
    sketch_size: usize,
    entries: FxHashMap<KeywordId, KeywordWindowEntry>,
}

impl WindowIndex {
    fn new(sketch_size: usize) -> Self {
        Self {
            sketch_size,
            entries: FxHashMap::default(),
        }
    }

    /// Folds one freshly pushed quantum into the index: O(Δ) over the
    /// record's (keyword, user) pairs.
    fn insert_record(&mut self, record: &QuantumRecord, hasher: &UserHasher) {
        for (&keyword, users) in &record.keyword_users {
            let entry = self
                .entries
                .entry(keyword)
                .or_insert_with(|| KeywordWindowEntry {
                    users: FxHashMap::default(),
                    sketches: EpochSketchStore::new(self.sketch_size),
                    last_seen: record.index,
                });
            let mut sub = MinHashSketch::new(self.sketch_size);
            for &u in users {
                *entry.users.entry(u).or_insert(0) += 1;
                sub.insert(hasher, u.raw());
            }
            entry.sketches.push(record.index, sub);
            entry.last_seen = record.index;
        }
    }

    /// Serialises the index: one `[keyword, entry]` pair per keyword, sorted
    /// by keyword for a canonical encoding.
    fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        let mut keywords: Vec<KeywordId> = self.entries.keys().copied().collect();
        keywords.sort_unstable();
        Value::obj([
            ("sketch_size", Value::from(self.sketch_size)),
            (
                "entries",
                Value::arr(keywords.into_iter().map(|k| {
                    let entry = &self.entries[&k];
                    let mut users: Vec<(UserId, u32)> =
                        entry.users.iter().map(|(u, c)| (*u, *c)).collect();
                    users.sort_unstable();
                    Value::arr([
                        Value::from(k.0),
                        Value::obj([
                            (
                                "users",
                                Value::arr(
                                    users.into_iter().map(|(u, c)| {
                                        Value::arr([Value::from(u.0), Value::from(c)])
                                    }),
                                ),
                            ),
                            ("sketches", entry.sketches.to_json()),
                            ("last_seen", Value::from(entry.last_seen)),
                        ]),
                    ])
                })),
            ),
        ])
    }

    /// Reconstructs an index serialised by [`Self::to_json`].
    fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let mut index = Self::new(value.get("sketch_size")?.as_usize()?);
        for pair in value.get("entries")?.as_arr()? {
            let parts = pair.as_arr()?;
            if parts.len() != 2 {
                return Err(dengraph_json::JsonError {
                    message: format!("index entry has {} elements", parts.len()),
                    offset: 0,
                });
            }
            let keyword = KeywordId(parts[0].as_u32()?);
            let entry = &parts[1];
            let mut users: FxHashMap<UserId, u32> = FxHashMap::default();
            for user in entry.get("users")?.as_arr()? {
                let uc = user.as_arr()?;
                if uc.len() != 2 {
                    return Err(dengraph_json::JsonError {
                        message: format!("user refcount pair has {} elements", uc.len()),
                        offset: 0,
                    });
                }
                users.insert(UserId(uc[0].as_u64()?), uc[1].as_u32()?);
            }
            index.entries.insert(
                keyword,
                KeywordWindowEntry {
                    users,
                    sketches: EpochSketchStore::from_json(entry.get("sketches")?)?,
                    last_seen: entry.get("last_seen")?.as_u64()?,
                },
            );
        }
        Ok(index)
    }

    /// Removes one evicted quantum's contributions: O(Δ) decrements plus a
    /// sub-sketch re-merge for each touched keyword.
    fn remove_record(&mut self, record: &QuantumRecord) {
        for (&keyword, users) in &record.keyword_users {
            let Some(entry) = self.entries.get_mut(&keyword) else {
                debug_assert!(false, "evicted keyword missing from window index");
                continue;
            };
            for u in users {
                if let Some(count) = entry.users.get_mut(u) {
                    *count -= 1;
                    if *count == 0 {
                        entry.users.remove(u);
                    }
                }
            }
            entry.sketches.evict_through(record.index);
            if entry.users.is_empty() {
                debug_assert!(entry.sketches.is_empty());
                self.entries.remove(&keyword);
            }
        }
    }
}

/// The sliding window over the last `w` quanta.
#[derive(Debug, PartialEq)]
pub struct WindowState {
    window: VecDeque<QuantumRecord>,
    capacity: usize,
    hasher: UserHasher,
    sketch_size: usize,
    index: Option<WindowIndex>,
}

impl WindowState {
    /// Creates an empty window of `capacity` quanta using sketches of `p`
    /// minima hashed with `hasher`, in the default (incremental) mode.
    pub fn new(capacity: usize, sketch_size: usize, hasher: UserHasher) -> Self {
        Self::with_mode(capacity, sketch_size, hasher, WindowIndexMode::default())
    }

    /// Creates an empty window with an explicit [`WindowIndexMode`].
    pub fn with_mode(
        capacity: usize,
        sketch_size: usize,
        hasher: UserHasher,
        mode: WindowIndexMode,
    ) -> Self {
        Self {
            window: VecDeque::with_capacity(capacity + 1),
            capacity: capacity.max(1),
            hasher,
            sketch_size,
            index: match mode {
                WindowIndexMode::Rebuild => None,
                WindowIndexMode::Incremental => Some(WindowIndex::new(sketch_size)),
            },
        }
    }

    /// The active index mode.
    pub fn mode(&self) -> WindowIndexMode {
        if self.index.is_some() {
            WindowIndexMode::Incremental
        } else {
            WindowIndexMode::Rebuild
        }
    }

    /// Pushes the record of a new quantum.  Returns the record that slid
    /// out of the window, if the window was already full.
    pub fn push(&mut self, record: QuantumRecord) -> Option<QuantumRecord> {
        if let Some(index) = &mut self.index {
            index.insert_record(&record, &self.hasher);
        }
        self.window.push_back(record);
        let evicted = if self.window.len() > self.capacity {
            self.window.pop_front()
        } else {
            None
        };
        if let (Some(index), Some(old)) = (&mut self.index, &evicted) {
            index.remove_record(old);
        }
        evicted
    }

    /// Number of quanta currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// The window capacity in quanta (the configured `w`, at least 1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sketch size `p` used for per-keyword window sketches.
    pub fn sketch_size(&self) -> usize {
        self.sketch_size
    }

    /// Returns `true` when no quantum has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The most recent quantum record.
    pub fn current(&self) -> Option<&QuantumRecord> {
        self.window.back()
    }

    /// Index of the most recent quantum.
    pub fn current_index(&self) -> Option<u64> {
        self.current().map(|r| r.index)
    }

    /// Distinct users that mentioned `keyword` anywhere in the window.
    pub fn window_user_set(&self, keyword: KeywordId) -> FxHashSet<UserId> {
        if let Some(index) = &self.index {
            return index
                .entries
                .get(&keyword)
                .map(|e| e.users.keys().copied().collect())
                .unwrap_or_default();
        }
        let mut users = FxHashSet::default();
        for record in &self.window {
            if let Some(s) = record.keyword_users.get(&keyword) {
                users.extend(s.iter().copied());
            }
        }
        users
    }

    /// Number of distinct users that mentioned `keyword` in the window —
    /// the node weight `w_i` of the ranking function.
    pub fn window_user_count(&self, keyword: KeywordId) -> usize {
        if let Some(index) = &self.index {
            return index.entries.get(&keyword).map_or(0, |e| e.users.len());
        }
        self.window_user_set(keyword).len()
    }

    /// The min-hash sketch of `keyword`'s window user set.
    pub fn window_sketch(&self, keyword: KeywordId) -> MinHashSketch {
        if let Some(index) = &self.index {
            return index
                .entries
                .get(&keyword)
                .map(|e| e.sketches.merged().clone())
                .unwrap_or_else(|| MinHashSketch::new(self.sketch_size));
        }
        let mut sketch = MinHashSketch::new(self.sketch_size);
        for record in &self.window {
            if let Some(users) = record.keyword_users.get(&keyword) {
                for u in users {
                    sketch.insert(&self.hasher, u.raw());
                }
            }
        }
        sketch
    }

    /// Builds the window sketch of every keyword in `keywords`, fanning out
    /// over keyword shards per `parallelism`.  Results come back in input
    /// order and are identical to calling [`Self::window_sketch`] per key.
    pub fn window_sketches(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<MinHashSketch> {
        if self.index.is_some() {
            // Cached-sketch clones; still sharded so huge candidate sets
            // fan out, but each shard item is O(p) instead of O(w · Δ).
            return par_map(parallelism, keywords, |&keyword| {
                self.window_sketch(keyword)
            });
        }
        dengraph_minhash::build_sketches(
            parallelism,
            self.sketch_size,
            &self.hasher,
            keywords,
            |&keyword, hasher, sketch| {
                for record in &self.window {
                    if let Some(users) = record.keyword_users.get(&keyword) {
                        for u in users {
                            sketch.insert(hasher, u.raw());
                        }
                    }
                }
            },
        )
    }

    /// Builds the exact window user set of every keyword in `keywords`,
    /// fanning out over keyword shards per `parallelism`.
    pub fn window_user_sets(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<FxHashSet<UserId>> {
        par_map(parallelism, keywords, |&keyword| {
            self.window_user_set(keyword)
        })
    }

    /// Computes [`Self::window_user_count`] for every keyword in
    /// `keywords`, fanning out over keyword shards per `parallelism`.
    pub fn window_user_counts(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<usize> {
        par_map(parallelism, keywords, |&keyword| {
            self.window_user_count(keyword)
        })
    }

    /// Exact Jaccard edge correlation of two keywords over the window.
    pub fn exact_edge_correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        dengraph_minhash::exact_jaccard(&self.window_user_set(a), &self.window_user_set(b))
    }

    /// Min-hash–estimated edge correlation of two keywords over the window.
    /// Returns 0.0 when the sketches share no minimum (the paper's edge
    /// admission gate).
    pub fn estimated_edge_correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        let sa = self.window_sketch(a);
        let sb = self.window_sketch(b);
        if !sa.shares_minimum(&sb) {
            return 0.0;
        }
        sa.estimate_jaccard(&sb)
    }

    /// The most recent quantum index in which `keyword` occurred, if any.
    pub fn last_seen(&self, keyword: KeywordId) -> Option<u64> {
        if let Some(index) = &self.index {
            // The recency mark can only outlive its record if every record
            // containing the keyword was evicted — in which case the entry
            // itself is gone.  So the mark is always in-window.
            return index.entries.get(&keyword).map(|e| e.last_seen);
        }
        self.window
            .iter()
            .rev()
            .find(|r| r.keyword_users.contains_key(&keyword))
            .map(|r| r.index)
    }

    /// Returns `true` when `keyword` has not occurred in any quantum of the
    /// current window (the stale-removal test of Section 3.1).
    pub fn is_stale(&self, keyword: KeywordId) -> bool {
        self.last_seen(keyword).is_none()
    }

    /// Every keyword occurring anywhere in the window.
    pub fn keywords_in_window(&self) -> FxHashSet<KeywordId> {
        if let Some(index) = &self.index {
            return index.entries.keys().copied().collect();
        }
        let mut all = FxHashSet::default();
        for record in &self.window {
            all.extend(record.keywords());
        }
        all
    }

    /// Total number of messages currently inside the window.
    pub fn window_message_count(&self) -> usize {
        self.window.iter().map(|r| r.message_count).sum()
    }

    /// Serialises the window — capacity, sketch parameters, hasher seed,
    /// the retained quantum records (oldest first) and, under
    /// [`WindowIndexMode::Incremental`], the live per-keyword index with
    /// its sub-sketch stores.
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("capacity", Value::from(self.capacity)),
            ("sketch_size", Value::from(self.sketch_size)),
            ("seed", Value::from(self.hasher.seed())),
            (
                "mode",
                Value::str(match self.mode() {
                    WindowIndexMode::Rebuild => "rebuild",
                    WindowIndexMode::Incremental => "incremental",
                }),
            ),
            (
                "records",
                Value::arr(self.window.iter().map(|r| r.to_json())),
            ),
            (
                "index",
                match &self.index {
                    Some(index) => index.to_json(),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Reconstructs a window serialised by [`Self::to_json`].  The restored
    /// window serves bit-identical reads to the original: records, index
    /// multisets, cached sketches and recency marks all round-trip exactly.
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let mode = match value.get("mode")?.as_str()? {
            "rebuild" => WindowIndexMode::Rebuild,
            "incremental" => WindowIndexMode::Incremental,
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown window mode '{other}'"),
                    offset: 0,
                })
            }
        };
        let index = match (mode, value.get_opt("index")?) {
            (WindowIndexMode::Rebuild, _) => None,
            (WindowIndexMode::Incremental, Some(v)) => Some(WindowIndex::from_json(v)?),
            (WindowIndexMode::Incremental, None) => {
                return Err(dengraph_json::JsonError {
                    message: "incremental window is missing its index".into(),
                    offset: 0,
                })
            }
        };
        let window: VecDeque<QuantumRecord> = value
            .get("records")?
            .as_arr()?
            .iter()
            .map(QuantumRecord::from_json)
            .collect::<dengraph_json::Result<_>>()?;
        Ok(Self {
            window,
            // No silent clamping: a zero capacity can only come from a
            // corrupt document (construction enforces ≥ 1), and the
            // detector-level decoder additionally cross-checks the value
            // against the validated configuration.
            capacity: match value.get("capacity")?.as_usize()? {
                0 => {
                    return Err(dengraph_json::JsonError {
                        message: "window capacity must be at least 1".into(),
                        offset: 0,
                    })
                }
                c => c,
            },
            hasher: UserHasher::new(value.get("seed")?.as_u64()?),
            sketch_size: value.get("sketch_size")?.as_usize()?,
            index,
        })
    }
}

/// The two-state (low/high) automaton state of a keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeywordState {
    /// Not bursty.
    #[default]
    Low,
    /// Bursty in some recent quantum (member of the AKG).
    High,
}

/// Tracks the low/high state of every keyword ever seen.
///
/// Only high-state keywords carry information (low is the default), so the
/// machine stores exactly the set of High keywords: membership is the
/// state, and the set size is the high count.
#[derive(Debug, Default, PartialEq)]
pub struct KeywordStateMachine {
    high: FxHashSet<KeywordId>,
}

impl KeywordStateMachine {
    /// Creates an empty state machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of a keyword (Low if never seen).
    pub fn state(&self, keyword: KeywordId) -> KeywordState {
        if self.high.contains(&keyword) {
            KeywordState::High
        } else {
            KeywordState::Low
        }
    }

    /// Applies the burstiness test for one keyword in the current quantum:
    /// a keyword moves to the high state when at least `sigma` distinct
    /// users mentioned it this quantum.  Returns `(previous, new)` states.
    pub fn observe(
        &mut self,
        keyword: KeywordId,
        users_this_quantum: usize,
        sigma: u32,
    ) -> (KeywordState, KeywordState) {
        let prev = self.state(keyword);
        let new = if users_this_quantum >= sigma as usize {
            KeywordState::High
        } else {
            prev
        };
        if prev == KeywordState::Low && new == KeywordState::High {
            self.high.insert(keyword);
        }
        (prev, new)
    }

    /// Forces a keyword back to the low state (used when it is removed from
    /// the AKG by stale removal or lazy update).
    pub fn demote(&mut self, keyword: KeywordId) {
        self.high.remove(&keyword);
    }

    /// Number of keywords currently in the high state.
    pub fn high_count(&self) -> usize {
        self.high.len()
    }

    /// Serialises the machine as the sorted list of High keywords.
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        let mut high: Vec<KeywordId> = self.high.iter().copied().collect();
        high.sort_unstable();
        Value::obj([(
            "high",
            Value::arr(high.into_iter().map(|k| Value::from(k.0))),
        )])
    }

    /// Reconstructs a machine serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            high: value
                .get("high")?
                .as_arr()?
                .iter()
                .map(|k| k.as_u32().map(KeywordId))
                .collect::<dengraph_json::Result<_>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(user: u64, time: u64, kws: &[u32]) -> Message {
        Message::new(
            UserId(user),
            time,
            kws.iter().map(|&k| KeywordId(k)).collect(),
        )
    }

    fn k(i: u32) -> KeywordId {
        KeywordId(i)
    }

    #[test]
    fn quantum_record_counts_distinct_users() {
        let record = QuantumRecord::from_messages(
            0,
            &[
                msg(1, 0, &[10, 11]),
                msg(1, 1, &[10]),
                msg(2, 2, &[10]),
                msg(3, 3, &[11]),
            ],
        );
        assert_eq!(record.user_count(k(10)), 2);
        assert_eq!(record.user_count(k(11)), 2);
        assert_eq!(record.user_count(k(99)), 0);
        assert_eq!(record.message_count, 4);
    }

    fn window(capacity: usize) -> WindowState {
        WindowState::new(capacity, 4, UserHasher::new(7))
    }

    #[test]
    fn window_slides_and_evicts() {
        let mut w = window(2);
        assert!(w
            .push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]))
            .is_none());
        assert!(w
            .push(QuantumRecord::from_messages(1, &[msg(2, 1, &[10])]))
            .is_none());
        let evicted = w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert_eq!(evicted.unwrap().index, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.current_index(), Some(2));
    }

    #[test]
    fn window_user_counts_union_across_quanta() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[msg(1, 0, &[10]), msg(2, 1, &[10])],
        ));
        w.push(QuantumRecord::from_messages(
            1,
            &[msg(2, 2, &[10]), msg(3, 3, &[10])],
        ));
        assert_eq!(w.window_user_count(k(10)), 3); // users 1, 2, 3
        assert_eq!(w.window_user_count(k(99)), 0);
    }

    #[test]
    fn stale_detection_after_eviction() {
        let mut w = window(2);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        assert!(!w.is_stale(k(10)));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[11])]));
        w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert!(w.is_stale(k(10)));
        assert_eq!(w.last_seen(k(11)), Some(2));
    }

    #[test]
    fn exact_and_estimated_correlation_agree_on_identical_user_sets() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[
                msg(1, 0, &[10, 11]),
                msg(2, 1, &[10, 11]),
                msg(3, 2, &[10, 11]),
            ],
        ));
        assert!((w.exact_edge_correlation(k(10), k(11)) - 1.0).abs() < f64::EPSILON);
        assert!((w.estimated_edge_correlation(k(10), k(11)) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn disjoint_user_sets_have_zero_correlation() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[msg(1, 0, &[10]), msg(2, 1, &[11])],
        ));
        assert_eq!(w.exact_edge_correlation(k(10), k(11)), 0.0);
        assert_eq!(w.estimated_edge_correlation(k(10), k(11)), 0.0);
    }

    #[test]
    fn keywords_in_window_unions_quanta() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[11])]));
        let kws = w.keywords_in_window();
        assert!(kws.contains(&k(10)) && kws.contains(&k(11)));
        assert_eq!(w.window_message_count(), 2);
    }

    /// Builds the same random-ish record stream into one window per mode
    /// and checks every per-keyword read agrees bit-for-bit.
    fn assert_modes_agree(capacity: usize, quanta: &[Vec<Message>]) {
        let hasher = || UserHasher::new(0xFACE);
        let mut rebuild = WindowState::with_mode(capacity, 4, hasher(), WindowIndexMode::Rebuild);
        let mut incremental =
            WindowState::with_mode(capacity, 4, hasher(), WindowIndexMode::Incremental);
        for (q, msgs) in quanta.iter().enumerate() {
            let record = QuantumRecord::from_messages(q as u64, msgs);
            let ev_a = rebuild.push(record.clone());
            let ev_b = incremental.push(record);
            assert_eq!(ev_a.map(|r| r.index), ev_b.map(|r| r.index));
            let mut keywords: Vec<KeywordId> = rebuild.keywords_in_window().into_iter().collect();
            keywords.push(k(999_999)); // a keyword never in the window
            keywords.sort_unstable();
            assert_eq!(keywords.len() - 1, incremental.keywords_in_window().len());
            for &kw in &keywords {
                assert_eq!(
                    rebuild.window_user_set(kw),
                    incremental.window_user_set(kw),
                    "user set diverged for {kw:?} at quantum {q}"
                );
                assert_eq!(
                    rebuild.window_user_count(kw),
                    incremental.window_user_count(kw)
                );
                assert_eq!(
                    rebuild.window_sketch(kw),
                    incremental.window_sketch(kw),
                    "sketch diverged for {kw:?} at quantum {q}"
                );
                assert_eq!(rebuild.last_seen(kw), incremental.last_seen(kw));
                assert_eq!(rebuild.is_stale(kw), incremental.is_stale(kw));
            }
        }
    }

    #[test]
    fn incremental_index_matches_rebuild_reads() {
        // A keyword-heavy stream with overlap across quanta, re-bursts,
        // an empty quantum and full eviction cycles.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut quanta: Vec<Vec<Message>> = Vec::new();
        for q in 0..24u64 {
            if q % 7 == 6 {
                quanta.push(Vec::new()); // empty quantum: pure slide
                continue;
            }
            let msgs: Vec<Message> = (0..12)
                .map(|m| {
                    let user = next() % 9;
                    let kws: Vec<u32> = (0..1 + next() % 3).map(|_| (next() % 7) as u32).collect();
                    msg(user, q * 100 + m, &kws)
                })
                .collect();
            quanta.push(msgs);
        }
        for capacity in [1, 2, 5] {
            assert_modes_agree(capacity, &quanta);
        }
    }

    #[test]
    fn both_modes_report_their_mode() {
        let w = WindowState::new(2, 4, UserHasher::new(1));
        assert_eq!(w.mode(), WindowIndexMode::Incremental);
        let w = WindowState::with_mode(2, 4, UserHasher::new(1), WindowIndexMode::Rebuild);
        assert_eq!(w.mode(), WindowIndexMode::Rebuild);
    }

    #[test]
    fn rebuild_mode_behaves_like_incremental_on_the_basics() {
        let mut w = WindowState::with_mode(2, 4, UserHasher::new(7), WindowIndexMode::Rebuild);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[10])]));
        assert_eq!(w.window_user_count(k(10)), 2);
        w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert_eq!(w.window_user_count(k(10)), 1);
        assert_eq!(w.last_seen(k(10)), Some(1));
    }

    #[test]
    fn state_machine_promotes_on_sigma_users() {
        let mut sm = KeywordStateMachine::new();
        assert_eq!(sm.state(k(1)), KeywordState::Low);
        let (prev, new) = sm.observe(k(1), 3, 4);
        assert_eq!((prev, new), (KeywordState::Low, KeywordState::Low));
        let (prev, new) = sm.observe(k(1), 4, 4);
        assert_eq!((prev, new), (KeywordState::Low, KeywordState::High));
        assert_eq!(sm.high_count(), 1);
    }

    #[test]
    fn state_machine_hysteresis_keeps_high_state() {
        let mut sm = KeywordStateMachine::new();
        sm.observe(k(1), 10, 4);
        // Next quantum it is no longer bursty but stays High (hysteresis);
        // demotion is an explicit decision of the AKG maintenance.
        let (prev, new) = sm.observe(k(1), 0, 4);
        assert_eq!((prev, new), (KeywordState::High, KeywordState::High));
        sm.demote(k(1));
        assert_eq!(sm.state(k(1)), KeywordState::Low);
    }
}
