//! Sliding-window keyword state: the two-state automaton and per-keyword
//! user-id bookkeeping of Section 3.1 / 3.2.
//!
//! For every keyword the detector needs to know, over the current window of
//! `w` quanta:
//!
//! * how many distinct users mentioned it in the **current** quantum (the
//!   burstiness test against the high-state threshold σ),
//! * the min-hash sketch of the users who mentioned it anywhere in the
//!   window (for edge-correlation estimation),
//! * the exact user-id set over the window (for exact-EC ablation and for
//!   cluster support in the ranking function), and
//! * the most recent quantum in which it occurred (for stale removal).
//!
//! Each quantum contributes one immutable [`QuantumRecord`]; sliding the
//! window simply drops the oldest record.  How the per-keyword aggregates
//! are produced from those records is governed by [`WindowIndexMode`]:
//!
//! * [`WindowIndexMode::Rebuild`] — every read walks all `w` records (the
//!   naive cache-build cost the paper's incremental AKG design avoids;
//!   kept as the ablation baseline),
//! * [`WindowIndexMode::Incremental`] — a `WindowIndex` keeps, per
//!   keyword, a refcounted window user multiset, per-quantum sub-sketches
//!   merged into a cached window sketch, and a recency mark, all updated
//!   in O(Δ) as the window slides, so reads are O(1) / O(set size).
//!
//! Both modes are **bit-identical**: same sketches, same counts, same
//! user sets (`tests/window_index_equivalence.rs` gates this).
//!
//! ## Dense-id layout
//!
//! Keywords are interner-dense `u32` ids (see `dengraph_text`), so the hot
//! structures here avoid hashing entirely:
//!
//! * a [`QuantumRecord`] is two flat arrays — a sorted user column plus one
//!   `(keyword, start, end)` span per keyword — built from a single sorted
//!   `(keyword, user)` pair list, and its backing storage is recycled from
//!   the record that slid out of the window;
//! * the incremental `WindowIndex` is a `Vec` indexed directly by keyword
//!   id (a lookup is one bounds check), with evicted per-quantum
//!   sub-sketch buffers pooled and reused, so steady-state sliding
//!   performs no per-keyword allocation;
//! * [`KeywordStateMachine`] is a bitset over keyword ids.

use std::collections::VecDeque;

use dengraph_graph::fxhash::FxHashSet;
use dengraph_minhash::{kernel, EpochSketchStore, MinHashSketch, SketchLanes, UserHasher};
use dengraph_parallel::{par_chunks, par_map, Parallelism};
use dengraph_stream::{Message, UserId};
use dengraph_text::KeywordId;

/// One per-keyword user span of a [`QuantumRecord`]: the keyword plus the
/// `[start, end)` range of its users in the record's flat user column.
pub(crate) type KeywordSpan = (KeywordId, u32, u32);

/// Recyclable backing storage of a [`QuantumRecord`] (the flat user column
/// and the keyword span table).
pub(crate) type RecordStorage = (Vec<UserId>, Vec<KeywordSpan>);

/// Upper bound on keyword ids accepted by the checkpoint *decoders* of
/// the id-indexed structures (window index slots, state-machine bits).
/// Both allocate proportionally to the largest id, so a corrupted id near
/// `u32::MAX` would otherwise force a multi-gigabyte resize before any
/// other validation could reject the document.  The bound caps the
/// decode-time allocation at roughly half a gigabyte of index slots —
/// the same order the *live* dense-id layout would occupy for such a
/// vocabulary, so no state a deployment can actually run is rejected.
/// Raise this constant together with the deployment's memory envelope if
/// interned vocabularies ever approach four million keywords.
const MAX_DECODED_KEYWORD_INDEX: usize = 1 << 22;

fn check_keyword_index(idx: usize, offset: usize) -> dengraph_json::Result<()> {
    if idx > MAX_DECODED_KEYWORD_INDEX {
        return Err(dengraph_json::JsonError {
            message: format!(
                "keyword id {idx} exceeds the decoder bound {MAX_DECODED_KEYWORD_INDEX}"
            ),
            offset,
        });
    }
    Ok(())
}

/// Per-quantum aggregation of the stream.
///
/// Stored as two flat arrays instead of a map-of-sets: `users` holds the
/// distinct `(keyword, user)` pairs of the quantum sorted by `(keyword,
/// user)`, and `spans` holds one `(keyword, start, end)` entry per distinct
/// keyword (sorted by keyword).  Lookups are binary searches over the span
/// table; iteration is cache-linear and canonically ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumRecord {
    /// Quantum index.
    pub index: u64,
    /// Number of messages aggregated into this record.
    pub message_count: usize,
    /// Flat user column: for span `(k, s, e)`, `users[s..e]` are the sorted
    /// distinct users that mentioned `k` this quantum.
    users: Vec<UserId>,
    /// One span per keyword, sorted by keyword id.
    spans: Vec<KeywordSpan>,
}

impl QuantumRecord {
    /// Builds a record from the messages of one quantum.
    pub fn from_messages(index: u64, messages: &[Message]) -> Self {
        Self::from_messages_with(index, messages, Parallelism::Serial)
    }

    /// Builds a record, fanning the pair collection out over contiguous
    /// message chunks per `parallelism`.  The result is **identical** to
    /// the serial path's: the pair list is sorted and de-duplicated into a
    /// canonical form regardless of chunking.
    pub fn from_messages_with(index: u64, messages: &[Message], parallelism: Parallelism) -> Self {
        let mut pairs = Vec::new();
        Self::from_messages_into(
            index,
            messages,
            parallelism,
            &mut pairs,
            &mut PairSortScratch::default(),
            (Vec::new(), Vec::new()),
        )
    }

    /// Scratch-reusing builder: `pairs` is a staging buffer (cleared before
    /// use) and `storage` is recycled backing storage, typically taken from
    /// the record that just slid out of the window — steady-state quanta
    /// then build their record without allocating.
    pub(crate) fn from_messages_into(
        index: u64,
        messages: &[Message],
        parallelism: Parallelism,
        pairs: &mut Vec<(KeywordId, UserId)>,
        sort: &mut PairSortScratch,
        storage: RecordStorage,
    ) -> Self {
        pairs.clear();
        if parallelism.is_parallel() {
            // One pair list per chunk (par_chunks falls back to a single
            // serial chunk for small quanta), concatenated in chunk order;
            // the sort below canonicalises away the chunk structure.
            let chunks = par_chunks(parallelism, messages, 16, |msgs| {
                let mut chunk_pairs: Vec<(KeywordId, UserId)> = Vec::with_capacity(msgs.len() * 2);
                for m in msgs {
                    for &k in &m.keywords {
                        chunk_pairs.push((k, m.user));
                    }
                }
                chunk_pairs
            });
            for chunk in chunks {
                pairs.extend(chunk);
            }
        } else {
            for m in messages {
                for &k in &m.keywords {
                    pairs.push((k, m.user));
                }
            }
        }
        sort_dedup_pairs(pairs, sort);
        let (users, spans) = fold_pairs(pairs, storage);
        Self {
            index,
            message_count: messages.len(),
            users,
            spans,
        }
    }

    /// Consumes the record, returning its backing storage for reuse.
    pub(crate) fn into_storage(self) -> RecordStorage {
        (self.users, self.spans)
    }

    /// The distinct users that mentioned `keyword` in this quantum, sorted
    /// ascending (empty when the keyword did not occur).
    pub fn users_of(&self, keyword: KeywordId) -> &[UserId] {
        match self.spans.binary_search_by_key(&keyword, |&(k, _, _)| k) {
            Ok(i) => {
                let (_, s, e) = self.spans[i];
                &self.users[s as usize..e as usize]
            }
            Err(_) => &[],
        }
    }

    /// Distinct users that mentioned `keyword` in this quantum.
    pub fn user_count(&self, keyword: KeywordId) -> usize {
        self.users_of(keyword).len()
    }

    /// Keywords occurring in this quantum, ascending by id.
    pub fn keywords(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.spans.iter().map(|&(k, _, _)| k)
    }

    /// Number of distinct keywords in this quantum.
    pub fn keyword_count(&self) -> usize {
        self.spans.len()
    }

    /// Iterates `(keyword, sorted users)` pairs, ascending by keyword.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &[UserId])> + '_ {
        self.spans
            .iter()
            .map(move |&(k, s, e)| (k, &self.users[s as usize..e as usize]))
    }

    /// Serialises the record to a [`dengraph_json::Value`]: the quantum
    /// index, message count, and one `[keyword, [users…]]` pair per keyword
    /// (keywords and users sorted, so the encoding is canonical).
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("index", Value::from(self.index)),
            ("message_count", Value::from(self.message_count)),
            (
                "keywords",
                Value::arr(self.iter().map(|(k, users)| {
                    Value::arr([
                        Value::from(k.0),
                        Value::arr(users.iter().map(|u| Value::from(u.0))),
                    ])
                })),
            ),
        ])
    }

    /// Reconstructs a record serialised by [`Self::to_json`].  The input
    /// need not be canonically ordered; the decoder re-sorts.
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let mut pairs: Vec<(KeywordId, UserId)> = Vec::new();
        for pair in value.get("keywords")?.as_arr()? {
            let parts = pair.as_arr()?;
            if parts.len() != 2 {
                return Err(dengraph_json::JsonError {
                    message: format!("keyword pair has {} elements", parts.len()),
                    offset: 0,
                });
            }
            let keyword = KeywordId(parts[0].as_u32()?);
            for u in parts[1].as_arr()? {
                pairs.push((keyword, UserId(u.as_u64()?)));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let (users, spans) = fold_pairs(&pairs, (Vec::new(), Vec::new()));
        Ok(Self {
            index: value.get("index")?.as_u64()?,
            message_count: value.get("message_count")?.as_usize()?,
            users,
            spans,
        })
    }

    /// Appends the compact binary encoding — the record's flat layout
    /// written almost verbatim: the delta-encoded keyword column of the
    /// span table, then each span's sorted user run as a delta column.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.u64(self.index);
        w.usize(self.message_count);
        w.delta_u32s(self.spans.iter().map(|&(k, _, _)| k.0));
        for &(_, s, e) in &self.spans {
            // UserId is a transparent u64 wrapper; encode the raw column.
            w.usize((e - s) as usize);
            let mut prev = 0u64;
            for (i, u) in self.users[s as usize..e as usize].iter().enumerate() {
                w.u64(if i == 0 { u.0 } else { u.0 - prev });
                prev = u.0;
            }
        }
    }

    /// Reconstructs a record encoded by [`Self::to_bin`].  Unlike the JSON
    /// decoder, the binary decoder accepts only the canonical form —
    /// strictly ascending keywords and strictly ascending users per span —
    /// and rejects anything else as corrupt.
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let corrupt = |r: &dengraph_json::BinReader<'_>, message: &str| dengraph_json::JsonError {
            message: message.into(),
            offset: r.pos(),
        };
        let index = r.u64()?;
        let message_count = r.usize()?;
        let keywords = r.delta_u32s()?;
        if keywords.windows(2).any(|p| p[0] >= p[1]) {
            return Err(corrupt(r, "record keywords must be strictly ascending"));
        }
        let mut users: Vec<UserId> = Vec::new();
        let mut spans: Vec<KeywordSpan> = Vec::with_capacity(keywords.len());
        for k in keywords {
            let run = r.seq_len(1)?;
            if run == 0 {
                return Err(corrupt(r, "record span has no users"));
            }
            let start = users.len() as u32;
            let mut prev = 0u64;
            for i in 0..run {
                let d = r.u64()?;
                let u = if i == 0 {
                    d
                } else {
                    match (d, prev.checked_add(d)) {
                        (1.., Some(u)) => u,
                        _ => return Err(corrupt(r, "span users must be strictly ascending")),
                    }
                };
                prev = u;
                users.push(UserId(u));
            }
            spans.push((KeywordId(k), start, start + run as u32));
        }
        Ok(Self {
            index,
            message_count,
            users,
            spans,
        })
    }
}

impl dengraph_json::Encode for QuantumRecord {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for QuantumRecord {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// Reusable scratch for [`sort_dedup_pairs`]: the packed `u64` key column
/// and the radix sort's ping-pong buffer.  Lives in the detector's
/// [`crate::scratch::ScratchArena`] so steady-state quanta sort without
/// allocating.
#[derive(Debug, Default)]
pub(crate) struct PairSortScratch {
    keys: Vec<u64>,
    tmp: Vec<u64>,
}

/// Canonicalises a staged pair list: ascending `(keyword, user)` order with
/// duplicates removed.
///
/// Keyword ids are `u32` and interned user ids are dense, so in the steady
/// state every pair packs losslessly into one `u64`
/// (`keyword << 32 | user`) whose natural order equals the tuple order; the
/// packed column goes through the LSD radix sort, which beats the
/// comparison sort on the large duplicate-heavy pair lists the window stage
/// produces.  Any user id with high bits set (possible for synthetic raw
/// ids) falls back to the comparison sort — both paths produce the same
/// canonical list.
fn sort_dedup_pairs(pairs: &mut Vec<(KeywordId, UserId)>, scratch: &mut PairSortScratch) {
    let mut user_bits = 0u64;
    for &(_, u) in pairs.iter() {
        user_bits |= u.0;
    }
    if user_bits >> 32 != 0 {
        pairs.sort_unstable();
        pairs.dedup();
        return;
    }
    scratch.keys.clear();
    scratch
        .keys
        .extend(pairs.iter().map(|&(k, u)| (u64::from(k.0) << 32) | u.0));
    kernel::radix_sort_u64(&mut scratch.keys, &mut scratch.tmp);
    scratch.keys.dedup();
    pairs.clear();
    pairs.extend(
        scratch
            .keys
            .iter()
            .map(|&key| (KeywordId((key >> 32) as u32), UserId(key & 0xFFFF_FFFF))),
    );
}

/// Folds a sorted, de-duplicated `(keyword, user)` pair list into the
/// record's flat layout — the single owner of the span-construction
/// invariant (contiguous `[start, end)` ranges in pair order) for both the
/// message builder and the JSON decoder.
fn fold_pairs(pairs: &[(KeywordId, UserId)], storage: RecordStorage) -> RecordStorage {
    let (mut users, mut spans) = storage;
    users.clear();
    spans.clear();
    for &(k, u) in pairs {
        match spans.last_mut() {
            Some((last, _, end)) if *last == k => *end += 1,
            _ => {
                let start = users.len() as u32;
                spans.push((k, start, start + 1));
            }
        }
        users.push(u);
    }
    (users, spans)
}

/// How the sliding window serves per-keyword aggregate reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowIndexMode {
    /// Rebuild every aggregate from scratch by walking all `w` quanta per
    /// read (the ablation baseline).
    Rebuild,
    /// Maintain a per-keyword incremental index updated in O(Δ) per slide
    /// (refcounted user multisets + merged per-quantum sub-sketches).
    #[default]
    Incremental,
}

/// Per-keyword incremental state over the current window.
#[derive(Debug, PartialEq)]
struct KeywordWindowEntry {
    /// `(user, number of window quanta in which the user mentioned the
    /// keyword)`, sorted by user.  The user column is exactly the window
    /// user set; its length the window user count.  A record's per-keyword
    /// users arrive sorted, so refcount maintenance is a linear merge of
    /// two sorted runs — no hashing.
    users: Vec<(UserId, u32)>,
    /// One sub-sketch per window quantum containing the keyword, merged
    /// into a cached window sketch.
    sketches: EpochSketchStore,
    /// Most recent quantum index in which the keyword occurred.
    last_seen: u64,
}

/// Folds a sorted run of added users into a sorted `(user, refcount)`
/// column: present users are incremented, absent ones inserted with a
/// count of one.  The added run is tiny compared to the column (a keyword
/// gains a handful of users per quantum but accumulates hundreds over a
/// window), so each addition is a narrowing binary search plus, rarely,
/// one insertion — not a full column rewrite.
fn merge_refcounts(counts: &mut Vec<(UserId, u32)>, added: &[UserId]) {
    // Successive additions are ascending, so the search window shrinks.
    let mut from = 0usize;
    for &u in added {
        match counts[from..].binary_search_by_key(&u, |&(cu, _)| cu) {
            Ok(pos) => {
                counts[from + pos].1 += 1;
                from += pos + 1;
            }
            Err(pos) => {
                counts.insert(from + pos, (u, 1));
                from += pos + 1;
            }
        }
    }
}

/// The incremental window index: everything [`WindowState`] serves per
/// keyword, kept hot instead of recomputed.
///
/// Entries live in a `Vec` indexed **directly by keyword id** (ids are
/// interner-dense), so a lookup is a bounds check instead of a hash probe.
/// A slot is `Some` iff the keyword occurs somewhere in the window, so
/// staleness is a slot miss.  Evicted sub-sketch buffers and emptied
/// entries are pooled and recycled, keeping steady-state sliding
/// allocation-free.
#[derive(Debug)]
struct WindowIndex {
    sketch_size: usize,
    /// A keyword is *materialized* (gets an incrementally maintained
    /// entry) once a single quantum brings it at least this many distinct
    /// users — the detector wires this to the burstiness threshold σ,
    /// because only keywords that were bursty at least once are ever read
    /// through the index (AKG members, candidate pairs, cluster support).
    /// The long tail of sub-threshold keywords skips all per-quantum
    /// bookkeeping; reads of non-materialized keywords fall back to the
    /// (bit-identical) record walk.  1 materializes everything.
    materialize_threshold: usize,
    /// Slot `k` holds the entry of `KeywordId(k)`, if live.
    entries: Vec<Option<KeywordWindowEntry>>,
    /// Number of live entries.
    live: usize,
    /// Recycled sub-sketch buffers (scratch — excluded from equality and
    /// serialisation).
    sketch_pool: Vec<MinHashSketch>,
    /// Recycled entries (scratch — excluded from equality/serialisation).
    entry_pool: Vec<KeywordWindowEntry>,
}

/// Equality compares the live entries only; pool contents and trailing
/// empty slots (artifacts of eviction history) are ignored, so a restored
/// index compares equal to the original.
impl PartialEq for WindowIndex {
    fn eq(&self, other: &Self) -> bool {
        if self.sketch_size != other.sketch_size
            || self.materialize_threshold != other.materialize_threshold
            || self.live != other.live
        {
            return false;
        }
        let len = self.entries.len().max(other.entries.len());
        (0..len).all(|i| {
            let a = self.entries.get(i).and_then(Option::as_ref);
            let b = other.entries.get(i).and_then(Option::as_ref);
            a == b
        })
    }
}

impl WindowIndex {
    fn new(sketch_size: usize) -> Self {
        Self {
            sketch_size,
            materialize_threshold: 1,
            entries: Vec::new(),
            live: 0,
            sketch_pool: Vec::new(),
            entry_pool: Vec::new(),
        }
    }

    /// The live entry of `keyword`, if any.
    #[inline]
    fn entry(&self, keyword: KeywordId) -> Option<&KeywordWindowEntry> {
        self.entries.get(keyword.index()).and_then(Option::as_ref)
    }

    /// Iterates `(keyword, entry)` pairs ascending by keyword id.
    fn live_entries(&self) -> impl Iterator<Item = (KeywordId, &KeywordWindowEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (KeywordId(i as u32), e)))
    }

    /// Folds one freshly pushed quantum into the index, reusing pooled
    /// buffers.  `past` holds the records already in the window (oldest
    /// first, the new record not yet appended): when a keyword crosses the
    /// materialization threshold for the first time, its entry is built
    /// retroactively from those records, bit-identical to an entry that
    /// had been maintained from the start (p-minima merging is
    /// order-independent and refcount merging is commutative).
    fn insert_record(
        &mut self,
        record: &QuantumRecord,
        hasher: &UserHasher,
        past: &VecDeque<QuantumRecord>,
        lanes: &mut SketchLanes,
    ) {
        let sketch_size = self.sketch_size;
        let threshold = self.materialize_threshold;
        let entries = &mut self.entries;
        let sketch_pool = &mut self.sketch_pool;
        let entry_pool = &mut self.entry_pool;
        let take_sub = |pool: &mut Vec<MinHashSketch>| match pool.pop() {
            Some(mut s) => {
                s.reset(sketch_size);
                s
            }
            None => MinHashSketch::new(sketch_size),
        };
        for (keyword, users) in record.iter() {
            let idx = keyword.index();
            let materialized = entries.get(idx).is_some_and(|slot| slot.is_some());
            if !materialized {
                if users.len() < threshold {
                    // Long-tail keyword: the detector will never read its
                    // window aggregates through the index; skip all
                    // bookkeeping (reads fall back to the record walk).
                    continue;
                }
                if idx >= entries.len() {
                    entries.resize_with(idx + 1, || None);
                }
                let mut entry = entry_pool.pop().unwrap_or_else(|| KeywordWindowEntry {
                    users: Vec::new(),
                    sketches: EpochSketchStore::new(sketch_size),
                    last_seen: record.index,
                });
                // Retroactive build over the records already in the window.
                for old in past {
                    let old_users = old.users_of(keyword);
                    if old_users.is_empty() {
                        continue;
                    }
                    let mut sub = take_sub(sketch_pool);
                    sub.insert_batch(hasher, old_users, |u| u.raw(), lanes);
                    merge_refcounts(&mut entry.users, old_users);
                    entry.sketches.push(old.index, sub);
                    entry.last_seen = old.index;
                }
                self.live += 1;
                entries[idx] = Some(entry);
            }
            let entry = entries[idx].as_mut().expect("entry just ensured");
            let mut sub = take_sub(sketch_pool);
            sub.insert_batch(hasher, users, |u| u.raw(), lanes);
            merge_refcounts(&mut entry.users, users);
            entry.sketches.push(record.index, sub);
            entry.last_seen = record.index;
        }
    }

    /// Removes one evicted quantum's contributions: O(Δ) decrements plus a
    /// sub-sketch re-merge for each touched keyword.  Evicted buffers go
    /// back to the pools.
    fn remove_record(&mut self, record: &QuantumRecord) {
        let entries = &mut self.entries;
        let sketch_pool = &mut self.sketch_pool;
        let entry_pool = &mut self.entry_pool;
        for (keyword, users) in record.iter() {
            // Non-materialized keywords have no entry to maintain.
            let Some(slot) = entries.get_mut(keyword.index()) else {
                continue;
            };
            let Some(entry) = slot.as_mut() else {
                continue;
            };
            // Like the insert path: the removed run is tiny relative to
            // the column, so decrement via narrowing binary searches and
            // remove only the refcounts that reach zero.
            let mut from = 0usize;
            for &u in users {
                match entry.users[from..].binary_search_by_key(&u, |&(cu, _)| cu) {
                    Ok(pos) => {
                        let at = from + pos;
                        entry.users[at].1 -= 1;
                        if entry.users[at].1 == 0 {
                            entry.users.remove(at);
                            from = at;
                        } else {
                            from = at + 1;
                        }
                    }
                    Err(pos) => {
                        debug_assert!(false, "evicted user missing from refcount column");
                        from += pos;
                    }
                }
            }
            entry
                .sketches
                .evict_through_with(record.index, |sub| sketch_pool.push(sub));
            if entry.users.is_empty() {
                debug_assert!(entry.sketches.is_empty());
                let mut dead = slot.take().expect("entry just matched");
                self.live -= 1;
                dead.users.clear();
                dead.sketches.clear_with(|sub| sketch_pool.push(sub));
                entry_pool.push(dead);
            }
        }
    }

    /// Serialises the index: one `[keyword, entry]` pair per keyword, sorted
    /// by keyword for a canonical encoding.
    fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("sketch_size", Value::from(self.sketch_size)),
            (
                "materialize_threshold",
                Value::from(self.materialize_threshold),
            ),
            (
                "entries",
                Value::arr(self.live_entries().map(|(k, entry)| {
                    Value::arr([
                        Value::from(k.0),
                        Value::obj([
                            (
                                // Already sorted by user — the canonical
                                // encoding falls out of the layout.
                                "users",
                                Value::arr(
                                    entry.users.iter().map(|&(u, c)| {
                                        Value::arr([Value::from(u.0), Value::from(c)])
                                    }),
                                ),
                            ),
                            ("sketches", entry.sketches.to_json()),
                            ("last_seen", Value::from(entry.last_seen)),
                        ]),
                    ])
                })),
            ),
        ])
    }

    /// Reconstructs an index serialised by [`Self::to_json`].
    fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let mut index = Self::new(value.get("sketch_size")?.as_usize()?);
        index.materialize_threshold = match value.get_opt("materialize_threshold")? {
            Some(v) => v.as_usize()?.max(1),
            None => 1,
        };
        for pair in value.get("entries")?.as_arr()? {
            let parts = pair.as_arr()?;
            if parts.len() != 2 {
                return Err(dengraph_json::JsonError {
                    message: format!("index entry has {} elements", parts.len()),
                    offset: 0,
                });
            }
            let keyword = KeywordId(parts[0].as_u32()?);
            let entry = &parts[1];
            let mut users: Vec<(UserId, u32)> = Vec::new();
            for user in entry.get("users")?.as_arr()? {
                let uc = user.as_arr()?;
                if uc.len() != 2 {
                    return Err(dengraph_json::JsonError {
                        message: format!("user refcount pair has {} elements", uc.len()),
                        offset: 0,
                    });
                }
                users.push((UserId(uc[0].as_u64()?), uc[1].as_u32()?));
            }
            // Canonical documents are already sorted; re-sort defensively
            // so a hand-edited checkpoint cannot break the merge invariant.
            users.sort_unstable_by_key(|&(u, _)| u);
            let idx = keyword.index();
            check_keyword_index(idx, 0)?;
            if idx >= index.entries.len() {
                index.entries.resize_with(idx + 1, || None);
            }
            if index.entries[idx]
                .replace(KeywordWindowEntry {
                    users,
                    sketches: EpochSketchStore::from_json(entry.get("sketches")?)?,
                    last_seen: entry.get("last_seen")?.as_u64()?,
                })
                .is_some()
            {
                return Err(dengraph_json::JsonError {
                    message: format!("keyword {keyword} serialised twice in window index"),
                    offset: 0,
                });
            }
            index.live += 1;
        }
        Ok(index)
    }

    /// Appends the compact binary encoding: per live entry (ascending by
    /// keyword) the sorted refcount column split into a delta-encoded user
    /// column plus a count column, the sub-sketch store and the recency
    /// mark.
    fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.usize(self.sketch_size);
        w.usize(self.materialize_threshold);
        w.usize(self.live);
        let mut prev_k = 0u32;
        for (i, (keyword, entry)) in self.live_entries().enumerate() {
            w.u32(if i == 0 {
                keyword.0
            } else {
                keyword.0 - prev_k
            });
            prev_k = keyword.0;
            w.usize(entry.users.len());
            let mut prev_u = 0u64;
            for (j, &(u, _)) in entry.users.iter().enumerate() {
                w.u64(if j == 0 { u.0 } else { u.0 - prev_u });
                prev_u = u.0;
            }
            for &(_, count) in &entry.users {
                w.u32(count);
            }
            entry.sketches.to_bin(w);
            w.u64(entry.last_seen);
        }
    }

    /// Reconstructs an index encoded by [`Self::to_bin`].  Keywords and
    /// per-entry users must be strictly ascending (the canonical form).
    fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let corrupt = |r: &dengraph_json::BinReader<'_>, message: &str| dengraph_json::JsonError {
            message: message.into(),
            offset: r.pos(),
        };
        let mut index = Self::new(r.usize()?);
        index.materialize_threshold = r.usize()?.max(1);
        let live = r.seq_len(4)?;
        let mut prev_k = 0u32;
        for i in 0..live {
            let d = r.u32()?;
            let keyword = if i == 0 {
                d
            } else {
                match (d, prev_k.checked_add(d)) {
                    (1.., Some(k)) => k,
                    _ => return Err(corrupt(r, "index keywords must be strictly ascending")),
                }
            };
            prev_k = keyword;
            let len = r.seq_len(1)?;
            let mut users: Vec<(UserId, u32)> = Vec::with_capacity(len);
            let mut prev_u = 0u64;
            for j in 0..len {
                let d = r.u64()?;
                let u = if j == 0 {
                    d
                } else {
                    match (d, prev_u.checked_add(d)) {
                        (1.., Some(u)) => u,
                        _ => return Err(corrupt(r, "index users must be strictly ascending")),
                    }
                };
                prev_u = u;
                users.push((UserId(u), 0));
            }
            for slot in &mut users {
                slot.1 = r.u32()?;
            }
            let sketches = EpochSketchStore::from_bin(r)?;
            let last_seen = r.u64()?;
            let idx = keyword as usize;
            check_keyword_index(idx, r.pos())?;
            if idx >= index.entries.len() {
                index.entries.resize_with(idx + 1, || None);
            }
            index.entries[idx] = Some(KeywordWindowEntry {
                users,
                sketches,
                last_seen,
            });
            index.live += 1;
        }
        Ok(index)
    }
}

/// The sliding window over the last `w` quanta.
#[derive(Debug, PartialEq)]
pub struct WindowState {
    window: VecDeque<QuantumRecord>,
    capacity: usize,
    hasher: UserHasher,
    sketch_size: usize,
    index: Option<WindowIndex>,
}

impl WindowState {
    /// Creates an empty window of `capacity` quanta using sketches of `p`
    /// minima hashed with `hasher`, in the default (incremental) mode.
    pub fn new(capacity: usize, sketch_size: usize, hasher: UserHasher) -> Self {
        Self::with_mode(capacity, sketch_size, hasher, WindowIndexMode::default())
    }

    /// Creates an empty window with an explicit [`WindowIndexMode`].
    pub fn with_mode(
        capacity: usize,
        sketch_size: usize,
        hasher: UserHasher,
        mode: WindowIndexMode,
    ) -> Self {
        Self {
            window: VecDeque::with_capacity(capacity + 1),
            capacity: capacity.max(1),
            hasher,
            sketch_size,
            index: match mode {
                WindowIndexMode::Rebuild => None,
                WindowIndexMode::Incremental => Some(WindowIndex::new(sketch_size)),
            },
        }
    }

    /// The active index mode.
    pub fn mode(&self) -> WindowIndexMode {
        if self.index.is_some() {
            WindowIndexMode::Incremental
        } else {
            WindowIndexMode::Rebuild
        }
    }

    /// Sets the index materialization threshold: a keyword gets an
    /// incrementally maintained index entry once a single quantum brings
    /// it at least this many distinct users (the detector passes the
    /// burstiness threshold σ).  Keywords below the threshold are served
    /// by the bit-identical record walk instead.  No-op under
    /// [`WindowIndexMode::Rebuild`]; the default of 1 materializes
    /// everything.
    pub fn with_materialize_threshold(mut self, threshold: usize) -> Self {
        if let Some(index) = &mut self.index {
            index.materialize_threshold = threshold.max(1);
        }
        self
    }

    /// The index materialization threshold (1 under `Rebuild`).
    pub fn materialize_threshold(&self) -> usize {
        self.index.as_ref().map_or(1, |i| i.materialize_threshold)
    }

    /// Pushes the record of a new quantum.  Returns the record that slid
    /// out of the window, if the window was already full (callers can
    /// recycle its storage via `QuantumRecord::into_storage`).
    pub fn push(&mut self, record: QuantumRecord) -> Option<QuantumRecord> {
        self.push_with_lanes(record, &mut SketchLanes::new())
    }

    /// Like [`Self::push`], but reuses caller-owned kernel lanes for the
    /// sub-sketch builds — the detector's hot path threads its
    /// [`crate::scratch::ScratchArena`] lanes through here so steady-state
    /// quanta fold without allocating.
    pub fn push_with_lanes(
        &mut self,
        record: QuantumRecord,
        lanes: &mut SketchLanes,
    ) -> Option<QuantumRecord> {
        if let Some(index) = &mut self.index {
            index.insert_record(&record, &self.hasher, &self.window, lanes);
        }
        self.window.push_back(record);
        let evicted = if self.window.len() > self.capacity {
            self.window.pop_front()
        } else {
            None
        };
        if let (Some(index), Some(old)) = (&mut self.index, &evicted) {
            index.remove_record(old);
        }
        evicted
    }

    /// Number of quanta currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// The window capacity in quanta (the configured `w`, at least 1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sketch size `p` used for per-keyword window sketches.
    pub fn sketch_size(&self) -> usize {
        self.sketch_size
    }

    /// Returns `true` when no quantum has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The most recent quantum record.
    pub fn current(&self) -> Option<&QuantumRecord> {
        self.window.back()
    }

    /// Index of the most recent quantum.
    pub fn current_index(&self) -> Option<u64> {
        self.current().map(|r| r.index)
    }

    /// The live index entry for `keyword`, if materialized.
    #[inline]
    fn index_entry(&self, keyword: KeywordId) -> Option<&KeywordWindowEntry> {
        self.index.as_ref().and_then(|index| index.entry(keyword))
    }

    /// Distinct users that mentioned `keyword` anywhere in the window.
    pub fn window_user_set(&self, keyword: KeywordId) -> FxHashSet<UserId> {
        if let Some(entry) = self.index_entry(keyword) {
            return entry.users.iter().map(|&(u, _)| u).collect();
        }
        // Rebuild mode, or a keyword below the materialization threshold:
        // walk the records (bit-identical to the indexed read).
        let mut users = FxHashSet::default();
        for record in &self.window {
            users.extend(record.users_of(keyword).iter().copied());
        }
        users
    }

    /// Number of distinct users that mentioned `keyword` in the window —
    /// the node weight `w_i` of the ranking function.
    pub fn window_user_count(&self, keyword: KeywordId) -> usize {
        if let Some(entry) = self.index_entry(keyword) {
            return entry.users.len();
        }
        self.window_user_set(keyword).len()
    }

    /// The min-hash sketch of `keyword`'s window user set.
    pub fn window_sketch(&self, keyword: KeywordId) -> MinHashSketch {
        if let Some(sketch) = self.window_sketch_ref(keyword) {
            return sketch.clone();
        }
        let mut sketch = MinHashSketch::new(self.sketch_size);
        for record in &self.window {
            for u in record.users_of(keyword) {
                sketch.insert(&self.hasher, u.raw());
            }
        }
        sketch
    }

    /// Borrows the cached window sketch of `keyword` without cloning.
    /// Only the incremental index caches sketches, so this returns `None`
    /// under [`WindowIndexMode::Rebuild`] and for keywords without a
    /// materialized entry (not in the window, or below the
    /// materialization threshold); callers fall back to
    /// [`Self::window_sketch`], which walks the records.
    pub fn window_sketch_ref(&self, keyword: KeywordId) -> Option<&MinHashSketch> {
        self.index_entry(keyword).map(|e| e.sketches.merged())
    }

    /// Builds the window sketch of every keyword in `keywords`, fanning out
    /// over keyword shards per `parallelism`.  Results come back in input
    /// order and are identical to calling [`Self::window_sketch`] per key.
    pub fn window_sketches(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<MinHashSketch> {
        if self.index.is_some() {
            // Cached-sketch clones; still sharded so huge candidate sets
            // fan out, but each shard item is O(p) instead of O(w · Δ).
            return par_map(parallelism, keywords, |&keyword| {
                self.window_sketch(keyword)
            });
        }
        dengraph_minhash::build_sketches(
            parallelism,
            self.sketch_size,
            &self.hasher,
            keywords,
            |&keyword, hasher, sketch, lanes| {
                for record in &self.window {
                    sketch.insert_batch(hasher, record.users_of(keyword), |u| u.raw(), lanes);
                }
            },
        )
    }

    /// Builds the exact window user set of every keyword in `keywords`,
    /// fanning out over keyword shards per `parallelism`.
    pub fn window_user_sets(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<FxHashSet<UserId>> {
        par_map(parallelism, keywords, |&keyword| {
            self.window_user_set(keyword)
        })
    }

    /// Computes [`Self::window_user_count`] for every keyword in
    /// `keywords`, fanning out over keyword shards per `parallelism`.
    pub fn window_user_counts(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<usize> {
        par_map(parallelism, keywords, |&keyword| {
            self.window_user_count(keyword)
        })
    }

    /// Exact Jaccard edge correlation of two keywords over the window.
    pub fn exact_edge_correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        dengraph_minhash::exact_jaccard(&self.window_user_set(a), &self.window_user_set(b))
    }

    /// Min-hash–estimated edge correlation of two keywords over the window.
    /// Returns 0.0 when the sketches share no minimum (the paper's edge
    /// admission gate).
    pub fn estimated_edge_correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        let sa = self.window_sketch(a);
        let sb = self.window_sketch(b);
        if !sa.shares_minimum(&sb) {
            return 0.0;
        }
        sa.estimate_jaccard(&sb)
    }

    /// The most recent quantum index in which `keyword` occurred, if any.
    pub fn last_seen(&self, keyword: KeywordId) -> Option<u64> {
        if let Some(entry) = self.index_entry(keyword) {
            // The recency mark can only outlive its record if every record
            // containing the keyword was evicted — in which case the entry
            // itself is gone.  So the mark is always in-window.
            return Some(entry.last_seen);
        }
        self.window
            .iter()
            .rev()
            .find(|r| !r.users_of(keyword).is_empty())
            .map(|r| r.index)
    }

    /// Returns `true` when `keyword` has not occurred in any quantum of the
    /// current window (the stale-removal test of Section 3.1).
    pub fn is_stale(&self, keyword: KeywordId) -> bool {
        self.last_seen(keyword).is_none()
    }

    /// Every keyword occurring anywhere in the window.  Always unions the
    /// records — under lazy materialization the index covers only
    /// above-threshold keywords, so it cannot answer this.
    pub fn keywords_in_window(&self) -> FxHashSet<KeywordId> {
        let mut all = FxHashSet::default();
        for record in &self.window {
            all.extend(record.keywords());
        }
        all
    }

    /// Total number of messages currently inside the window.
    pub fn window_message_count(&self) -> usize {
        self.window.iter().map(|r| r.message_count).sum()
    }

    /// Deep-checks every structural invariant of the window and its
    /// incremental index, recomputing each per-keyword aggregate from a
    /// raw record walk and comparing bit-for-bit.  O(w · Δ · keywords) —
    /// strictly a debugging/validation aid (the `invariants` feature wires
    /// it into quantum boundaries); never call it on a hot path.
    ///
    /// Checked:
    /// * the window holds at most `capacity` records with strictly
    ///   increasing quantum indices;
    /// * every record's span table is strictly ascending by keyword,
    ///   covers the flat user column contiguously and exactly, and each
    ///   span's user run is non-empty and strictly ascending (the
    ///   invariant `fold_pairs` owns);
    /// * under [`WindowIndexMode::Incremental`]: the live-entry count
    ///   matches, every keyword some record brought at least
    ///   `materialize_threshold` users is materialized, and each entry's
    ///   refcount column, recency mark, per-quantum epoch list and cached
    ///   merged sketch are identical to a from-scratch rebuild over the
    ///   records.
    pub fn validate_invariants(&self) -> Result<(), String> {
        if self.window.len() > self.capacity {
            return Err(format!(
                "window holds {} records but capacity is {}",
                self.window.len(),
                self.capacity
            ));
        }
        let mut prev_index: Option<u64> = None;
        for record in &self.window {
            if prev_index.is_some_and(|p| record.index <= p) {
                return Err(format!(
                    "quantum indices not strictly increasing: {} after {:?}",
                    record.index, prev_index
                ));
            }
            prev_index = Some(record.index);
            let mut cursor = 0u32;
            let mut prev_keyword: Option<KeywordId> = None;
            for &(k, s, e) in &record.spans {
                if prev_keyword.is_some_and(|p| k <= p) {
                    return Err(format!(
                        "record {}: span keywords not strictly ascending at {k}",
                        record.index
                    ));
                }
                prev_keyword = Some(k);
                if s != cursor || e <= s {
                    return Err(format!(
                        "record {}: span of {k} is [{s}, {e}) but the column cursor is {cursor}",
                        record.index
                    ));
                }
                cursor = e;
                let run = &record.users[s as usize..e as usize];
                if run.windows(2).any(|p| p[0] >= p[1]) {
                    return Err(format!(
                        "record {}: users of {k} are not strictly ascending",
                        record.index
                    ));
                }
            }
            if cursor as usize != record.users.len() {
                return Err(format!(
                    "record {}: spans cover {cursor} users but the column holds {}",
                    record.index,
                    record.users.len()
                ));
            }
        }
        let Some(index) = &self.index else {
            return Ok(());
        };
        if index.sketch_size != self.sketch_size {
            return Err(format!(
                "index sketch size {} disagrees with the window's {}",
                index.sketch_size, self.sketch_size
            ));
        }
        let live = index.entries.iter().filter(|slot| slot.is_some()).count();
        if live != index.live {
            return Err(format!(
                "index live count is {} but {live} entries are occupied",
                index.live
            ));
        }
        // Materialization soundness: a record bringing at least the
        // threshold of distinct users forces an entry, and that entry can
        // only die when the keyword leaves the window entirely — so while
        // such a record is still in the window, the entry must exist.
        for record in &self.window {
            for (keyword, users) in record.iter() {
                if users.len() >= index.materialize_threshold && index.entry(keyword).is_none() {
                    return Err(format!(
                        "{keyword} brought {} users in quantum {} (threshold {}) \
                         but has no index entry",
                        users.len(),
                        record.index,
                        index.materialize_threshold
                    ));
                }
            }
        }
        for (keyword, entry) in index.live_entries() {
            // Rebuild the refcount column, epoch list and recency mark
            // exactly the way the retroactive materialization path does.
            let mut expected_users: Vec<(UserId, u32)> = Vec::new();
            let mut expected_epochs: Vec<u64> = Vec::new();
            let mut expected_last = None;
            let mut sketch = MinHashSketch::new(self.sketch_size);
            for record in &self.window {
                let run = record.users_of(keyword);
                if run.is_empty() {
                    continue;
                }
                merge_refcounts(&mut expected_users, run);
                expected_epochs.push(record.index);
                expected_last = Some(record.index);
                for u in run {
                    sketch.insert(&self.hasher, u.raw());
                }
            }
            if entry.users != expected_users {
                return Err(format!(
                    "{keyword}: refcount column disagrees with the record walk \
                     ({} cached vs {} recomputed entries)",
                    entry.users.len(),
                    expected_users.len()
                ));
            }
            if expected_users.is_empty() {
                return Err(format!(
                    "{keyword}: index entry is live but not in the window"
                ));
            }
            if Some(entry.last_seen) != expected_last {
                return Err(format!(
                    "{keyword}: last_seen is {} but the record walk says {expected_last:?}",
                    entry.last_seen
                ));
            }
            if entry.sketches.len() != expected_epochs.len()
                || entry.sketches.latest_epoch() != expected_last
            {
                return Err(format!(
                    "{keyword}: {} sub-sketches cached but {} window quanta contain the keyword",
                    entry.sketches.len(),
                    expected_epochs.len()
                ));
            }
            if *entry.sketches.merged() != sketch {
                return Err(format!(
                    "{keyword}: cached merged sketch differs from a from-scratch rebuild"
                ));
            }
        }
        Ok(())
    }

    /// Serialises the window — capacity, sketch parameters, hasher seed,
    /// the retained quantum records (oldest first) and, under
    /// [`WindowIndexMode::Incremental`], the live per-keyword index with
    /// its sub-sketch stores.
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        Value::obj([
            ("capacity", Value::from(self.capacity)),
            ("sketch_size", Value::from(self.sketch_size)),
            ("seed", Value::from(self.hasher.seed())),
            (
                "mode",
                Value::str(match self.mode() {
                    WindowIndexMode::Rebuild => "rebuild",
                    WindowIndexMode::Incremental => "incremental",
                }),
            ),
            (
                "records",
                Value::arr(self.window.iter().map(|r| r.to_json())),
            ),
            (
                "index",
                match &self.index {
                    Some(index) => index.to_json(),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Reconstructs a window serialised by [`Self::to_json`].  The restored
    /// window serves bit-identical reads to the original: records, index
    /// multisets, cached sketches and recency marks all round-trip exactly.
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let mode = match value.get("mode")?.as_str()? {
            "rebuild" => WindowIndexMode::Rebuild,
            "incremental" => WindowIndexMode::Incremental,
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown window mode '{other}'"),
                    offset: 0,
                })
            }
        };
        let index = match (mode, value.get_opt("index")?) {
            (WindowIndexMode::Rebuild, _) => None,
            (WindowIndexMode::Incremental, Some(v)) => Some(WindowIndex::from_json(v)?),
            (WindowIndexMode::Incremental, None) => {
                return Err(dengraph_json::JsonError {
                    message: "incremental window is missing its index".into(),
                    offset: 0,
                })
            }
        };
        let window: VecDeque<QuantumRecord> = value
            .get("records")?
            .as_arr()?
            .iter()
            .map(QuantumRecord::from_json)
            .collect::<dengraph_json::Result<_>>()?;
        Ok(Self {
            window,
            // No silent clamping: a zero capacity can only come from a
            // corrupt document (construction enforces ≥ 1), and the
            // detector-level decoder additionally cross-checks the value
            // against the validated configuration.
            capacity: match value.get("capacity")?.as_usize()? {
                0 => {
                    return Err(dengraph_json::JsonError {
                        message: "window capacity must be at least 1".into(),
                        offset: 0,
                    })
                }
                c => c,
            },
            hasher: UserHasher::new(value.get("seed")?.as_u64()?),
            sketch_size: value.get("sketch_size")?.as_usize()?,
            index,
        })
    }

    /// Appends the compact binary encoding — geometry, hasher seed, the
    /// retained records (oldest first) and, in incremental mode, the live
    /// index.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        w.usize(self.capacity);
        w.usize(self.sketch_size);
        w.u64(self.hasher.seed());
        w.byte(match self.mode() {
            WindowIndexMode::Rebuild => 0,
            WindowIndexMode::Incremental => 1,
        });
        w.usize(self.window.len());
        for record in &self.window {
            record.to_bin(w);
        }
        if let Some(index) = &self.index {
            index.to_bin(w);
        }
    }

    /// Reconstructs a window encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let capacity = match r.usize()? {
            0 => {
                return Err(dengraph_json::JsonError {
                    message: "window capacity must be at least 1".into(),
                    offset: r.pos(),
                })
            }
            c => c,
        };
        let sketch_size = r.usize()?;
        let seed = r.u64()?;
        let mode = match r.byte()? {
            0 => WindowIndexMode::Rebuild,
            1 => WindowIndexMode::Incremental,
            other => {
                return Err(dengraph_json::JsonError {
                    message: format!("unknown window mode byte {other}"),
                    offset: r.pos(),
                })
            }
        };
        let records = r.seq_len(2)?;
        let mut window = VecDeque::with_capacity(records.min(capacity + 1));
        for _ in 0..records {
            window.push_back(QuantumRecord::from_bin(r)?);
        }
        let index = match mode {
            WindowIndexMode::Rebuild => None,
            WindowIndexMode::Incremental => Some(WindowIndex::from_bin(r)?),
        };
        Ok(Self {
            window,
            capacity,
            hasher: UserHasher::new(seed),
            sketch_size,
            index,
        })
    }
}

impl dengraph_json::Encode for WindowState {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for WindowState {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// The two-state (low/high) automaton state of a keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeywordState {
    /// Not bursty.
    #[default]
    Low,
    /// Bursty in some recent quantum (member of the AKG).
    High,
}

/// Tracks the low/high state of every keyword ever seen.
///
/// Only high-state keywords carry information (low is the default), so the
/// machine is a **bitset over keyword ids**: bit `k` set means
/// `KeywordId(k)` is High.  Keyword ids are interner-dense, so the bitset
/// stays compact and both the burstiness test and demotion are single
/// word operations.
#[derive(Debug, Default)]
pub struct KeywordStateMachine {
    /// Bit `k` of word `k / 64` is set iff keyword `k` is High.
    high_bits: Vec<u64>,
    /// Number of set bits.
    high_count: usize,
}

/// Equality compares the set of High keywords; trailing zero words (left
/// behind by demotions) are ignored.
impl PartialEq for KeywordStateMachine {
    fn eq(&self, other: &Self) -> bool {
        if self.high_count != other.high_count {
            return false;
        }
        let len = self.high_bits.len().max(other.high_bits.len());
        (0..len).all(|i| {
            self.high_bits.get(i).copied().unwrap_or(0)
                == other.high_bits.get(i).copied().unwrap_or(0)
        })
    }
}

impl KeywordStateMachine {
    /// Creates an empty state machine.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn bit(&self, keyword: KeywordId) -> bool {
        let idx = keyword.index();
        self.high_bits
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Current state of a keyword (Low if never seen).
    pub fn state(&self, keyword: KeywordId) -> KeywordState {
        if self.bit(keyword) {
            KeywordState::High
        } else {
            KeywordState::Low
        }
    }

    /// Applies the burstiness test for one keyword in the current quantum:
    /// a keyword moves to the high state when at least `sigma` distinct
    /// users mentioned it this quantum.  Returns `(previous, new)` states.
    pub fn observe(
        &mut self,
        keyword: KeywordId,
        users_this_quantum: usize,
        sigma: u32,
    ) -> (KeywordState, KeywordState) {
        let prev = self.state(keyword);
        let new = if users_this_quantum >= sigma as usize {
            KeywordState::High
        } else {
            prev
        };
        if prev == KeywordState::Low && new == KeywordState::High {
            let idx = keyword.index();
            if idx / 64 >= self.high_bits.len() {
                self.high_bits.resize(idx / 64 + 1, 0);
            }
            self.high_bits[idx / 64] |= 1u64 << (idx % 64);
            self.high_count += 1;
        }
        (prev, new)
    }

    /// Forces a keyword back to the low state (used when it is removed from
    /// the AKG by stale removal or lazy update).
    pub fn demote(&mut self, keyword: KeywordId) {
        let idx = keyword.index();
        if let Some(word) = self.high_bits.get_mut(idx / 64) {
            let mask = 1u64 << (idx % 64);
            if *word & mask != 0 {
                *word &= !mask;
                self.high_count -= 1;
            }
        }
    }

    /// Number of keywords currently in the high state.
    pub fn high_count(&self) -> usize {
        self.high_count
    }

    /// Serialises the machine as the sorted list of High keywords.
    pub fn to_json(&self) -> dengraph_json::Value {
        use dengraph_json::Value;
        let high = self.high_bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1u64 << b) != 0)
                .map(move |b| Value::from((w * 64 + b) as u32))
        });
        Value::obj([("high", Value::arr(high))])
    }

    /// Reconstructs a machine serialised by [`Self::to_json`].
    pub fn from_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        let mut machine = Self::new();
        for k in value.get("high")?.as_arr()? {
            let keyword = KeywordId(k.as_u32()?);
            check_keyword_index(keyword.index(), 0)?;
            // `observe` with a saturated count is exactly "force High".
            machine.observe(keyword, 1, 1);
        }
        Ok(machine)
    }

    /// Appends the compact binary encoding: the sorted High keywords as
    /// one delta column.
    pub fn to_bin(&self, w: &mut dengraph_json::BinWriter) {
        let high: Vec<u32> = self
            .high_bits
            .iter()
            .enumerate()
            .flat_map(|(word, &bits)| {
                (0..64)
                    .filter(move |b| bits & (1u64 << b) != 0)
                    .map(move |b| (word * 64 + b) as u32)
            })
            .collect();
        w.delta_u32s(high.iter().copied());
    }

    /// Reconstructs a machine encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        let mut machine = Self::new();
        for k in r.delta_u32s()? {
            check_keyword_index(k as usize, r.pos())?;
            machine.observe(KeywordId(k), 1, 1);
        }
        Ok(machine)
    }
}

impl dengraph_json::Encode for KeywordStateMachine {
    fn encode_json(&self) -> dengraph_json::Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut dengraph_json::BinWriter) {
        self.to_bin(w)
    }
}

impl dengraph_json::Decode for KeywordStateMachine {
    fn decode_json(value: &dengraph_json::Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut dengraph_json::BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(user: u64, time: u64, kws: &[u32]) -> Message {
        Message::new(
            UserId(user),
            time,
            kws.iter().map(|&k| KeywordId(k)).collect(),
        )
    }

    fn k(i: u32) -> KeywordId {
        KeywordId(i)
    }

    #[test]
    fn quantum_record_counts_distinct_users() {
        let record = QuantumRecord::from_messages(
            0,
            &[
                msg(1, 0, &[10, 11]),
                msg(1, 1, &[10]),
                msg(2, 2, &[10]),
                msg(3, 3, &[11]),
            ],
        );
        assert_eq!(record.user_count(k(10)), 2);
        assert_eq!(record.user_count(k(11)), 2);
        assert_eq!(record.user_count(k(99)), 0);
        assert_eq!(record.message_count, 4);
        assert_eq!(record.keyword_count(), 2);
    }

    #[test]
    fn quantum_record_iterates_sorted() {
        let record = QuantumRecord::from_messages(
            0,
            &[msg(5, 0, &[30, 10]), msg(2, 1, &[20, 10]), msg(9, 2, &[20])],
        );
        let keywords: Vec<KeywordId> = record.keywords().collect();
        assert_eq!(keywords, vec![k(10), k(20), k(30)]);
        assert_eq!(record.users_of(k(10)), &[UserId(2), UserId(5)]);
        assert_eq!(record.users_of(k(20)), &[UserId(2), UserId(9)]);
        assert_eq!(record.users_of(k(30)), &[UserId(5)]);
        assert_eq!(record.users_of(k(99)), &[] as &[UserId]);
    }

    #[test]
    fn quantum_record_parallel_build_matches_serial() {
        let messages: Vec<Message> = (0..200)
            .map(|i| msg(i % 17, i, &[(i % 13) as u32, (i % 7) as u32]))
            .collect();
        let serial = QuantumRecord::from_messages(3, &messages);
        for threads in [2, 4, 8] {
            let parallel =
                QuantumRecord::from_messages_with(3, &messages, Parallelism::Threads(threads));
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn quantum_record_json_round_trip() {
        let record = QuantumRecord::from_messages(
            7,
            &[msg(5, 0, &[30, 10]), msg(2, 1, &[20, 10]), msg(9, 2, &[20])],
        );
        let back = QuantumRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn record_storage_recycling_builds_identical_records() {
        let messages: Vec<Message> = (0..50).map(|i| msg(i, i, &[(i % 5) as u32])).collect();
        let fresh = QuantumRecord::from_messages(1, &messages);
        let mut pairs = Vec::new();
        let storage = QuantumRecord::from_messages(0, &messages).into_storage();
        let recycled = QuantumRecord::from_messages_into(
            1,
            &messages,
            Parallelism::Serial,
            &mut pairs,
            &mut PairSortScratch::default(),
            storage,
        );
        assert_eq!(fresh, recycled);
    }

    fn window(capacity: usize) -> WindowState {
        WindowState::new(capacity, 4, UserHasher::new(7))
    }

    #[test]
    fn window_slides_and_evicts() {
        let mut w = window(2);
        assert!(w
            .push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]))
            .is_none());
        assert!(w
            .push(QuantumRecord::from_messages(1, &[msg(2, 1, &[10])]))
            .is_none());
        let evicted = w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert_eq!(evicted.unwrap().index, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.current_index(), Some(2));
    }

    #[test]
    fn window_user_counts_union_across_quanta() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[msg(1, 0, &[10]), msg(2, 1, &[10])],
        ));
        w.push(QuantumRecord::from_messages(
            1,
            &[msg(2, 2, &[10]), msg(3, 3, &[10])],
        ));
        assert_eq!(w.window_user_count(k(10)), 3); // users 1, 2, 3
        assert_eq!(w.window_user_count(k(99)), 0);
    }

    #[test]
    fn stale_detection_after_eviction() {
        let mut w = window(2);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        assert!(!w.is_stale(k(10)));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[11])]));
        w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert!(w.is_stale(k(10)));
        assert_eq!(w.last_seen(k(11)), Some(2));
    }

    #[test]
    fn exact_and_estimated_correlation_agree_on_identical_user_sets() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[
                msg(1, 0, &[10, 11]),
                msg(2, 1, &[10, 11]),
                msg(3, 2, &[10, 11]),
            ],
        ));
        assert!((w.exact_edge_correlation(k(10), k(11)) - 1.0).abs() < f64::EPSILON);
        assert!((w.estimated_edge_correlation(k(10), k(11)) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn disjoint_user_sets_have_zero_correlation() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[msg(1, 0, &[10]), msg(2, 1, &[11])],
        ));
        assert_eq!(w.exact_edge_correlation(k(10), k(11)), 0.0);
        assert_eq!(w.estimated_edge_correlation(k(10), k(11)), 0.0);
    }

    #[test]
    fn keywords_in_window_unions_quanta() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[11])]));
        let kws = w.keywords_in_window();
        assert!(kws.contains(&k(10)) && kws.contains(&k(11)));
        assert_eq!(w.window_message_count(), 2);
    }

    #[test]
    fn cached_sketch_ref_matches_owned_sketch() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[msg(1, 0, &[10]), msg(2, 1, &[10])],
        ));
        assert_eq!(*w.window_sketch_ref(k(10)).unwrap(), w.window_sketch(k(10)));
        assert!(w.window_sketch_ref(k(99)).is_none());
        let rebuild = WindowState::with_mode(3, 4, UserHasher::new(7), WindowIndexMode::Rebuild);
        assert!(rebuild.window_sketch_ref(k(10)).is_none());
    }

    /// Builds the same random-ish record stream into one window per mode
    /// and checks every per-keyword read agrees bit-for-bit.
    fn assert_modes_agree(capacity: usize, quanta: &[Vec<Message>]) {
        let hasher = || UserHasher::new(0xFACE);
        let mut rebuild = WindowState::with_mode(capacity, 4, hasher(), WindowIndexMode::Rebuild);
        let mut incremental =
            WindowState::with_mode(capacity, 4, hasher(), WindowIndexMode::Incremental);
        for (q, msgs) in quanta.iter().enumerate() {
            let record = QuantumRecord::from_messages(q as u64, msgs);
            let ev_a = rebuild.push(record.clone());
            let ev_b = incremental.push(record);
            assert_eq!(ev_a.map(|r| r.index), ev_b.map(|r| r.index));
            let mut keywords: Vec<KeywordId> = rebuild.keywords_in_window().into_iter().collect();
            keywords.push(k(999_999)); // a keyword never in the window
            keywords.sort_unstable();
            assert_eq!(keywords.len() - 1, incremental.keywords_in_window().len());
            for &kw in &keywords {
                assert_eq!(
                    rebuild.window_user_set(kw),
                    incremental.window_user_set(kw),
                    "user set diverged for {kw:?} at quantum {q}"
                );
                assert_eq!(
                    rebuild.window_user_count(kw),
                    incremental.window_user_count(kw)
                );
                assert_eq!(
                    rebuild.window_sketch(kw),
                    incremental.window_sketch(kw),
                    "sketch diverged for {kw:?} at quantum {q}"
                );
                assert_eq!(rebuild.last_seen(kw), incremental.last_seen(kw));
                assert_eq!(rebuild.is_stale(kw), incremental.is_stale(kw));
            }
        }
    }

    #[test]
    fn incremental_index_matches_rebuild_reads() {
        // A keyword-heavy stream with overlap across quanta, re-bursts,
        // an empty quantum and full eviction cycles.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut quanta: Vec<Vec<Message>> = Vec::new();
        for q in 0..24u64 {
            if q % 7 == 6 {
                quanta.push(Vec::new()); // empty quantum: pure slide
                continue;
            }
            let msgs: Vec<Message> = (0..12)
                .map(|m| {
                    let user = next() % 9;
                    let kws: Vec<u32> = (0..1 + next() % 3).map(|_| (next() % 7) as u32).collect();
                    msg(user, q * 100 + m, &kws)
                })
                .collect();
            quanta.push(msgs);
        }
        for capacity in [1, 2, 5] {
            assert_modes_agree(capacity, &quanta);
        }
    }

    #[test]
    fn both_modes_report_their_mode() {
        let w = WindowState::new(2, 4, UserHasher::new(1));
        assert_eq!(w.mode(), WindowIndexMode::Incremental);
        let w = WindowState::with_mode(2, 4, UserHasher::new(1), WindowIndexMode::Rebuild);
        assert_eq!(w.mode(), WindowIndexMode::Rebuild);
    }

    #[test]
    fn rebuild_mode_behaves_like_incremental_on_the_basics() {
        let mut w = WindowState::with_mode(2, 4, UserHasher::new(7), WindowIndexMode::Rebuild);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[10])]));
        assert_eq!(w.window_user_count(k(10)), 2);
        w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert_eq!(w.window_user_count(k(10)), 1);
        assert_eq!(w.last_seen(k(10)), Some(1));
    }

    #[test]
    fn state_machine_promotes_on_sigma_users() {
        let mut sm = KeywordStateMachine::new();
        assert_eq!(sm.state(k(1)), KeywordState::Low);
        let (prev, new) = sm.observe(k(1), 3, 4);
        assert_eq!((prev, new), (KeywordState::Low, KeywordState::Low));
        let (prev, new) = sm.observe(k(1), 4, 4);
        assert_eq!((prev, new), (KeywordState::Low, KeywordState::High));
        assert_eq!(sm.high_count(), 1);
    }

    #[test]
    fn state_machine_hysteresis_keeps_high_state() {
        let mut sm = KeywordStateMachine::new();
        sm.observe(k(1), 10, 4);
        // Next quantum it is no longer bursty but stays High (hysteresis);
        // demotion is an explicit decision of the AKG maintenance.
        let (prev, new) = sm.observe(k(1), 0, 4);
        assert_eq!((prev, new), (KeywordState::High, KeywordState::High));
        sm.demote(k(1));
        assert_eq!(sm.state(k(1)), KeywordState::Low);
    }

    #[test]
    fn state_machine_equality_ignores_demotion_residue() {
        let mut a = KeywordStateMachine::new();
        a.observe(k(3), 9, 1);
        a.observe(k(200), 9, 1); // forces a longer bit vector…
        a.demote(k(200)); // …then leaves a trailing zero word behind
        let mut b = KeywordStateMachine::new();
        b.observe(k(3), 9, 1);
        assert_eq!(a, b);
        assert_eq!(
            KeywordStateMachine::from_json(&a.to_json()).unwrap(),
            a,
            "round trip strips the residue"
        );
    }

    #[test]
    fn state_machine_json_lists_sorted_high_keywords() {
        let mut sm = KeywordStateMachine::new();
        for id in [130u32, 2, 64] {
            sm.observe(KeywordId(id), 5, 1);
        }
        let text = dengraph_json::to_string(&sm.to_json());
        assert_eq!(text, "{\"high\":[2,64,130]}");
        assert_eq!(KeywordStateMachine::from_json(&sm.to_json()).unwrap(), sm);
    }
}
