//! Sliding-window keyword state: the two-state automaton and per-keyword
//! user-id bookkeeping of Section 3.1 / 3.2.
//!
//! For every keyword the detector needs to know, over the current window of
//! `w` quanta:
//!
//! * how many distinct users mentioned it in the **current** quantum (the
//!   burstiness test against the high-state threshold σ),
//! * the min-hash sketch of the users who mentioned it anywhere in the
//!   window (for edge-correlation estimation),
//! * the exact user-id set over the window (for exact-EC ablation and for
//!   cluster support in the ranking function), and
//! * the most recent quantum in which it occurred (for stale removal).
//!
//! All of this is maintained incrementally: each quantum contributes one
//! immutable [`QuantumRecord`]; sliding the window simply drops the oldest
//! record, so no per-keyword "subtraction" is ever needed.

use std::collections::VecDeque;

use dengraph_graph::fxhash::{FxHashMap, FxHashSet};
use dengraph_minhash::{MinHashSketch, UserHasher};
use dengraph_parallel::{par_chunks, par_map, Parallelism};
use dengraph_stream::{Message, UserId};
use dengraph_text::KeywordId;

/// Per-quantum aggregation of the stream.
#[derive(Debug, Clone)]
pub struct QuantumRecord {
    /// Quantum index.
    pub index: u64,
    /// For every keyword occurring in the quantum, the distinct users that
    /// mentioned it.
    pub keyword_users: FxHashMap<KeywordId, FxHashSet<UserId>>,
    /// Number of messages aggregated into this record.
    pub message_count: usize,
}

impl QuantumRecord {
    /// Builds a record from the messages of one quantum.
    pub fn from_messages(index: u64, messages: &[Message]) -> Self {
        Self::from_messages_with(index, messages, Parallelism::Serial)
    }

    /// Builds a record, fanning the aggregation out over contiguous message
    /// chunks per `parallelism`.  The resulting per-keyword user *sets* are
    /// identical to the serial path's (set contents carry the semantics;
    /// everything downstream orders keywords canonically).
    pub fn from_messages_with(index: u64, messages: &[Message], parallelism: Parallelism) -> Self {
        let aggregate = |msgs: &[Message]| {
            let mut map: FxHashMap<KeywordId, FxHashSet<UserId>> = FxHashMap::default();
            for m in msgs {
                for &k in &m.keywords {
                    map.entry(k).or_default().insert(m.user);
                }
            }
            map
        };
        // One partial map per chunk (par_chunks falls back to a single
        // serial chunk for small quanta), merged serially.
        let mut partials = par_chunks(parallelism, messages, 16, aggregate);
        let mut merged = partials.remove(0);
        for partial in partials {
            for (keyword, users) in partial {
                match merged.entry(keyword) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(users);
                    }
                    std::collections::hash_map::Entry::Occupied(mut slot) => {
                        slot.get_mut().extend(users);
                    }
                }
            }
        }
        Self {
            index,
            keyword_users: merged,
            message_count: messages.len(),
        }
    }

    /// Distinct users that mentioned `keyword` in this quantum.
    pub fn user_count(&self, keyword: KeywordId) -> usize {
        self.keyword_users.get(&keyword).map_or(0, |s| s.len())
    }

    /// Keywords occurring in this quantum.
    pub fn keywords(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.keyword_users.keys().copied()
    }
}

/// The sliding window over the last `w` quanta.
#[derive(Debug)]
pub struct WindowState {
    window: VecDeque<QuantumRecord>,
    capacity: usize,
    hasher: UserHasher,
    sketch_size: usize,
}

impl WindowState {
    /// Creates an empty window of `capacity` quanta using sketches of `p`
    /// minima hashed with `hasher`.
    pub fn new(capacity: usize, sketch_size: usize, hasher: UserHasher) -> Self {
        Self {
            window: VecDeque::with_capacity(capacity + 1),
            capacity: capacity.max(1),
            hasher,
            sketch_size,
        }
    }

    /// Pushes the record of a new quantum.  Returns the record that slid
    /// out of the window, if the window was already full.
    pub fn push(&mut self, record: QuantumRecord) -> Option<QuantumRecord> {
        self.window.push_back(record);
        if self.window.len() > self.capacity {
            self.window.pop_front()
        } else {
            None
        }
    }

    /// Number of quanta currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` when no quantum has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The most recent quantum record.
    pub fn current(&self) -> Option<&QuantumRecord> {
        self.window.back()
    }

    /// Index of the most recent quantum.
    pub fn current_index(&self) -> Option<u64> {
        self.current().map(|r| r.index)
    }

    /// Distinct users that mentioned `keyword` anywhere in the window.
    pub fn window_user_set(&self, keyword: KeywordId) -> FxHashSet<UserId> {
        let mut users = FxHashSet::default();
        for record in &self.window {
            if let Some(s) = record.keyword_users.get(&keyword) {
                users.extend(s.iter().copied());
            }
        }
        users
    }

    /// Number of distinct users that mentioned `keyword` in the window —
    /// the node weight `w_i` of the ranking function.
    pub fn window_user_count(&self, keyword: KeywordId) -> usize {
        self.window_user_set(keyword).len()
    }

    /// The min-hash sketch of `keyword`'s window user set.
    pub fn window_sketch(&self, keyword: KeywordId) -> MinHashSketch {
        let mut sketch = MinHashSketch::new(self.sketch_size);
        for record in &self.window {
            if let Some(users) = record.keyword_users.get(&keyword) {
                for u in users {
                    sketch.insert(&self.hasher, u.raw());
                }
            }
        }
        sketch
    }

    /// Builds the window sketch of every keyword in `keywords`, fanning out
    /// over keyword shards per `parallelism`.  Results come back in input
    /// order and are identical to calling [`Self::window_sketch`] per key.
    pub fn window_sketches(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<MinHashSketch> {
        dengraph_minhash::build_sketches(
            parallelism,
            self.sketch_size,
            &self.hasher,
            keywords,
            |&keyword, hasher, sketch| {
                for record in &self.window {
                    if let Some(users) = record.keyword_users.get(&keyword) {
                        for u in users {
                            sketch.insert(hasher, u.raw());
                        }
                    }
                }
            },
        )
    }

    /// Builds the exact window user set of every keyword in `keywords`,
    /// fanning out over keyword shards per `parallelism`.
    pub fn window_user_sets(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<FxHashSet<UserId>> {
        par_map(parallelism, keywords, |&keyword| {
            self.window_user_set(keyword)
        })
    }

    /// Computes [`Self::window_user_count`] for every keyword in
    /// `keywords`, fanning out over keyword shards per `parallelism`.
    pub fn window_user_counts(
        &self,
        keywords: &[KeywordId],
        parallelism: Parallelism,
    ) -> Vec<usize> {
        par_map(parallelism, keywords, |&keyword| {
            self.window_user_count(keyword)
        })
    }

    /// Exact Jaccard edge correlation of two keywords over the window.
    pub fn exact_edge_correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        dengraph_minhash::exact_jaccard(&self.window_user_set(a), &self.window_user_set(b))
    }

    /// Min-hash–estimated edge correlation of two keywords over the window.
    /// Returns 0.0 when the sketches share no minimum (the paper's edge
    /// admission gate).
    pub fn estimated_edge_correlation(&self, a: KeywordId, b: KeywordId) -> f64 {
        let sa = self.window_sketch(a);
        let sb = self.window_sketch(b);
        if !sa.shares_minimum(&sb) {
            return 0.0;
        }
        sa.estimate_jaccard(&sb)
    }

    /// The most recent quantum index in which `keyword` occurred, if any.
    pub fn last_seen(&self, keyword: KeywordId) -> Option<u64> {
        self.window
            .iter()
            .rev()
            .find(|r| r.keyword_users.contains_key(&keyword))
            .map(|r| r.index)
    }

    /// Returns `true` when `keyword` has not occurred in any quantum of the
    /// current window (the stale-removal test of Section 3.1).
    pub fn is_stale(&self, keyword: KeywordId) -> bool {
        self.last_seen(keyword).is_none()
    }

    /// Every keyword occurring anywhere in the window.
    pub fn keywords_in_window(&self) -> FxHashSet<KeywordId> {
        let mut all = FxHashSet::default();
        for record in &self.window {
            all.extend(record.keywords());
        }
        all
    }

    /// Total number of messages currently inside the window.
    pub fn window_message_count(&self) -> usize {
        self.window.iter().map(|r| r.message_count).sum()
    }
}

/// The two-state (low/high) automaton state of a keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeywordState {
    /// Not bursty.
    #[default]
    Low,
    /// Bursty in some recent quantum (member of the AKG).
    High,
}

/// Tracks the low/high state of every keyword ever seen.
#[derive(Debug, Default)]
pub struct KeywordStateMachine {
    states: FxHashMap<KeywordId, KeywordState>,
}

impl KeywordStateMachine {
    /// Creates an empty state machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of a keyword (Low if never seen).
    pub fn state(&self, keyword: KeywordId) -> KeywordState {
        self.states.get(&keyword).copied().unwrap_or_default()
    }

    /// Applies the burstiness test for one keyword in the current quantum:
    /// a keyword moves to the high state when at least `sigma` distinct
    /// users mentioned it this quantum.  Returns `(previous, new)` states.
    pub fn observe(
        &mut self,
        keyword: KeywordId,
        users_this_quantum: usize,
        sigma: u32,
    ) -> (KeywordState, KeywordState) {
        let prev = self.state(keyword);
        let new = if users_this_quantum >= sigma as usize {
            KeywordState::High
        } else {
            prev
        };
        if new == KeywordState::High {
            self.states.insert(keyword, KeywordState::High);
        }
        (prev, new)
    }

    /// Forces a keyword back to the low state (used when it is removed from
    /// the AKG by stale removal or lazy update).
    pub fn demote(&mut self, keyword: KeywordId) {
        self.states.remove(&keyword);
    }

    /// Number of keywords currently in the high state.
    pub fn high_count(&self) -> usize {
        self.states
            .values()
            .filter(|s| **s == KeywordState::High)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(user: u64, time: u64, kws: &[u32]) -> Message {
        Message::new(
            UserId(user),
            time,
            kws.iter().map(|&k| KeywordId(k)).collect(),
        )
    }

    fn k(i: u32) -> KeywordId {
        KeywordId(i)
    }

    #[test]
    fn quantum_record_counts_distinct_users() {
        let record = QuantumRecord::from_messages(
            0,
            &[
                msg(1, 0, &[10, 11]),
                msg(1, 1, &[10]),
                msg(2, 2, &[10]),
                msg(3, 3, &[11]),
            ],
        );
        assert_eq!(record.user_count(k(10)), 2);
        assert_eq!(record.user_count(k(11)), 2);
        assert_eq!(record.user_count(k(99)), 0);
        assert_eq!(record.message_count, 4);
    }

    fn window(capacity: usize) -> WindowState {
        WindowState::new(capacity, 4, UserHasher::new(7))
    }

    #[test]
    fn window_slides_and_evicts() {
        let mut w = window(2);
        assert!(w
            .push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]))
            .is_none());
        assert!(w
            .push(QuantumRecord::from_messages(1, &[msg(2, 1, &[10])]))
            .is_none());
        let evicted = w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert_eq!(evicted.unwrap().index, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.current_index(), Some(2));
    }

    #[test]
    fn window_user_counts_union_across_quanta() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[msg(1, 0, &[10]), msg(2, 1, &[10])],
        ));
        w.push(QuantumRecord::from_messages(
            1,
            &[msg(2, 2, &[10]), msg(3, 3, &[10])],
        ));
        assert_eq!(w.window_user_count(k(10)), 3); // users 1, 2, 3
        assert_eq!(w.window_user_count(k(99)), 0);
    }

    #[test]
    fn stale_detection_after_eviction() {
        let mut w = window(2);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        assert!(!w.is_stale(k(10)));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[11])]));
        w.push(QuantumRecord::from_messages(2, &[msg(3, 2, &[11])]));
        assert!(w.is_stale(k(10)));
        assert_eq!(w.last_seen(k(11)), Some(2));
    }

    #[test]
    fn exact_and_estimated_correlation_agree_on_identical_user_sets() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[
                msg(1, 0, &[10, 11]),
                msg(2, 1, &[10, 11]),
                msg(3, 2, &[10, 11]),
            ],
        ));
        assert!((w.exact_edge_correlation(k(10), k(11)) - 1.0).abs() < f64::EPSILON);
        assert!((w.estimated_edge_correlation(k(10), k(11)) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn disjoint_user_sets_have_zero_correlation() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(
            0,
            &[msg(1, 0, &[10]), msg(2, 1, &[11])],
        ));
        assert_eq!(w.exact_edge_correlation(k(10), k(11)), 0.0);
        assert_eq!(w.estimated_edge_correlation(k(10), k(11)), 0.0);
    }

    #[test]
    fn keywords_in_window_unions_quanta() {
        let mut w = window(3);
        w.push(QuantumRecord::from_messages(0, &[msg(1, 0, &[10])]));
        w.push(QuantumRecord::from_messages(1, &[msg(2, 1, &[11])]));
        let kws = w.keywords_in_window();
        assert!(kws.contains(&k(10)) && kws.contains(&k(11)));
        assert_eq!(w.window_message_count(), 2);
    }

    #[test]
    fn state_machine_promotes_on_sigma_users() {
        let mut sm = KeywordStateMachine::new();
        assert_eq!(sm.state(k(1)), KeywordState::Low);
        let (prev, new) = sm.observe(k(1), 3, 4);
        assert_eq!((prev, new), (KeywordState::Low, KeywordState::Low));
        let (prev, new) = sm.observe(k(1), 4, 4);
        assert_eq!((prev, new), (KeywordState::Low, KeywordState::High));
        assert_eq!(sm.high_count(), 1);
    }

    #[test]
    fn state_machine_hysteresis_keeps_high_state() {
        let mut sm = KeywordStateMachine::new();
        sm.observe(k(1), 10, 4);
        // Next quantum it is no longer bursty but stays High (hysteresis);
        // demotion is an explicit decision of the AKG maintenance.
        let (prev, new) = sm.observe(k(1), 0, 4);
        assert_eq!((prev, new), (KeywordState::High, KeywordState::High));
        sm.demote(k(1));
        assert_eq!(sm.state(k(1)), KeywordState::Low);
    }
}
