//! The durable write-ahead journal: segmented, checksummed, crash-safe.
//!
//! PR 5's [`CheckpointJournal`](crate::checkpoint::CheckpointJournal)
//! made per-quantum durability *cheap* (O(Δ) delta frames between
//! snapshot rebases) but kept the log in memory — a crash lost every
//! quantum since the last explicit checkpoint.  This module supplies the
//! missing on-disk half:
//!
//! * [`JournalWriter`] streams frames to any [`JournalSink`] (a thin
//!   extension of [`io::Write`] adding the `fsync` operation) with the
//!   CRC-32 length framing of [`dengraph_json::frame`], under a
//!   configurable [`FsyncPolicy`];
//! * `SegmentedJournal` (crate-internal, driven by `CheckpointJournal`)
//!   rotates the log across `seg-NNNNNNNN.dgj` files at a byte
//!   threshold and compacts segments wholly behind the latest durable
//!   snapshot;
//! * [`JournalReader`] scans one segment's bytes frame by frame, and the
//!   crate-internal recovery routine folds every segment of a journal
//!   directory into the *last fully-durable quantum*: a torn tail (bad
//!   checksum, truncated frame, short length prefix, half-written
//!   segment) stops the scan without failing the restore, and every
//!   frame before the tear is replayed.
//!
//! ## On-disk layout
//!
//! ```text
//! dir/seg-00000001.dgj      dir/seg-00000002.dgj      ...
//! segment = D6 'D' 'G' 'J'  version  format-byte  frame*
//! frame   = tag(1)  payload-len u32-LE(4)  crc32 u32-LE(4)  payload
//! ```
//!
//! Every segment is self-describing (own header); frames carry tag
//! `01` (snapshot: a complete checkpoint document) or `02` (delta: a
//! [`DeltaRecord`]).  Recovery keeps the
//! latest snapshot and the delta frames after it, so compaction — which
//! only ever deletes segments *strictly before* the segment holding the
//! latest durable snapshot — never changes what a restore produces.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use dengraph_json::frame::{frame_header, FrameEvent, FrameScanner, TornReason};
use dengraph_json::{BinReader, BinWriter, Decode, JsonError, WireFormat};

use crate::checkpoint::{
    decode_checkpoint_document, CheckpointMode, DeltaRecord, TAG_DELTA, TAG_SNAPSHOT,
};
use crate::detector::EventDetector;
use crate::session::RestoreError;

/// Magic prefix of every journal segment (and of the in-memory byte
/// log).  Starts with the binary sniff byte `0xD6`, which no JSON
/// document can begin with.
pub(crate) const JOURNAL_MAGIC: [u8; 4] =
    [dengraph_json::codec::BINARY_MAGIC_BYTE, b'D', b'G', b'J'];

/// Version of the journal container layout.  Version 2 introduced the
/// checksummed fixed-width framing (version 1 was the in-memory-only
/// varint framing of PR 5, which never reached disk and is not read
/// back).
pub(crate) const JOURNAL_VERSION: u64 = 2;

const SEGMENT_PREFIX: &str = "seg-";
const SEGMENT_SUFFIX: &str = ".dgj";

// ---------------------------------------------------------------------------
// Fsync policy
// ---------------------------------------------------------------------------

/// When the journal forces appended frames to stable storage.
///
/// The policy trades the durability window against write latency:
///
/// | policy | lost on power failure | cost |
/// |---|---|---|
/// | [`EveryFrame`](Self::EveryFrame) | nothing (≤ the torn frame) | one fsync per quantum |
/// | [`EveryN`](Self::EveryN) | up to `n` quanta | one fsync per `n` quanta |
/// | [`Never`](Self::Never) | up to the OS write-back window | none |
///
/// Under every policy the journal itself stays *consistent*: recovery
/// finds the last frame that fully reached the disk and resumes there.
/// The policy only controls how far behind the stream that frame may be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync; rely on OS write-back (suitable for benchmarks and
    /// for deployments where the journal is itself replicated).
    Never,
    /// Fsync after every appended frame — the "lose at most the quantum
    /// in flight" setting, and the default.
    #[default]
    EveryFrame,
    /// Fsync after every `n` appended frames (`n` is clamped to ≥ 1).
    EveryN {
        /// Frames between consecutive fsyncs.
        n: u32,
    },
}

impl FsyncPolicy {
    /// Whether a sync is due after `frames_since_sync` unsynced frames.
    fn due(self, frames_since_sync: u32) -> bool {
        match self {
            FsyncPolicy::Never => false,
            FsyncPolicy::EveryFrame => true,
            FsyncPolicy::EveryN { n } => frames_since_sync >= n.max(1),
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks and the frame writer
// ---------------------------------------------------------------------------

/// A journal destination: [`io::Write`] plus the ability to force
/// buffered bytes to stable storage.
///
/// The default [`Self::sync`] is a no-op, so any `io::Write` becomes a
/// sink with an empty `impl JournalSink for MyWriter {}`; [`File`]
/// overrides it with `sync_data`.
pub trait JournalSink: Write {
    /// Forces previously written bytes to stable storage.
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl JournalSink for Vec<u8> {}

impl JournalSink for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Encodes the 6-byte segment header: magic, container version, wire
/// format.
fn segment_header(format: WireFormat) -> Vec<u8> {
    let mut w = BinWriter::new();
    w.raw(&JOURNAL_MAGIC);
    w.u64(JOURNAL_VERSION);
    w.byte(match format {
        WireFormat::Json => 0,
        WireFormat::Binary => 1,
    });
    w.into_bytes()
}

/// Parses a segment header, returning the wire format and the header
/// length in bytes.
fn parse_segment_header(bytes: &[u8]) -> Result<(WireFormat, usize), JsonError> {
    let mut r = BinReader::new(bytes);
    let magic = r.take(4)?;
    if magic != JOURNAL_MAGIC {
        return Err(JsonError {
            message: "not a dengraph checkpoint journal (bad magic)".into(),
            offset: 0,
        });
    }
    let version = r.u64()?;
    if version != JOURNAL_VERSION {
        return Err(JsonError {
            message: format!("unsupported journal version {version}"),
            offset: r.pos(),
        });
    }
    let format = match r.byte()? {
        0 => WireFormat::Json,
        1 => WireFormat::Binary,
        other => {
            return Err(JsonError {
                message: format!("unknown journal format byte {other}"),
                offset: r.pos(),
            })
        }
    };
    Ok((format, r.pos()))
}

/// Streams checksummed journal frames to a [`JournalSink`].
///
/// Construction writes the segment header; [`Self::append_frame`] then
/// writes one CRC-32 length-framed frame per call and fsyncs per the
/// configured [`FsyncPolicy`].  This is the write half of one journal
/// segment — [`CheckpointJournal`](crate::checkpoint::CheckpointJournal)
/// drives one `JournalWriter<Vec<u8>>` for the in-memory journal and a
/// rotating sequence of `JournalWriter<File>`s for the durable one.
#[derive(Debug)]
pub struct JournalWriter<S: JournalSink> {
    sink: S,
    fsync: FsyncPolicy,
    bytes_written: u64,
    frames_written: u64,
    frames_since_sync: u32,
}

impl<S: JournalSink> JournalWriter<S> {
    /// Wraps `sink`, writing the segment header immediately.
    pub fn new(mut sink: S, format: WireFormat, fsync: FsyncPolicy) -> io::Result<Self> {
        let header = segment_header(format);
        sink.write_all(&header)?;
        Ok(Self {
            sink,
            fsync,
            bytes_written: header.len() as u64,
            frames_written: 0,
            frames_since_sync: 0,
        })
    }

    /// Appends one frame (header + payload) and fsyncs if the policy says
    /// the frame count since the last sync is due.
    pub fn append_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        let header = frame_header(tag, payload);
        self.sink.write_all(&header)?;
        self.sink.write_all(payload)?;
        self.bytes_written += (header.len() + payload.len()) as u64;
        self.frames_written += 1;
        self.frames_since_sync += 1;
        if self.fsync.due(self.frames_since_sync) {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes and forces written frames to stable storage, regardless of
    /// policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.sink.flush()?;
        self.sink.sync()?;
        self.frames_since_sync = 0;
        Ok(())
    }

    /// Bytes written so far, segment header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Frames appended so far.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Read access to the underlying sink (e.g. the `Vec<u8>` byte log).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Flushes and returns the underlying sink.
    pub fn into_sink(mut self) -> io::Result<S> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

// ---------------------------------------------------------------------------
// Durable configuration
// ---------------------------------------------------------------------------

/// Configuration of a durable (file-backed) journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurableJournalConfig {
    /// Snapshot/delta cadence (see [`CheckpointMode`]).
    pub mode: CheckpointMode,
    /// Wire format of snapshot and delta payloads.
    pub format: WireFormat,
    /// When appended frames are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// Byte threshold at which the journal rotates to a fresh segment
    /// file.  A segment always holds at least one frame, so a threshold
    /// smaller than a frame degenerates to one frame per segment.
    pub segment_bytes: u64,
}

impl Default for DurableJournalConfig {
    /// Delta mode with a 64-quantum rebase cadence, binary payloads,
    /// fsync on every frame, 8 MiB segments.
    fn default() -> Self {
        Self {
            mode: CheckpointMode::Delta { every: 64 },
            format: WireFormat::Binary,
            fsync: FsyncPolicy::default(),
            segment_bytes: 8 << 20,
        }
    }
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

/// Path of segment `seq` under `dir`.
fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{seq:08}{SEGMENT_SUFFIX}"))
}

/// Parses a segment sequence number out of a file name.
fn segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Lists `dir`'s journal segments sorted by sequence number.  Files not
/// matching the `seg-NNNNNNNN.dgj` pattern are ignored.
pub(crate) fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(segment_seq) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// The file-backed, rotating, compacting journal backend.
///
/// Owned by a durable
/// [`CheckpointJournal`](crate::checkpoint::CheckpointJournal), which
/// decides *what* to append and *when* to compact; this type owns the
/// *where*: the current segment writer, rotation at the byte threshold,
/// and deletion of segments behind the latest snapshot.
#[derive(Debug)]
pub(crate) struct SegmentedJournal {
    dir: PathBuf,
    format: WireFormat,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    writer: JournalWriter<File>,
    current_seq: u64,
    frames_in_segment: u64,
    /// Segment holding the most recently appended snapshot frame.
    last_snapshot_seq: u64,
}

impl SegmentedJournal {
    /// Creates the journal directory (if needed) and opens a fresh
    /// segment numbered after any segments already present — existing
    /// segments are never appended to or truncated.
    pub(crate) fn create(
        dir: &Path,
        format: WireFormat,
        fsync: FsyncPolicy,
        segment_bytes: u64,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let next_seq = list_segments(dir)?.last().map_or(1, |(seq, _)| seq + 1);
        let writer = Self::open_segment(dir, next_seq, format, fsync)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            format,
            fsync,
            segment_bytes: segment_bytes.max(1),
            writer,
            current_seq: next_seq,
            frames_in_segment: 0,
            last_snapshot_seq: next_seq,
        })
    }

    fn open_segment(
        dir: &Path,
        seq: u64,
        format: WireFormat,
        fsync: FsyncPolicy,
    ) -> io::Result<JournalWriter<File>> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(segment_path(dir, seq))?;
        JournalWriter::new(file, format, fsync)
    }

    /// Appends one frame, rotating to a fresh segment first when the
    /// current one has reached the byte threshold (a segment always
    /// receives at least one frame, so rotation lands exactly on frame
    /// boundaries).
    pub(crate) fn append_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        if self.writer.bytes_written() >= self.segment_bytes && self.frames_in_segment > 0 {
            self.rotate()?;
        }
        self.writer.append_frame(tag, payload)?;
        self.frames_in_segment += 1;
        if tag == TAG_SNAPSHOT {
            self.last_snapshot_seq = self.current_seq;
        }
        Ok(())
    }

    /// Closes the current segment (syncing it unless the policy is
    /// [`FsyncPolicy::Never`]) and opens the next one.
    fn rotate(&mut self) -> io::Result<()> {
        if self.fsync != FsyncPolicy::Never {
            self.writer.sync()?;
        }
        let next = self.current_seq + 1;
        self.writer = Self::open_segment(&self.dir, next, self.format, self.fsync)?;
        self.current_seq = next;
        self.frames_in_segment = 0;
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    pub(crate) fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }

    /// Deletes every segment strictly before the one holding the latest
    /// snapshot.  The caller must have made that snapshot durable first
    /// (compaction after an unsynced snapshot could leave the journal
    /// with no complete snapshot on disk after a crash).  Returns the
    /// number of segments removed.
    pub(crate) fn compact(&mut self) -> io::Result<usize> {
        let mut removed = 0;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < self.last_snapshot_seq {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// The journal directory.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the segment currently being written.
    pub(crate) fn current_seq(&self) -> u64 {
        self.current_seq
    }

    /// The configured fsync policy.
    pub(crate) fn fsync(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Total on-disk journal size: the live writer's byte count plus the
    /// sizes of all closed segments (best-effort; unreadable directory
    /// entries count as 0).
    pub(crate) fn total_bytes(&self) -> u64 {
        let mut sum = self.writer.bytes_written();
        if let Ok(segments) = list_segments(&self.dir) {
            for (seq, path) in segments {
                if seq != self.current_seq {
                    sum += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        sum
    }
}

// ---------------------------------------------------------------------------
// Reading and recovery
// ---------------------------------------------------------------------------

/// Why a journal scan stopped before the end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TornWriteReason {
    /// A frame failed to validate (truncated header or payload, checksum
    /// mismatch).
    Frame(TornReason),
    /// A checksum-valid frame carries a tag this version does not know —
    /// bytes from a newer writer; everything before it is still good.
    UnknownTag(u8),
    /// A non-first segment's own header is missing or malformed (e.g. a
    /// crash between creating the file and writing its header).
    BadSegmentHeader,
    /// A non-first segment declares a different wire format than the
    /// journal started with.
    FormatMismatch,
    /// A gap in the segment sequence numbers — a segment between
    /// snapshots was deleted out from under the journal, so later deltas
    /// cannot be replayed safely.
    SegmentGap {
        /// The sequence number recovery expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
}

impl std::fmt::Display for TornWriteReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornWriteReason::Frame(reason) => write!(f, "{reason}"),
            TornWriteReason::UnknownTag(tag) => write!(f, "unknown journal frame tag {tag}"),
            TornWriteReason::BadSegmentHeader => write!(f, "malformed segment header"),
            TornWriteReason::FormatMismatch => {
                write!(f, "segment wire format differs from the journal's")
            }
            TornWriteReason::SegmentGap { expected, found } => {
                write!(
                    f,
                    "segment sequence gap (expected {expected}, found {found})"
                )
            }
        }
    }
}

/// Where and why recovery stopped replaying a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornWrite {
    /// The segment file containing the tear (`None` for an in-memory
    /// byte log).
    pub segment: Option<PathBuf>,
    /// Byte offset of the tear within that segment.
    pub offset: usize,
    /// What failed to validate.
    pub reason: TornWriteReason,
}

impl std::fmt::Display for TornWrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.segment {
            Some(path) => write!(f, "{} at {}+{}", self.reason, path.display(), self.offset),
            None => write!(f, "{} at offset {}", self.reason, self.offset),
        }
    }
}

/// What a journal recovery did: how much it scanned, how much it
/// replayed, and whether it stopped at a torn write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments whose frames were scanned.
    pub segments_scanned: usize,
    /// Valid frames found (snapshots and deltas, including frames made
    /// obsolete by a later snapshot).
    pub frames_recovered: usize,
    /// Delta frames replayed on top of the restored snapshot.
    pub deltas_replayed: usize,
    /// `quanta_processed()` of the recovered detector — the last fully
    /// durable quantum.
    pub recovered_quantum: u64,
    /// The torn tail recovery stopped at, if any (`None` means the
    /// journal was clean to the end).
    pub torn: Option<TornWrite>,
}

/// One step of a [`JournalReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalFrameEvent<'a> {
    /// A full-snapshot rebase frame: a complete checkpoint document.
    Snapshot(&'a [u8]),
    /// A delta frame: one encoded
    /// [`DeltaRecord`].
    Delta(&'a [u8]),
    /// The segment ended cleanly on a frame boundary.
    End,
    /// The remaining bytes are not a valid frame; `offset` is the byte
    /// position of the tear within the segment (header included).
    Torn {
        /// Byte offset of the torn frame's first byte.
        offset: usize,
        /// What failed to validate.
        reason: TornWriteReason,
    },
}

/// Scans one journal segment's bytes frame by frame.
///
/// [`Self::new`] validates the segment header; [`Self::next_frame`] then
/// yields typed frames until [`JournalFrameEvent::End`] or the first
/// [`JournalFrameEvent::Torn`], never failing on a damaged tail.  The
/// crate's recovery routine and the crash-matrix test suite both walk
/// journals through this type.
#[derive(Debug)]
pub struct JournalReader<'a> {
    format: WireFormat,
    header_len: usize,
    scanner: FrameScanner<'a>,
}

impl<'a> JournalReader<'a> {
    /// Parses the segment header of `segment` and positions the reader at
    /// its first frame.  A missing or malformed header is a hard error —
    /// such bytes are not a journal segment at all.
    pub fn new(segment: &'a [u8]) -> Result<Self, JsonError> {
        let (format, header_len) = parse_segment_header(segment)?;
        Ok(Self {
            format,
            header_len,
            scanner: FrameScanner::new(&segment[header_len..]),
        })
    }

    /// The segment's wire format (from its header).
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// Current byte offset into the segment (header included); after a
    /// [`JournalFrameEvent::Snapshot`]/[`JournalFrameEvent::Delta`] this
    /// is the next frame's start — i.e. successive values enumerate the
    /// segment's frame boundaries.
    pub fn pos(&self) -> usize {
        self.header_len + self.scanner.pos()
    }

    /// Validates and returns the next frame.
    pub fn next_frame(&mut self) -> JournalFrameEvent<'a> {
        let start = self.pos();
        match self.scanner.next_frame() {
            FrameEvent::Frame {
                tag: TAG_SNAPSHOT,
                payload,
            } => JournalFrameEvent::Snapshot(payload),
            FrameEvent::Frame {
                tag: TAG_DELTA,
                payload,
            } => JournalFrameEvent::Delta(payload),
            FrameEvent::Frame { tag, .. } => JournalFrameEvent::Torn {
                offset: start,
                reason: TornWriteReason::UnknownTag(tag),
            },
            FrameEvent::End => JournalFrameEvent::End,
            FrameEvent::Torn { offset, reason } => JournalFrameEvent::Torn {
                offset: self.header_len + offset,
                reason: TornWriteReason::Frame(reason),
            },
        }
    }
}

/// One segment handed to the recovery scan.
struct SegmentRef<'a> {
    path: Option<&'a Path>,
    seq: Option<u64>,
    bytes: &'a [u8],
}

/// The surviving frames of a scanned journal: the latest snapshot, the
/// delta tail after it, and where (if anywhere) the scan tore off.
struct ScannedJournal<'a> {
    format: WireFormat,
    snapshot: Option<&'a [u8]>,
    tail: Vec<&'a [u8]>,
    segments_scanned: usize,
    frames_recovered: usize,
    torn: Option<TornWrite>,
}

/// Scans `segments` (in sequence order) up to the first torn write.
/// Only the *first* segment's header is load-bearing — if it is
/// malformed the bytes are not a journal and the scan fails hard; any
/// later segment that fails to validate (bad header, format mismatch,
/// sequence gap) is treated as the torn tail instead.
fn scan_segments<'a>(segments: &[SegmentRef<'a>]) -> Result<ScannedJournal<'a>, RestoreError> {
    if segments.is_empty() {
        return Err(RestoreError::Io(
            "journal directory contains no segment files".to_string(),
        ));
    }
    let mut scan = ScannedJournal {
        format: WireFormat::Binary,
        snapshot: None,
        tail: Vec::new(),
        segments_scanned: 0,
        frames_recovered: 0,
        torn: None,
    };
    let mut prev_seq: Option<u64> = None;
    for (index, segment) in segments.iter().enumerate() {
        let torn_here = |reason: TornWriteReason, offset: usize| TornWrite {
            segment: segment.path.map(Path::to_path_buf),
            offset,
            reason,
        };
        if let (Some(prev), Some(seq)) = (prev_seq, segment.seq) {
            if seq != prev + 1 {
                scan.torn = Some(torn_here(
                    TornWriteReason::SegmentGap {
                        expected: prev + 1,
                        found: seq,
                    },
                    0,
                ));
                break;
            }
        }
        prev_seq = segment.seq;
        let mut reader = match JournalReader::new(segment.bytes) {
            Ok(reader) => reader,
            Err(e) if index == 0 => return Err(e.into()),
            Err(_) => {
                scan.torn = Some(torn_here(TornWriteReason::BadSegmentHeader, 0));
                break;
            }
        };
        if index == 0 {
            scan.format = reader.format();
        } else if reader.format() != scan.format {
            scan.torn = Some(torn_here(TornWriteReason::FormatMismatch, 0));
            break;
        }
        scan.segments_scanned += 1;
        let segment_torn = loop {
            match reader.next_frame() {
                JournalFrameEvent::Snapshot(payload) => {
                    scan.snapshot = Some(payload);
                    scan.tail.clear();
                    scan.frames_recovered += 1;
                }
                JournalFrameEvent::Delta(payload) => {
                    scan.tail.push(payload);
                    scan.frames_recovered += 1;
                }
                JournalFrameEvent::End => break None,
                JournalFrameEvent::Torn { offset, reason } => {
                    break Some(torn_here(reason, offset))
                }
            }
        };
        if let Some(torn) = segment_torn {
            scan.torn = Some(torn);
            break;
        }
    }
    Ok(scan)
}

/// Decodes the scanned snapshot and replays the delta tail.
fn replay(scan: &ScannedJournal<'_>) -> Result<(EventDetector, RecoveryReport), RestoreError> {
    let snapshot = scan.snapshot.ok_or_else(|| JsonError {
        message: "journal contains no snapshot frame to restore from".into(),
        offset: 0,
    })?;
    let mut detector = decode_checkpoint_document(snapshot)?;
    for payload in &scan.tail {
        let record = DeltaRecord::decode(payload, scan.format)?;
        detector.apply_delta_record(&record)?;
    }
    let report = RecoveryReport {
        segments_scanned: scan.segments_scanned,
        frames_recovered: scan.frames_recovered,
        deltas_replayed: scan.tail.len(),
        recovered_quantum: detector.quanta_processed(),
        torn: scan.torn.clone(),
    };
    Ok((detector, report))
}

/// Recovers a detector from a single journal byte log (the in-memory
/// journal form, or one segment's bytes).
pub(crate) fn restore_detector_from_bytes(
    bytes: &[u8],
) -> Result<(EventDetector, RecoveryReport), RestoreError> {
    let segments = [SegmentRef {
        path: None,
        seq: None,
        bytes,
    }];
    replay(&scan_segments(&segments)?)
}

/// Recovers a detector from a journal directory: reads every segment in
/// sequence order, scans to the last durable frame, restores the latest
/// snapshot and replays the delta tail.  A torn tail is reported in the
/// [`RecoveryReport`], not an error; a journal with no complete durable
/// snapshot is.
pub(crate) fn restore_detector_from_dir(
    dir: &Path,
) -> Result<(EventDetector, RecoveryReport), RestoreError> {
    let io_err = |e: io::Error| RestoreError::Io(format!("{}: {e}", dir.display()));
    let listed = list_segments(dir).map_err(io_err)?;
    let mut contents = Vec::with_capacity(listed.len());
    for (seq, path) in &listed {
        contents.push((*seq, path.clone(), fs::read(path).map_err(io_err)?));
    }
    let segments: Vec<SegmentRef<'_>> = contents
        .iter()
        .map(|(seq, path, bytes)| SegmentRef {
            path: Some(path),
            seq: Some(*seq),
            bytes,
        })
        .collect();
    replay(&scan_segments(&segments)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_cadence() {
        assert!(!FsyncPolicy::Never.due(1_000));
        assert!(FsyncPolicy::EveryFrame.due(1));
        assert!(!FsyncPolicy::EveryN { n: 3 }.due(2));
        assert!(FsyncPolicy::EveryN { n: 3 }.due(3));
        assert!(FsyncPolicy::EveryN { n: 0 }.due(1), "n clamps to 1");
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::EveryFrame);
    }

    #[test]
    fn journal_writer_round_trips_through_journal_reader() {
        let mut writer =
            JournalWriter::new(Vec::new(), WireFormat::Binary, FsyncPolicy::Never).unwrap();
        writer
            .append_frame(TAG_SNAPSHOT, b"snapshot bytes")
            .unwrap();
        writer.append_frame(TAG_DELTA, b"delta 0").unwrap();
        writer.append_frame(TAG_DELTA, b"").unwrap();
        assert_eq!(writer.frames_written(), 3);
        let bytes = writer.into_sink().unwrap();

        let mut reader = JournalReader::new(&bytes).unwrap();
        assert_eq!(reader.format(), WireFormat::Binary);
        assert_eq!(
            reader.next_frame(),
            JournalFrameEvent::Snapshot(b"snapshot bytes")
        );
        assert_eq!(reader.next_frame(), JournalFrameEvent::Delta(b"delta 0"));
        assert_eq!(reader.next_frame(), JournalFrameEvent::Delta(b""));
        assert_eq!(reader.next_frame(), JournalFrameEvent::End);
        assert_eq!(reader.pos(), bytes.len());
    }

    #[test]
    fn reader_reports_unknown_tags_as_torn_not_panic() {
        let mut writer =
            JournalWriter::new(Vec::new(), WireFormat::Binary, FsyncPolicy::Never).unwrap();
        writer.append_frame(TAG_DELTA, b"ok").unwrap();
        let boundary = writer.bytes_written() as usize;
        writer.append_frame(99, b"from the future").unwrap();
        let bytes = writer.into_sink().unwrap();
        let mut reader = JournalReader::new(&bytes).unwrap();
        assert_eq!(reader.next_frame(), JournalFrameEvent::Delta(b"ok"));
        assert_eq!(
            reader.next_frame(),
            JournalFrameEvent::Torn {
                offset: boundary,
                reason: TornWriteReason::UnknownTag(99),
            }
        );
    }

    #[test]
    fn segment_names_round_trip_and_sort() {
        assert_eq!(segment_seq("seg-00000042.dgj"), Some(42));
        assert_eq!(
            segment_path(Path::new("/tmp/j"), 42),
            PathBuf::from("/tmp/j/seg-00000042.dgj")
        );
        assert_eq!(segment_seq("seg-abc.dgj"), None);
        assert_eq!(segment_seq("checkpoint.bin"), None);
    }

    #[test]
    fn first_segment_header_errors_are_hard_later_ones_are_torn() {
        // A valid single-frame segment, then garbage as a second segment.
        let mut writer =
            JournalWriter::new(Vec::new(), WireFormat::Binary, FsyncPolicy::Never).unwrap();
        writer.append_frame(TAG_DELTA, b"d").unwrap();
        let good = writer.into_sink().unwrap();

        let garbage = b"not a journal".to_vec();
        assert!(matches!(
            scan_segments(&[SegmentRef {
                path: None,
                seq: Some(1),
                bytes: &garbage
            }]),
            Err(RestoreError::Json(_))
        ));

        let segments = [
            SegmentRef {
                path: None,
                seq: Some(1),
                bytes: &good,
            },
            SegmentRef {
                path: None,
                seq: Some(2),
                bytes: &garbage,
            },
        ];
        let scan = scan_segments(&segments).unwrap();
        assert_eq!(scan.frames_recovered, 1);
        assert_eq!(
            scan.torn.as_ref().map(|t| &t.reason),
            Some(&TornWriteReason::BadSegmentHeader)
        );
    }

    #[test]
    fn segment_sequence_gaps_stop_the_scan() {
        let mut writer =
            JournalWriter::new(Vec::new(), WireFormat::Binary, FsyncPolicy::Never).unwrap();
        writer.append_frame(TAG_DELTA, b"d").unwrap();
        let seg = writer.into_sink().unwrap();
        let segments = [
            SegmentRef {
                path: None,
                seq: Some(3),
                bytes: &seg,
            },
            SegmentRef {
                path: None,
                seq: Some(5),
                bytes: &seg,
            },
        ];
        let scan = scan_segments(&segments).unwrap();
        assert_eq!(scan.frames_recovered, 1, "frames before the gap survive");
        assert_eq!(
            scan.torn.as_ref().map(|t| &t.reason),
            Some(&TornWriteReason::SegmentGap {
                expected: 4,
                found: 5
            })
        );
    }
}
