//! Incremental checkpointing: delta records and the checkpoint journal.
//!
//! A full checkpoint re-encodes the *entire* detector — every window
//! record, the whole incremental index, all clusters and the complete
//! event tracker — even though a single quantum changes only an O(Δ)
//! slice of that state.  This module makes steady-state durability
//! proportional to the change instead:
//!
//! * a [`DeltaRecord`] captures one quantum's state transition — the
//!   pushed [`QuantumRecord`], the AKG [`GraphDelta`] log, the quantum's
//!   AKG statistics and the reported events (the tracker updates);
//! * a [`CheckpointJournal`] is an append-only frame log: full snapshots
//!   as rebase points, delta records between them, governed by
//!   [`CheckpointMode`];
//! * restore finds the latest snapshot and **replays** the journal-tail
//!   deltas on top of it.
//!
//! Replay is a pure redo: the window record is pushed as-is, the graph
//! and keyword automaton re-apply the logged deltas (no correlation is
//! re-scored), cluster maintenance re-runs the deterministic Section-5
//! algorithms from the same delta log (reproducing cluster ids exactly —
//! the property the sharded maintainer already guarantees), and the
//! tracker re-observes the logged events.  The result is bit-identical
//! to the uninterrupted run (`tests/checkpoint_resume.rs` gates this
//! across `Parallelism` × `WindowIndexMode` × [`CheckpointMode`]).
//!
//! ## Wire layout
//!
//! Binary checkpoint documents and journals both start with a magic the
//! JSON grammar cannot produce (`0xD6`), so every restore entry point
//! sniffs the format from the first bytes:
//!
//! ```text
//! checkpoint  = D6 'D' 'G' 'C'  version  detector-state
//! journal     = D6 'D' 'G' 'J'  version  format-byte  frame*
//! frame       = tag(01 snapshot | 02 delta)  varint(len)  payload
//! ```
//!
//! Snapshot payloads are complete checkpoint documents (themselves
//! sniffable); delta payloads are [`DeltaRecord`]s in the journal's
//! configured [`WireFormat`].

use dengraph_json::{BinReader, BinWriter, Decode, Encode, JsonError, Value, WireFormat};

use crate::akg::{AkgQuantumStats, GraphDelta};
use crate::config::DetectorConfig;
use crate::detector::{EventDetector, QuantumSummary};
use crate::event::DetectedEvent;
use crate::keyword_state::QuantumRecord;
use crate::session::RestoreError;

/// Magic prefix of a binary checkpoint document.
pub(crate) const CHECKPOINT_MAGIC: [u8; 4] =
    [dengraph_json::codec::BINARY_MAGIC_BYTE, b'D', b'G', b'C'];

/// Magic prefix of a checkpoint journal.
pub(crate) const JOURNAL_MAGIC: [u8; 4] =
    [dengraph_json::codec::BINARY_MAGIC_BYTE, b'D', b'G', b'J'];

/// Version of both binary container layouts.
const CONTAINER_VERSION: u64 = 1;

const TAG_SNAPSHOT: u8 = 1;
const TAG_DELTA: u8 = 2;

/// How a session checkpoints into its journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Every journal entry is a full whole-state snapshot (the ablation
    /// baseline, and the pre-PR-5 behaviour made continuous).
    Full,
    /// Append one O(quantum Δ) [`DeltaRecord`] per processed quantum,
    /// with a full snapshot rebase point after every `every` deltas.
    /// Restore cost is bounded by `every` replays; journal growth is
    /// bounded by one snapshot per `every` quanta.  `every` is clamped
    /// to at least 1.
    Delta {
        /// Delta records between consecutive snapshot rebase points.
        every: u32,
    },
}

/// One quantum's state transition, as appended to a checkpoint journal.
///
/// Everything needed to redo the quantum without re-scoring a single
/// correlation: the aggregated record that entered the window, the AKG
/// delta log (which also deterministically drives cluster maintenance),
/// the quantum's AKG statistics, and the events reported to the tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRecord {
    pub(crate) record: QuantumRecord,
    pub(crate) akg_deltas: Vec<GraphDelta>,
    pub(crate) akg_stats: AkgQuantumStats,
    pub(crate) events: Vec<DetectedEvent>,
}

impl DeltaRecord {
    /// The quantum this record transitions the detector into.
    pub fn quantum(&self) -> u64 {
        self.record.index
    }

    /// Messages aggregated into the quantum.
    pub fn message_count(&self) -> usize {
        self.record.message_count
    }

    /// Number of AKG deltas logged for the quantum.
    pub fn delta_count(&self) -> usize {
        self.akg_deltas.len()
    }

    /// Serialises the record to a [`Value`] (the JSON journal form).
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("record", self.record.to_json()),
            (
                "akg_deltas",
                Value::arr(self.akg_deltas.iter().map(|d| d.to_json())),
            ),
            ("akg_stats", self.akg_stats.to_json()),
            (
                "events",
                Value::arr(self.events.iter().map(|e| e.to_json())),
            ),
        ])
    }

    /// Reconstructs a record serialised by [`Self::to_json`].
    pub fn from_json(value: &Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            record: QuantumRecord::from_json(value.get("record")?)?,
            akg_deltas: value
                .get("akg_deltas")?
                .as_arr()?
                .iter()
                .map(GraphDelta::from_json)
                .collect::<dengraph_json::Result<_>>()?,
            akg_stats: AkgQuantumStats::from_json(value.get("akg_stats")?)?,
            events: value
                .get("events")?
                .as_arr()?
                .iter()
                .map(DetectedEvent::from_json)
                .collect::<dengraph_json::Result<_>>()?,
        })
    }

    /// Appends the compact binary encoding.
    pub fn to_bin(&self, w: &mut BinWriter) {
        self.record.to_bin(w);
        w.usize(self.akg_deltas.len());
        for d in &self.akg_deltas {
            d.to_bin(w);
        }
        self.akg_stats.to_bin(w);
        w.usize(self.events.len());
        for e in &self.events {
            e.to_bin(w);
        }
    }

    /// Reconstructs a record encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut BinReader<'_>) -> dengraph_json::Result<Self> {
        let record = QuantumRecord::from_bin(r)?;
        let deltas = r.seq_len(2)?;
        let mut akg_deltas = Vec::with_capacity(deltas);
        for _ in 0..deltas {
            akg_deltas.push(GraphDelta::from_bin(r)?);
        }
        let akg_stats = AkgQuantumStats::from_bin(r)?;
        let events = r.seq_len(4)?;
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            out.push(DetectedEvent::from_bin(r)?);
        }
        Ok(Self {
            record,
            akg_deltas,
            akg_stats,
            events: out,
        })
    }
}

impl Encode for DeltaRecord {
    fn encode_json(&self) -> Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut BinWriter) {
        self.to_bin(w)
    }
}

impl Decode for DeltaRecord {
    fn decode_json(value: &Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint documents
// ---------------------------------------------------------------------------

/// Payload methods of a binary checkpoint container.
const METHOD_RAW: u8 = 0;
const METHOD_LZSS: u8 = 1;

/// Encodes the complete detector as a standalone checkpoint document in
/// the requested wire format: JSON text, or the headered binary layout
/// whose payload is LZSS-compressed (the struct encodings strip JSON's
/// framing; the container compression then folds the remaining
/// redundancy — interner words, repeated column structure — typically
/// another ~2×).
pub(crate) fn encode_checkpoint_document(detector: &EventDetector, format: WireFormat) -> Vec<u8> {
    match format {
        WireFormat::Json => dengraph_json::to_string(&detector.to_json()).into_bytes(),
        WireFormat::Binary => {
            let mut body = BinWriter::new();
            detector.to_bin(&mut body);
            let packed = dengraph_json::lz::compress(body.as_slice());
            let mut w = BinWriter::new();
            w.raw(&CHECKPOINT_MAGIC);
            w.u64(CONTAINER_VERSION);
            // Store whichever payload is smaller; tiny or incompressible
            // states fall back to the raw body.
            if packed.len() < body.len() {
                w.byte(METHOD_LZSS);
                w.raw(&packed);
            } else {
                w.byte(METHOD_RAW);
                w.raw(body.as_slice());
            }
            w.into_bytes()
        }
    }
}

/// Decodes a standalone checkpoint document, sniffing the wire format
/// from the first bytes.  Configuration validation failures surface as
/// the typed [`RestoreError::Config`], exactly like the JSON-only path.
pub(crate) fn decode_checkpoint_document(bytes: &[u8]) -> Result<EventDetector, RestoreError> {
    match WireFormat::sniff(bytes) {
        WireFormat::Json => {
            let text = std::str::from_utf8(bytes).map_err(|_| JsonError {
                message: "json checkpoint is not valid utf-8".into(),
                offset: 0,
            })?;
            let value = dengraph_json::parse(text)?;
            let config = DetectorConfig::from_json(value.get("config")?)?;
            config.validate()?;
            Ok(EventDetector::from_json_validated(config, &value)?)
        }
        WireFormat::Binary => {
            let mut r = BinReader::new(bytes);
            let magic = r.take(4)?;
            if magic != CHECKPOINT_MAGIC {
                return Err(JsonError {
                    message: "not a dengraph binary checkpoint (bad magic)".into(),
                    offset: 0,
                }
                .into());
            }
            let version = r.u64()?;
            if version != CONTAINER_VERSION {
                return Err(JsonError {
                    message: format!("unsupported binary checkpoint version {version}"),
                    offset: r.pos(),
                }
                .into());
            }
            let method = r.byte()?;
            let payload = r.take(r.remaining())?;
            let decompressed;
            let body: &[u8] = match method {
                METHOD_RAW => payload,
                METHOD_LZSS => {
                    decompressed = dengraph_json::lz::decompress(payload)?;
                    &decompressed
                }
                other => {
                    return Err(JsonError {
                        message: format!("unknown checkpoint payload method {other}"),
                        offset: 5,
                    }
                    .into())
                }
            };
            let mut r = BinReader::new(body);
            let config = DetectorConfig::from_bin(&mut r)?;
            config.validate()?;
            let detector = EventDetector::from_bin_validated(config, &mut r)?;
            r.expect_end()?;
            Ok(detector)
        }
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// An append-only checkpoint journal: snapshot frames as rebase points,
/// [`DeltaRecord`] frames between them.
///
/// Owned by a [`DetectorSession`](crate::session::DetectorSession) once
/// [`enable_journal`](crate::session::DetectorSession::enable_journal)
/// is called; one frame is appended per processed quantum.  The byte log
/// ([`Self::as_bytes`]) is the durable form — append-friendly, so a
/// deployment can stream it straight to disk or a replicated log.
#[derive(Debug)]
pub struct CheckpointJournal {
    mode: CheckpointMode,
    format: WireFormat,
    bytes: Vec<u8>,
    deltas_since_snapshot: u32,
    snapshot_frames: usize,
    delta_frames: usize,
    delta_payload_bytes: u64,
    last_snapshot_bytes: usize,
}

impl CheckpointJournal {
    /// Creates an empty journal with an explicit wire format (JSON keeps
    /// the journal greppable for debugging at a size cost).  Only
    /// [`DetectorSession::enable_journal`] constructs journals — it
    /// immediately writes the initial rebase snapshot, without which a
    /// journal cannot be restored.
    ///
    /// [`DetectorSession::enable_journal`]: crate::session::DetectorSession::enable_journal
    pub(crate) fn with_format(mode: CheckpointMode, format: WireFormat) -> Self {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC);
        let mut header = BinWriter::new();
        header.u64(CONTAINER_VERSION);
        header.byte(match format {
            WireFormat::Json => 0,
            WireFormat::Binary => 1,
        });
        bytes.extend_from_slice(header.as_slice());
        Self {
            mode,
            format,
            bytes,
            deltas_since_snapshot: 0,
            snapshot_frames: 0,
            delta_frames: 0,
            delta_payload_bytes: 0,
            last_snapshot_bytes: 0,
        }
    }

    /// The journal's checkpoint mode.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }

    /// The journal's wire format.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// The durable byte log (header plus every frame appended so far).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the journal, returning the byte log.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Total journal size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Snapshot frames written so far.
    pub fn snapshot_frames(&self) -> usize {
        self.snapshot_frames
    }

    /// Delta frames written so far.
    pub fn delta_frames(&self) -> usize {
        self.delta_frames
    }

    /// Payload bytes of the most recent snapshot frame.
    pub fn last_snapshot_bytes(&self) -> usize {
        self.last_snapshot_bytes
    }

    /// Mean payload size of a delta frame, in bytes (0.0 before the
    /// first delta) — the steady-state per-quantum durability cost.
    pub fn mean_delta_bytes(&self) -> f64 {
        if self.delta_frames == 0 {
            0.0
        } else {
            self.delta_payload_bytes as f64 / self.delta_frames as f64
        }
    }

    fn push_frame(&mut self, tag: u8, payload: &[u8]) {
        let mut head = BinWriter::new();
        head.byte(tag);
        head.usize(payload.len());
        self.bytes.extend_from_slice(head.as_slice());
        self.bytes.extend_from_slice(payload);
    }

    /// Appends a full-snapshot rebase frame.
    pub(crate) fn append_snapshot(&mut self, detector: &EventDetector) {
        let payload = encode_checkpoint_document(detector, self.format);
        self.last_snapshot_bytes = payload.len();
        self.push_frame(TAG_SNAPSHOT, &payload);
        self.snapshot_frames += 1;
        self.deltas_since_snapshot = 0;
    }

    /// Appends one processed quantum: a delta record, or a snapshot when
    /// the mode's rebase cadence (or [`CheckpointMode::Full`]) says so.
    pub(crate) fn record_quantum(&mut self, detector: &EventDetector, summary: &QuantumSummary) {
        let rebase = match self.mode {
            CheckpointMode::Full => true,
            CheckpointMode::Delta { every } => self.deltas_since_snapshot >= every.max(1),
        };
        if rebase {
            self.append_snapshot(detector);
        } else {
            let record = detector.make_delta_record(summary);
            let payload = record.encode(self.format);
            self.delta_payload_bytes += payload.len() as u64;
            self.push_frame(TAG_DELTA, &payload);
            self.delta_frames += 1;
            self.deltas_since_snapshot += 1;
        }
    }
}

/// Restores a detector from a journal byte log: decode the latest
/// snapshot frame, then replay every delta frame after it.
pub(crate) fn restore_journal_detector(bytes: &[u8]) -> Result<EventDetector, RestoreError> {
    let mut r = BinReader::new(bytes);
    let magic = r.take(4)?;
    if magic != JOURNAL_MAGIC {
        return Err(JsonError {
            message: "not a dengraph checkpoint journal (bad magic)".into(),
            offset: 0,
        }
        .into());
    }
    let version = r.u64()?;
    if version != CONTAINER_VERSION {
        return Err(JsonError {
            message: format!("unsupported journal version {version}"),
            offset: r.pos(),
        }
        .into());
    }
    let format = match r.byte()? {
        0 => WireFormat::Json,
        1 => WireFormat::Binary,
        other => {
            return Err(JsonError {
                message: format!("unknown journal format byte {other}"),
                offset: r.pos(),
            }
            .into())
        }
    };
    let mut last_snapshot: Option<&[u8]> = None;
    let mut tail: Vec<&[u8]> = Vec::new();
    while !r.is_at_end() {
        let tag = r.byte()?;
        let payload = r.bytes()?;
        match tag {
            TAG_SNAPSHOT => {
                last_snapshot = Some(payload);
                tail.clear();
            }
            TAG_DELTA => tail.push(payload),
            other => {
                return Err(JsonError {
                    message: format!("unknown journal frame tag {other}"),
                    offset: r.pos(),
                }
                .into())
            }
        }
    }
    let snapshot = last_snapshot.ok_or_else(|| JsonError {
        message: "journal contains no snapshot frame to restore from".into(),
        offset: 0,
    })?;
    let mut detector = decode_checkpoint_document(snapshot)?;
    for payload in tail {
        let record = DeltaRecord::decode(payload, format)?;
        detector.apply_delta_record(&record)?;
    }
    Ok(detector)
}
