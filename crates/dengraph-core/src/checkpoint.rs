//! Incremental checkpointing: delta records and the checkpoint journal.
//!
//! A full checkpoint re-encodes the *entire* detector — every window
//! record, the whole incremental index, all clusters and the complete
//! event tracker — even though a single quantum changes only an O(Δ)
//! slice of that state.  This module makes steady-state durability
//! proportional to the change instead:
//!
//! * a [`DeltaRecord`] captures one quantum's state transition — the
//!   pushed [`QuantumRecord`], the AKG [`GraphDelta`] log, the quantum's
//!   AKG statistics and the reported events (the tracker updates);
//! * a [`CheckpointJournal`] is an append-only frame log: full snapshots
//!   as rebase points, delta records between them, governed by
//!   [`CheckpointMode`];
//! * restore finds the latest snapshot and **replays** the journal-tail
//!   deltas on top of it.
//!
//! Replay is a pure redo: the window record is pushed as-is, the graph
//! and keyword automaton re-apply the logged deltas (no correlation is
//! re-scored), cluster maintenance re-runs the deterministic Section-5
//! algorithms from the same delta log (reproducing cluster ids exactly —
//! the property the sharded maintainer already guarantees), and the
//! tracker re-observes the logged events.  The result is bit-identical
//! to the uninterrupted run (`tests/checkpoint_resume.rs` gates this
//! across `Parallelism` × `WindowIndexMode` × [`CheckpointMode`]).
//!
//! ## Wire layout
//!
//! Binary checkpoint documents and journals both start with a magic the
//! JSON grammar cannot produce (`0xD6`), so every restore entry point
//! sniffs the format from the first bytes:
//!
//! ```text
//! checkpoint  = D6 'D' 'G' 'C'  version  detector-state
//! journal     = D6 'D' 'G' 'J'  version  format-byte  frame*
//! frame       = tag(01 snapshot | 02 delta)  len u32-LE  crc32 u32-LE  payload
//! ```
//!
//! Snapshot payloads are complete checkpoint documents (themselves
//! sniffable); delta payloads are [`DeltaRecord`]s in the journal's
//! configured [`WireFormat`].  Since PR 6 the journal frame layout is
//! the checksummed fixed-width framing of [`dengraph_json::frame`] —
//! the same byte stream whether the journal lives in memory or in the
//! segment files of [`crate::wal`] — and restoring a journal *recovers*:
//! a torn tail (truncated or corrupt final frames, e.g. from a crash
//! mid-append) rolls back to the last fully-durable quantum instead of
//! failing the restore.

use std::io;
use std::path::Path;

use dengraph_json::{BinReader, BinWriter, Decode, Encode, JsonError, Value, WireFormat};

use crate::akg::{AkgQuantumStats, GraphDelta};
use crate::config::DetectorConfig;
use crate::detector::{EventDetector, QuantumSummary};
use crate::event::DetectedEvent;
use crate::keyword_state::QuantumRecord;
use crate::session::RestoreError;
use crate::wal::{self, DurableJournalConfig, FsyncPolicy, JournalWriter, SegmentedJournal};

/// Magic prefix of a binary checkpoint document.
pub(crate) const CHECKPOINT_MAGIC: [u8; 4] =
    [dengraph_json::codec::BINARY_MAGIC_BYTE, b'D', b'G', b'C'];

/// Version of the binary checkpoint-document container (the journal
/// container is versioned separately — [`crate::wal::JOURNAL_VERSION`]).
const CONTAINER_VERSION: u64 = 1;

pub(crate) const TAG_SNAPSHOT: u8 = 1;
pub(crate) const TAG_DELTA: u8 = 2;

/// How a session checkpoints into its journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Every journal entry is a full whole-state snapshot (the ablation
    /// baseline, and the pre-PR-5 behaviour made continuous).
    Full,
    /// Append one O(quantum Δ) [`DeltaRecord`] per processed quantum,
    /// with a full snapshot rebase point after every `every` deltas.
    /// Restore cost is bounded by `every` replays; journal growth is
    /// bounded by one snapshot per `every` quanta.  `every` is clamped
    /// to at least 1.
    Delta {
        /// Delta records between consecutive snapshot rebase points.
        every: u32,
    },
}

/// One quantum's state transition, as appended to a checkpoint journal.
///
/// Everything needed to redo the quantum without re-scoring a single
/// correlation: the aggregated record that entered the window, the AKG
/// delta log (which also deterministically drives cluster maintenance),
/// the quantum's AKG statistics, and the events reported to the tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRecord {
    pub(crate) record: QuantumRecord,
    pub(crate) akg_deltas: Vec<GraphDelta>,
    pub(crate) akg_stats: AkgQuantumStats,
    pub(crate) events: Vec<DetectedEvent>,
}

impl DeltaRecord {
    /// The quantum this record transitions the detector into.
    pub fn quantum(&self) -> u64 {
        self.record.index
    }

    /// Messages aggregated into the quantum.
    pub fn message_count(&self) -> usize {
        self.record.message_count
    }

    /// Number of AKG deltas logged for the quantum.
    pub fn delta_count(&self) -> usize {
        self.akg_deltas.len()
    }

    /// Serialises the record to a [`Value`] (the JSON journal form).
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("record", self.record.to_json()),
            (
                "akg_deltas",
                Value::arr(self.akg_deltas.iter().map(|d| d.to_json())),
            ),
            ("akg_stats", self.akg_stats.to_json()),
            (
                "events",
                Value::arr(self.events.iter().map(|e| e.to_json())),
            ),
        ])
    }

    /// Reconstructs a record serialised by [`Self::to_json`].
    pub fn from_json(value: &Value) -> dengraph_json::Result<Self> {
        Ok(Self {
            record: QuantumRecord::from_json(value.get("record")?)?,
            akg_deltas: value
                .get("akg_deltas")?
                .as_arr()?
                .iter()
                .map(GraphDelta::from_json)
                .collect::<dengraph_json::Result<_>>()?,
            akg_stats: AkgQuantumStats::from_json(value.get("akg_stats")?)?,
            events: value
                .get("events")?
                .as_arr()?
                .iter()
                .map(DetectedEvent::from_json)
                .collect::<dengraph_json::Result<_>>()?,
        })
    }

    /// Appends the compact binary encoding.
    pub fn to_bin(&self, w: &mut BinWriter) {
        self.record.to_bin(w);
        w.usize(self.akg_deltas.len());
        for d in &self.akg_deltas {
            d.to_bin(w);
        }
        self.akg_stats.to_bin(w);
        w.usize(self.events.len());
        for e in &self.events {
            e.to_bin(w);
        }
    }

    /// Reconstructs a record encoded by [`Self::to_bin`].
    pub fn from_bin(r: &mut BinReader<'_>) -> dengraph_json::Result<Self> {
        let record = QuantumRecord::from_bin(r)?;
        let deltas = r.seq_len(2)?;
        let mut akg_deltas = Vec::with_capacity(deltas);
        for _ in 0..deltas {
            akg_deltas.push(GraphDelta::from_bin(r)?);
        }
        let akg_stats = AkgQuantumStats::from_bin(r)?;
        let events = r.seq_len(4)?;
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            out.push(DetectedEvent::from_bin(r)?);
        }
        Ok(Self {
            record,
            akg_deltas,
            akg_stats,
            events: out,
        })
    }
}

impl Encode for DeltaRecord {
    fn encode_json(&self) -> Value {
        self.to_json()
    }
    fn encode_bin(&self, w: &mut BinWriter) {
        self.to_bin(w)
    }
}

impl Decode for DeltaRecord {
    fn decode_json(value: &Value) -> dengraph_json::Result<Self> {
        Self::from_json(value)
    }
    fn decode_bin(r: &mut BinReader<'_>) -> dengraph_json::Result<Self> {
        Self::from_bin(r)
    }
}

/// Borrowed view of a [`DeltaRecord`] used on the per-quantum append hot
/// path: produces byte-identical encodings without first cloning the
/// window record, the AKG delta log and the event list out of the
/// detector (`delta_record_view_encodes_identically` pins the identity).
pub(crate) struct DeltaRecordView<'a> {
    pub(crate) record: &'a QuantumRecord,
    pub(crate) akg_deltas: &'a [GraphDelta],
    pub(crate) akg_stats: AkgQuantumStats,
    pub(crate) events: &'a [DetectedEvent],
}

impl Encode for DeltaRecordView<'_> {
    fn encode_json(&self) -> Value {
        Value::obj([
            ("record", self.record.to_json()),
            (
                "akg_deltas",
                Value::arr(self.akg_deltas.iter().map(|d| d.to_json())),
            ),
            ("akg_stats", self.akg_stats.to_json()),
            (
                "events",
                Value::arr(self.events.iter().map(|e| e.to_json())),
            ),
        ])
    }
    fn encode_bin(&self, w: &mut BinWriter) {
        self.record.to_bin(w);
        w.usize(self.akg_deltas.len());
        for d in self.akg_deltas {
            d.to_bin(w);
        }
        self.akg_stats.to_bin(w);
        w.usize(self.events.len());
        for e in self.events {
            e.to_bin(w);
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint documents
// ---------------------------------------------------------------------------

/// Payload methods of a binary checkpoint container.
const METHOD_RAW: u8 = 0;
const METHOD_LZSS: u8 = 1;

/// Encodes the complete detector as a standalone checkpoint document in
/// the requested wire format: JSON text, or the headered binary layout
/// whose payload is LZSS-compressed (the struct encodings strip JSON's
/// framing; the container compression then folds the remaining
/// redundancy — interner words, repeated column structure — typically
/// another ~2×).
pub(crate) fn encode_checkpoint_document(detector: &EventDetector, format: WireFormat) -> Vec<u8> {
    match format {
        WireFormat::Json => dengraph_json::to_string(&detector.to_json()).into_bytes(),
        WireFormat::Binary => {
            let mut body = BinWriter::new();
            detector.to_bin(&mut body);
            let packed = dengraph_json::lz::compress(body.as_slice());
            let mut w = BinWriter::new();
            w.raw(&CHECKPOINT_MAGIC);
            w.u64(CONTAINER_VERSION);
            // Store whichever payload is smaller; tiny or incompressible
            // states fall back to the raw body.
            if packed.len() < body.len() {
                w.byte(METHOD_LZSS);
                w.raw(&packed);
            } else {
                w.byte(METHOD_RAW);
                w.raw(body.as_slice());
            }
            w.into_bytes()
        }
    }
}

/// Decodes a standalone checkpoint document, sniffing the wire format
/// from the first bytes.  Configuration validation failures surface as
/// the typed [`RestoreError::Config`], exactly like the JSON-only path.
pub(crate) fn decode_checkpoint_document(bytes: &[u8]) -> Result<EventDetector, RestoreError> {
    match WireFormat::sniff(bytes) {
        WireFormat::Json => {
            let text = std::str::from_utf8(bytes).map_err(|_| JsonError {
                message: "json checkpoint is not valid utf-8".into(),
                offset: 0,
            })?;
            let value = dengraph_json::parse(text)?;
            let config = DetectorConfig::from_json(value.get("config")?)?;
            config.validate()?;
            Ok(EventDetector::from_json_validated(config, &value)?)
        }
        WireFormat::Binary => {
            let mut r = BinReader::new(bytes);
            let magic = r.take(4)?;
            if magic != CHECKPOINT_MAGIC {
                return Err(JsonError {
                    message: "not a dengraph binary checkpoint (bad magic)".into(),
                    offset: 0,
                }
                .into());
            }
            let version = r.u64()?;
            if version != CONTAINER_VERSION {
                return Err(JsonError {
                    message: format!("unsupported binary checkpoint version {version}"),
                    offset: r.pos(),
                }
                .into());
            }
            let method = r.byte()?;
            let payload = r.take(r.remaining())?;
            let decompressed;
            let body: &[u8] = match method {
                METHOD_RAW => payload,
                METHOD_LZSS => {
                    decompressed = dengraph_json::lz::decompress(payload)?;
                    &decompressed
                }
                other => {
                    return Err(JsonError {
                        message: format!("unknown checkpoint payload method {other}"),
                        offset: 5,
                    }
                    .into())
                }
            };
            let mut r = BinReader::new(body);
            let config = DetectorConfig::from_bin(&mut r)?;
            config.validate()?;
            let detector = EventDetector::from_bin_validated(config, &mut r)?;
            r.expect_end()?;
            Ok(detector)
        }
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// Where a [`CheckpointJournal`]'s frames go.
#[derive(Debug)]
enum JournalBackend {
    /// The PR-5 in-memory byte log (tests, ablations, callers that ship
    /// the bytes to their own storage).
    Memory(JournalWriter<Vec<u8>>),
    /// The durable on-disk backend: rotating, compacting segment files.
    Durable(SegmentedJournal),
}

/// An append-only checkpoint journal: snapshot frames as rebase points,
/// [`DeltaRecord`] frames between them.
///
/// Owned by a [`DetectorSession`](crate::session::DetectorSession) once
/// [`enable_journal`](crate::session::DetectorSession::enable_journal)
/// (in-memory byte log, [`Self::memory_bytes`]) or
/// [`enable_durable_journal`](crate::session::DetectorSession::enable_durable_journal)
/// (file-backed write-ahead log) is called; one frame is appended per
/// processed quantum.
///
/// Durable appends can fail.  Because they run inside the infallible
/// per-quantum hot path, the first I/O error is latched
/// ([`Self::io_error`]) and the journal stops appending — the detector
/// keeps running, and the caller checks/clears the condition at its own
/// cadence (e.g. once per quantum batch) via
/// [`DetectorSession::journal_io_error`](crate::session::DetectorSession::journal_io_error).
pub struct CheckpointJournal {
    mode: CheckpointMode,
    format: WireFormat,
    backend: JournalBackend,
    /// First append/sync failure, latched; all later appends are skipped.
    io_error: Option<io::Error>,
    deltas_since_snapshot: u32,
    snapshot_frames: usize,
    delta_frames: usize,
    delta_payload_bytes: u64,
    last_snapshot_bytes: usize,
}

impl std::fmt::Debug for CheckpointJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointJournal")
            .field("mode", &self.mode)
            .field("format", &self.format)
            .field("durable", &self.is_durable())
            .field("io_error", &self.io_error)
            .field("snapshot_frames", &self.snapshot_frames)
            .field("delta_frames", &self.delta_frames)
            .finish()
    }
}

impl CheckpointJournal {
    /// Creates an empty in-memory journal with an explicit wire format
    /// (JSON keeps the journal greppable for debugging at a size cost).
    /// Only [`DetectorSession::enable_journal`] constructs journals — it
    /// immediately writes the initial rebase snapshot, without which a
    /// journal cannot be restored.
    ///
    /// [`DetectorSession::enable_journal`]: crate::session::DetectorSession::enable_journal
    pub(crate) fn with_format(mode: CheckpointMode, format: WireFormat) -> Self {
        let writer = JournalWriter::new(Vec::new(), format, FsyncPolicy::Never)
            .expect("writing to a Vec cannot fail");
        Self {
            mode,
            format,
            backend: JournalBackend::Memory(writer),
            io_error: None,
            deltas_since_snapshot: 0,
            snapshot_frames: 0,
            delta_frames: 0,
            delta_payload_bytes: 0,
            last_snapshot_bytes: 0,
        }
    }

    /// Opens a durable journal under `dir` and writes (and always
    /// fsyncs) the initial rebase snapshot of `detector`, then compacts
    /// any segments left behind by previous journal incarnations in the
    /// same directory — startup compaction is safe precisely because the
    /// fresh snapshot is already durable.
    pub(crate) fn open_durable(
        dir: &Path,
        config: DurableJournalConfig,
        detector: &EventDetector,
    ) -> io::Result<Self> {
        let segments =
            SegmentedJournal::create(dir, config.format, config.fsync, config.segment_bytes)?;
        let mut journal = Self {
            mode: config.mode,
            format: config.format,
            backend: JournalBackend::Durable(segments),
            io_error: None,
            deltas_since_snapshot: 0,
            snapshot_frames: 0,
            delta_frames: 0,
            delta_payload_bytes: 0,
            last_snapshot_bytes: 0,
        };
        journal.append_snapshot_inner(detector)?;
        journal.sync()?;
        if let JournalBackend::Durable(segments) = &mut journal.backend {
            segments.compact()?;
        }
        Ok(journal)
    }

    /// The journal's checkpoint mode.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }

    /// The journal's wire format.
    pub fn format(&self) -> WireFormat {
        self.format
    }

    /// The in-memory byte log — header plus every frame appended so far
    /// (`None` for a durable journal, whose bytes live in the segment
    /// files under [`Self::directory`]).
    pub fn memory_bytes(&self) -> Option<&[u8]> {
        match &self.backend {
            JournalBackend::Memory(writer) => Some(writer.sink()),
            JournalBackend::Durable(_) => None,
        }
    }

    /// Whether this journal writes to segment files rather than memory.
    pub fn is_durable(&self) -> bool {
        matches!(self.backend, JournalBackend::Durable(_))
    }

    /// The durable journal's directory (`None` for in-memory journals).
    pub fn directory(&self) -> Option<&Path> {
        match &self.backend {
            JournalBackend::Memory(_) => None,
            JournalBackend::Durable(segments) => Some(segments.dir()),
        }
    }

    /// The journal's fsync policy (in-memory journals report
    /// [`FsyncPolicy::Never`]; there is nothing to sync).
    pub fn fsync_policy(&self) -> FsyncPolicy {
        match &self.backend {
            JournalBackend::Memory(_) => FsyncPolicy::Never,
            JournalBackend::Durable(segments) => segments.fsync(),
        }
    }

    /// The first append/sync I/O failure, if any.  Once set, the journal
    /// has stopped appending (the detector keeps running); restore from
    /// the frames that did reach the log recovers the quantum before the
    /// failure.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    /// Forces all appended frames to stable storage now, regardless of
    /// [`FsyncPolicy`] (a no-op for in-memory journals).  Returns the
    /// latched error if the journal already failed.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(e) = &self.io_error {
            return Err(io::Error::new(e.kind(), e.to_string()));
        }
        let result = match &mut self.backend {
            JournalBackend::Memory(_) => Ok(()),
            JournalBackend::Durable(segments) => segments.sync(),
        };
        if let Err(e) = &result {
            self.io_error = Some(io::Error::new(e.kind(), e.to_string()));
        }
        result
    }

    /// Total journal size in bytes (on disk for durable journals, of the
    /// byte log for in-memory ones).
    pub fn len_bytes(&self) -> usize {
        match &self.backend {
            JournalBackend::Memory(writer) => writer.sink().len(),
            JournalBackend::Durable(segments) => segments.total_bytes() as usize,
        }
    }

    /// Snapshot frames written so far.
    pub fn snapshot_frames(&self) -> usize {
        self.snapshot_frames
    }

    /// Delta frames written so far.
    pub fn delta_frames(&self) -> usize {
        self.delta_frames
    }

    /// Payload bytes of the most recent snapshot frame.
    pub fn last_snapshot_bytes(&self) -> usize {
        self.last_snapshot_bytes
    }

    /// Mean payload size of a delta frame, in bytes (0.0 before the
    /// first delta) — the steady-state per-quantum durability cost.
    pub fn mean_delta_bytes(&self) -> f64 {
        if self.delta_frames == 0 {
            0.0
        } else {
            self.delta_payload_bytes as f64 / self.delta_frames as f64
        }
    }

    /// Deep-checks the journal by re-reading every byte it has written:
    /// segment headers parse and agree on the wire format, segment
    /// sequence numbers are contiguous up to the live segment, every
    /// frame passes its CRC (no torn writes in a journal that never
    /// crashed), delta payloads decode and carry strictly increasing
    /// quantum numbers, and at least one snapshot rebase point exists so
    /// the journal is restorable.  O(journal size) — a validation aid
    /// (the `invariants` feature wires it into quantum boundaries), not
    /// a hot-path check.
    pub fn validate_invariants(&self) -> Result<(), String> {
        if let Some(e) = &self.io_error {
            return Err(format!("journal latched an I/O error: {e}"));
        }
        let mut last_quantum: Option<u64> = None;
        let (snapshots, deltas) = match &self.backend {
            JournalBackend::Memory(writer) => {
                let counts =
                    validate_segment_frames(writer.sink(), self.format, &mut last_quantum, "log")?;
                // The in-memory log is never compacted, so the frame
                // counters must match the bytes exactly.
                if counts != (self.snapshot_frames, self.delta_frames) {
                    return Err(format!(
                        "byte log holds {counts:?} (snapshot, delta) frames but the counters say ({}, {})",
                        self.snapshot_frames, self.delta_frames
                    ));
                }
                counts
            }
            JournalBackend::Durable(segments) => {
                let listed = wal::list_segments(segments.dir())
                    .map_err(|e| format!("cannot list journal segments: {e}"))?;
                if listed.last().map(|&(seq, _)| seq) != Some(segments.current_seq()) {
                    return Err(format!(
                        "live segment {} is not the newest on disk ({:?})",
                        segments.current_seq(),
                        listed.last().map(|&(seq, _)| seq)
                    ));
                }
                let mut totals = (0usize, 0usize);
                let mut prev_seq: Option<u64> = None;
                // lint: allow(L001, Vec iteration in sequence order — listed is sorted)
                for (seq, path) in &listed {
                    if prev_seq.is_some_and(|p| *seq != p + 1) {
                        return Err(format!("segment sequence gap: {seq} follows {prev_seq:?}"));
                    }
                    prev_seq = Some(*seq);
                    let bytes = std::fs::read(path)
                        .map_err(|e| format!("cannot read segment {seq}: {e}"))?;
                    let label = format!("segment {seq}");
                    let counts =
                        validate_segment_frames(&bytes, self.format, &mut last_quantum, &label)?;
                    totals.0 += counts.0;
                    totals.1 += counts.1;
                }
                // Compaction drops whole old segments, so the on-disk
                // counts can only be at or below the lifetime counters.
                if totals.0 > self.snapshot_frames || totals.1 > self.delta_frames {
                    return Err(format!(
                        "disk holds {totals:?} (snapshot, delta) frames but only ({}, {}) were ever written",
                        self.snapshot_frames, self.delta_frames
                    ));
                }
                totals
            }
        };
        if snapshots == 0 {
            return Err(format!(
                "journal holds {deltas} delta frames but no snapshot rebase point"
            ));
        }
        Ok(())
    }

    fn push_frame(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        match &mut self.backend {
            JournalBackend::Memory(writer) => writer.append_frame(tag, payload),
            JournalBackend::Durable(segments) => segments.append_frame(tag, payload),
        }
    }

    /// Appends a full-snapshot rebase frame.  The statistics counters
    /// update only when the frame actually reached the log.
    fn append_snapshot_inner(&mut self, detector: &EventDetector) -> io::Result<()> {
        let payload = encode_checkpoint_document(detector, self.format);
        self.push_frame(TAG_SNAPSHOT, &payload)?;
        self.last_snapshot_bytes = payload.len();
        self.snapshot_frames += 1;
        self.deltas_since_snapshot = 0;
        Ok(())
    }

    /// Infallible wrapper over [`Self::append_snapshot_inner`] for the
    /// in-memory enable path; latches I/O failures like
    /// [`Self::record_quantum`].
    pub(crate) fn append_snapshot(&mut self, detector: &EventDetector) {
        if self.io_error.is_some() {
            return;
        }
        if let Err(e) = self.append_snapshot_inner(detector) {
            self.io_error = Some(e);
        }
    }

    /// Appends one processed quantum: a delta record, or a snapshot when
    /// the mode's rebase cadence (or [`CheckpointMode::Full`]) says so.
    ///
    /// Runs inside the infallible per-quantum pipeline, so an I/O failure
    /// is latched ([`Self::io_error`]) rather than returned; the journal
    /// stops appending from that point on.
    pub(crate) fn record_quantum(&mut self, detector: &EventDetector, summary: &QuantumSummary) {
        if self.io_error.is_some() {
            return;
        }
        if let Err(e) = self.record_quantum_inner(detector, summary) {
            self.io_error = Some(e);
        }
    }

    fn record_quantum_inner(
        &mut self,
        detector: &EventDetector,
        summary: &QuantumSummary,
    ) -> io::Result<()> {
        let rebase = match self.mode {
            CheckpointMode::Full => true,
            CheckpointMode::Delta { every } => self.deltas_since_snapshot >= every.max(1),
        };
        if rebase {
            self.append_snapshot_inner(detector)?;
            // A rebase makes every earlier segment dead weight — but only
            // once the snapshot is durable.  Under `Never` nothing is
            // synced, so compaction waits for the next explicit sync or
            // the next startup.
            if let JournalBackend::Durable(segments) = &mut self.backend {
                if segments.fsync() != FsyncPolicy::Never {
                    segments.sync()?;
                    segments.compact()?;
                }
            }
        } else {
            let payload = detector.encode_delta_record(summary, self.format);
            self.push_frame(TAG_DELTA, &payload)?;
            self.delta_payload_bytes += payload.len() as u64;
            self.delta_frames += 1;
            self.deltas_since_snapshot += 1;
        }
        Ok(())
    }
}

/// Walks one journal segment's bytes frame by frame for
/// [`CheckpointJournal::validate_invariants`]: the header must parse and
/// match the journal's wire format, every frame must pass its CRC, and
/// delta payloads must decode with strictly increasing quantum numbers
/// (threaded across segments via `last_quantum`).  Returns the
/// `(snapshot, delta)` frame counts.
fn validate_segment_frames(
    bytes: &[u8],
    format: WireFormat,
    last_quantum: &mut Option<u64>,
    label: &str,
) -> Result<(usize, usize), String> {
    let mut reader =
        wal::JournalReader::new(bytes).map_err(|e| format!("{label}: bad segment header: {e}"))?;
    if reader.format() != format {
        return Err(format!(
            "{label}: segment declares {:?} but the journal writes {:?}",
            reader.format(),
            format
        ));
    }
    let (mut snapshots, mut deltas) = (0usize, 0usize);
    loop {
        match reader.next_frame() {
            wal::JournalFrameEvent::Snapshot(_) => snapshots += 1,
            wal::JournalFrameEvent::Delta(payload) => {
                let record = DeltaRecord::decode(payload, format)
                    .map_err(|e| format!("{label}: undecodable delta frame: {e}"))?;
                if last_quantum.is_some_and(|q| record.quantum() <= q) {
                    return Err(format!(
                        "{label}: delta quantum {} does not advance past {last_quantum:?}",
                        record.quantum()
                    ));
                }
                *last_quantum = Some(record.quantum());
                deltas += 1;
            }
            wal::JournalFrameEvent::End => return Ok((snapshots, deltas)),
            wal::JournalFrameEvent::Torn { offset, reason } => {
                return Err(format!("{label}: torn frame at byte {offset}: {reason}"))
            }
        }
    }
}

/// Restores a detector from a journal byte log: decode the latest
/// snapshot frame, then replay every delta frame after it.  A torn tail
/// recovers to the last durable quantum instead of failing (see
/// [`crate::wal`]).
pub(crate) fn restore_journal_detector(bytes: &[u8]) -> Result<EventDetector, RestoreError> {
    wal::restore_detector_from_bytes(bytes).map(|(detector, _report)| detector)
}
