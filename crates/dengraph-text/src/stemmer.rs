//! Light suffix-stripping normaliser.
//!
//! Different users describing the same event use trivially inflected forms
//! ("quake"/"quakes", "warning"/"warnings").  Mapping these onto a single
//! graph node increases the spatial correlation the paper relies on without
//! pulling in a full stemming dependency.  This is intentionally much weaker
//! than a Porter stemmer: it only strips plural `-s`/`-es` and possessive
//! `'s`, and never rewrites short words where stripping is risky.

/// Normalises a single lower-cased word.
///
/// Rules (applied once, in order):
/// 1. strip a possessive `'s` / trailing apostrophe,
/// 2. strip plural `-ies` → `-y` for words of length ≥ 5,
/// 3. strip plural `-es` when preceded by `s`, `x`, `z`, `ch`, `sh`,
/// 4. strip a final `-s` (but not `-ss`) for words of length ≥ 4.
pub fn normalize(word: &str) -> String {
    let mut w = word.to_string();
    if let Some(stripped) = w.strip_suffix("'s") {
        w = stripped.to_string();
    } else if let Some(stripped) = w.strip_suffix('\'') {
        w = stripped.to_string();
    }
    if w.len() >= 5 {
        if let Some(stem) = w.strip_suffix("ies") {
            return format!("{stem}y");
        }
    }
    if w.len() >= 4 {
        if let Some(stem) = w.strip_suffix("es") {
            if stem.ends_with('s')
                || stem.ends_with('x')
                || stem.ends_with('z')
                || stem.ends_with("ch")
                || stem.ends_with("sh")
            {
                return stem.to_string();
            }
        }
    }
    if w.len() >= 4 && w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") {
        w.pop();
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_simple_plurals() {
        assert_eq!(normalize("earthquakes"), "earthquake");
        assert_eq!(normalize("warnings"), "warning");
        assert_eq!(normalize("jobs"), "job");
    }

    #[test]
    fn strips_es_plurals() {
        assert_eq!(normalize("crashes"), "crash");
        assert_eq!(normalize("boxes"), "box");
    }

    #[test]
    fn strips_ies_plurals() {
        assert_eq!(normalize("stories"), "story");
        assert_eq!(normalize("parties"), "party");
    }

    #[test]
    fn strips_possessives() {
        assert_eq!(normalize("ross's"), "ross");
        assert_eq!(normalize("obama's"), "obama");
    }

    #[test]
    fn keeps_short_and_ss_words() {
        assert_eq!(normalize("bus"), "bus");
        assert_eq!(normalize("as"), "as");
        assert_eq!(normalize("loss"), "loss");
        assert_eq!(normalize("virus"), "virus");
    }

    #[test]
    fn keeps_non_plural_words() {
        assert_eq!(normalize("turkey"), "turkey");
        assert_eq!(normalize("5.9"), "5.9");
    }

    #[test]
    fn idempotent_on_already_normalised_words() {
        for w in ["earthquake", "tornado", "warning", "story"] {
            assert_eq!(normalize(&normalize(w)), normalize(w));
        }
    }
}
