//! Tokenisation of raw microblog text.
//!
//! Microblog messages mix natural-language words with platform artefacts:
//! URLs, `@mentions`, `#hashtags`, emoticons and numbers such as "5.9"
//! (which the paper explicitly keeps — the magnitude joins the earthquake
//! cluster in Figure 1).  The tokenizer therefore classifies tokens instead
//! of blindly splitting on whitespace.

/// The syntactic class of a token as produced by [`tokenize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A plain word made of alphabetic characters.
    Word,
    /// A `#hashtag`; the leading `#` is stripped from [`Token::text`].
    Hashtag,
    /// An `@mention`; the leading `@` is stripped from [`Token::text`].
    Mention,
    /// A number, possibly with a decimal point (e.g. `5.9`, `500`).
    Number,
    /// A URL; kept so callers can drop or count it, never used as a keyword.
    Url,
}

/// A single token extracted from a message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// Lower-cased token text with any sigil (`#`, `@`) removed.
    pub text: String,
    /// Syntactic class of the token.
    pub kind: TokenKind,
}

impl Token {
    /// Convenience constructor used heavily in tests.
    pub fn new(text: impl Into<String>, kind: TokenKind) -> Self {
        Self {
            text: text.into(),
            kind,
        }
    }
}

/// Returns `true` when the character may appear inside a word token.
fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '\'' || c == '-' || c == '_'
}

/// Returns `true` when the token looks like a URL.
fn is_url(raw: &str) -> bool {
    raw.starts_with("http://")
        || raw.starts_with("https://")
        || raw.starts_with("www.")
        || raw.contains(".com/")
        || raw.contains(".ly/")
}

/// Classifies a raw whitespace-delimited chunk into zero or more tokens.
fn classify_chunk(raw: &str, out: &mut Vec<Token>) {
    if raw.is_empty() {
        return;
    }
    if is_url(raw) {
        out.push(Token::new(raw.to_ascii_lowercase(), TokenKind::Url));
        return;
    }
    let (kind, stripped) = match raw.chars().next() {
        Some('#') => (Some(TokenKind::Hashtag), &raw[1..]),
        Some('@') => (Some(TokenKind::Mention), &raw[1..]),
        _ => (None, raw),
    };
    // Split the remaining text on non-word characters so that
    // "earthquake!!!" and "turkey," yield clean words, while keeping
    // decimal numbers such as "5.9" intact.
    let mut current = String::new();
    let mut chars = stripped.chars().peekable();
    let flush = |current: &mut String, out: &mut Vec<Token>| {
        if current.is_empty() {
            return;
        }
        let text = current.to_lowercase();
        let token_kind = kind.unwrap_or_else(|| {
            if text.chars().all(|c| c.is_ascii_digit() || c == '.') {
                TokenKind::Number
            } else {
                TokenKind::Word
            }
        });
        out.push(Token {
            text,
            kind: token_kind,
        });
        current.clear();
    };
    while let Some(c) = chars.next() {
        if is_word_char(c) {
            current.push(c);
        } else if c == '.'
            && current.chars().all(|c| c.is_ascii_digit())
            && !current.is_empty()
            && chars.peek().is_some_and(|n| n.is_ascii_digit())
        {
            // Keep decimal points inside numbers ("5.9").
            current.push(c);
        } else {
            flush(&mut current, out);
        }
    }
    flush(&mut current, out);
}

/// Tokenises one message into classified, lower-cased tokens.
///
/// The output preserves message order and may contain duplicates; the
/// de-duplication into a keyword *set* happens in
/// [`crate::pipeline::KeywordPipeline`].
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::with_capacity(text.len() / 6 + 1);
    for chunk in text.split_whitespace() {
        classify_chunk(chunk, &mut out);
    }
    out
}

/// Returns only the token texts that are usable as keywords (words,
/// hashtags and numbers — not URLs or mentions).
#[deprecated(
    since = "0.1.0",
    note = "string-keyed pipeline bypass: use `pipeline::KeywordPipeline::process` (dense \
            `KeywordId`s) and resolve strings only at the reporting boundary"
)]
pub fn keyword_tokens(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| {
            matches!(
                t.kind,
                TokenKind::Word | TokenKind::Hashtag | TokenKind::Number
            )
        })
        .map(|t| t.text)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_plain_words() {
        let toks = tokenize("earthquake struck eastern Turkey");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["earthquake", "struck", "eastern", "turkey"]);
        assert!(toks.iter().all(|t| t.kind == TokenKind::Word));
    }

    #[test]
    fn lowercases_everything() {
        let toks = tokenize("BREAKING NEWS Turkey");
        assert!(toks
            .iter()
            .all(|t| t.text.chars().all(|c| !c.is_uppercase())));
    }

    #[test]
    fn classifies_hashtags_and_mentions() {
        let toks = tokenize("#jobs alert @cnn");
        assert_eq!(toks[0], Token::new("jobs", TokenKind::Hashtag));
        assert_eq!(toks[1], Token::new("alert", TokenKind::Word));
        assert_eq!(toks[2], Token::new("cnn", TokenKind::Mention));
    }

    #[test]
    fn keeps_decimal_numbers_whole() {
        let toks = tokenize("magnitude 5.9 quake");
        assert!(toks.contains(&Token::new("5.9", TokenKind::Number)));
    }

    #[test]
    fn strips_trailing_punctuation() {
        let toks = tokenize("Turkey, earthquake!!! (breaking)");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["turkey", "earthquake", "breaking"]);
    }

    #[test]
    fn detects_urls() {
        let toks = tokenize("read https://t.co/abc123 now");
        assert_eq!(toks[1].kind, TokenKind::Url);
    }

    #[test]
    #[allow(deprecated)]
    fn keyword_tokens_drop_urls_and_mentions() {
        let kws = keyword_tokens("@user check https://news.com/x quake 5.9 #turkey");
        assert_eq!(kws, vec!["check", "quake", "5.9", "turkey"]);
    }

    #[test]
    fn empty_and_whitespace_only_messages() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn hyphenated_and_apostrophe_words_survive() {
        let toks = tokenize("pro-democracy worker's rights");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["pro-democracy", "worker's", "rights"]);
    }

    #[test]
    fn sentence_final_number_is_not_glued_to_dot() {
        let toks = tokenize("death toll rises to 150.");
        assert!(toks.contains(&Token::new("150", TokenKind::Number)));
    }
}
