//! Keyword-extraction substrate for `dengraph`.
//!
//! The event-detection pipeline of Agarwal et al. (VLDB 2012) operates on
//! *keywords*, not raw message text: every microblog message is reduced to a
//! set of normalised, stop-word-free keywords before it touches the
//! correlated-keyword graph.  This crate provides that reduction:
//!
//! * [`tokenizer`] — splits raw message text into candidate tokens, handling
//!   URLs, mentions, hashtags and punctuation.
//! * [`stopwords`] — an embedded English stop-word list (the paper removes
//!   stop words before building the graph).
//! * [`stemmer`] — a light suffix-stripping normaliser so that trivially
//!   inflected forms ("earthquakes" / "earthquake") map to one node.
//! * [`pos`] — a noun heuristic used by the evaluation's precision filter
//!   ("a real event must contain at least one noun keyword", Section 7.2.2).
//! * [`interner`] — a [`KeywordId`] ↔ string interner; all graph structures
//!   work on compact integer ids.
//! * [`pipeline`] — the end-to-end `text → Vec<KeywordId>` convenience layer.
//!
//! # Example
//!
//! ```
//! use dengraph_text::pipeline::KeywordPipeline;
//!
//! let mut pipeline = KeywordPipeline::new();
//! let ids = pipeline.process("Massive earthquake struck eastern Turkey!");
//! let words: Vec<&str> = ids
//!     .iter()
//!     .map(|id| pipeline.interner().resolve(*id).unwrap())
//!     .collect();
//! assert!(words.contains(&"earthquake"));
//! assert!(words.contains(&"turkey"));
//! // stop-word-like tokens are gone
//! assert!(!words.contains(&"the"));
//! ```

pub mod interner;
pub mod pipeline;
pub mod pos;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;

pub use interner::{KeywordId, KeywordInterner, SymbolTable, UserInterner, UserSym};
pub use pipeline::{KeywordPipeline, PipelineConfig};
pub use pos::{NounHeuristic, WordClass};
#[allow(deprecated)]
pub use tokenizer::keyword_tokens;
pub use tokenizer::{tokenize, Token, TokenKind};
