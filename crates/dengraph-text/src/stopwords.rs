//! Embedded English stop-word list.
//!
//! The paper removes stop words before any keyword is allowed to become a
//! node of the correlated-keyword graph (Section 1.1, Section 3.1).  The
//! list below is the classic "long" English stop-word list extended with a
//! handful of microblog-specific fillers (`rt`, `via`, `amp`).

use std::collections::HashSet;
use std::sync::OnceLock;

/// The raw stop-word list.  Kept sorted for readability; lookup goes through
/// a lazily built [`HashSet`].
pub const STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren't",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "can't",
    "cannot",
    "could",
    "couldn't",
    "did",
    "didn't",
    "do",
    "does",
    "doesn't",
    "doing",
    "don't",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "get",
    "got",
    "had",
    "hadn't",
    "has",
    "hasn't",
    "have",
    "haven't",
    "having",
    "he",
    "he'd",
    "he'll",
    "he's",
    "her",
    "here",
    "here's",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "how's",
    "i",
    "i'd",
    "i'll",
    "i'm",
    "i've",
    "if",
    "in",
    "into",
    "is",
    "isn't",
    "it",
    "it's",
    "its",
    "itself",
    "just",
    "let's",
    "like",
    "me",
    "more",
    "most",
    "mustn't",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "shan't",
    "she",
    "she'd",
    "she'll",
    "she's",
    "should",
    "shouldn't",
    "so",
    "some",
    "such",
    "than",
    "that",
    "that's",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "there's",
    "these",
    "they",
    "they'd",
    "they'll",
    "they're",
    "they've",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "wasn't",
    "we",
    "we'd",
    "we'll",
    "we're",
    "we've",
    "were",
    "weren't",
    "what",
    "what's",
    "when",
    "when's",
    "where",
    "where's",
    "which",
    "while",
    "who",
    "who's",
    "whom",
    "why",
    "why's",
    "will",
    "with",
    "won't",
    "would",
    "wouldn't",
    "you",
    "you'd",
    "you'll",
    "you're",
    "you've",
    "your",
    "yours",
    "yourself",
    "yourselves",
    // Microblog-specific fillers.
    "rt",
    "via",
    "amp",
    "u",
    "ur",
    "im",
    "dont",
    "cant",
    "lol",
    "omg",
    "pls",
    "plz",
];

fn stopword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Returns `true` if `word` (already lower-cased) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    stopword_set().contains(word)
}

/// Removes stop words (and single-character tokens, which carry no signal)
/// from a token list in place.
pub fn remove_stopwords(words: &mut Vec<String>) {
    words.retain(|w| w.chars().count() > 1 && !is_stopword(w));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "is", "of", "you're"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["earthquake", "turkey", "tornado", "apple"] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn microblog_fillers_are_stopwords() {
        assert!(is_stopword("rt"));
        assert!(is_stopword("via"));
    }

    #[test]
    fn remove_stopwords_filters_in_place() {
        let mut words: Vec<String> = ["the", "earthquake", "struck", "a", "turkey", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        remove_stopwords(&mut words);
        assert_eq!(words, vec!["earthquake", "struck", "turkey"]);
    }

    #[test]
    fn stopword_list_is_lowercase_and_unique() {
        let mut seen = HashSet::new();
        for w in STOPWORDS {
            assert_eq!(*w, w.to_lowercase(), "stop word {w} must be lower-case");
            assert!(seen.insert(*w), "duplicate stop word {w}");
        }
    }
}
