//! Keyword interning.
//!
//! The dynamic graph, the min-hash sketches and the cluster registry all
//! work on compact [`KeywordId`]s rather than owned strings: a Twitter-scale
//! stream inserts and removes hundreds of thousands of keywords per window
//! and string keys would dominate both memory and hashing cost.

use std::collections::HashMap;

/// A compact identifier for an interned keyword.
///
/// Ids are dense (`0..len`) and never reused within one interner, so they
/// can index into side tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KeywordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A bidirectional `String ↔ KeywordId` map.
#[derive(Debug, Default, Clone)]
pub struct KeywordInterner {
    by_name: HashMap<String, KeywordId>,
    by_id: Vec<String>,
}

impl KeywordInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its stable id.  Repeated calls with the
    /// same word return the same id.
    pub fn intern(&mut self, word: &str) -> KeywordId {
        if let Some(&id) = self.by_name.get(word) {
            return id;
        }
        let id = KeywordId(
            u32::try_from(self.by_id.len()).expect("more than u32::MAX keywords interned"),
        );
        self.by_name.insert(word.to_string(), id);
        self.by_id.push(word.to_string());
        id
    }

    /// Looks up an already-interned word without inserting it.
    pub fn get(&self, word: &str) -> Option<KeywordId> {
        self.by_name.get(word).copied()
    }

    /// Resolves an id back to its string.
    pub fn resolve(&self, id: KeywordId) -> Option<&str> {
        self.by_id.get(id.index()).map(String::as_str)
    }

    /// Resolves a whole slice of ids, skipping unknown ones.
    pub fn resolve_all(&self, ids: &[KeywordId]) -> Vec<&str> {
        ids.iter().filter_map(|&id| self.resolve(id)).collect()
    }

    /// Number of distinct interned keywords.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Returns `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, w)| (KeywordId(i as u32), w.as_str()))
    }
}

/// A compact identifier for an interned user (screen name / author
/// handle).  Ids are dense (`0..len`) and never reused within one
/// interner, so they slot directly into the stream layer's `UserId`
/// newtype and index side tables without hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserSym(pub u64);

impl UserSym {
    /// Returns the raw dense id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for UserSym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A bidirectional `String ↔ UserSym` map for message authors.
///
/// The paper computes edge correlation over *user* sets, so every
/// downstream structure (per-quantum records, window refcounts, min-hash
/// sketches) is keyed by user.  Interning authors once at tokenization
/// keeps those structures on dense integers end to end; strings survive
/// only here, for the reporting boundary.
#[derive(Debug, Default, Clone)]
pub struct UserInterner {
    by_name: HashMap<String, UserSym>,
    by_id: Vec<String>,
}

impl UserInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable dense id.
    pub fn intern(&mut self, name: &str) -> UserSym {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = UserSym(self.by_id.len() as u64);
        self.by_name.insert(name.to_string(), id);
        self.by_id.push(name.to_string());
        id
    }

    /// Looks up an already-interned name without inserting it.
    pub fn get(&self, name: &str) -> Option<UserSym> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its name.
    pub fn resolve(&self, id: UserSym) -> Option<&str> {
        self.by_id.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct interned users.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Returns `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (UserSym, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, w)| (UserSym(i as u64), w.as_str()))
    }
}

/// The combined symbol table of one message stream: keywords and users,
/// both interned to dense ids at tokenization so the entire hot path —
/// window index, AKG, sketches, cluster membership — runs on integers and
/// resolves back to strings only at the reporting/sink boundary.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    /// Keyword ↔ id map.
    pub keywords: KeywordInterner,
    /// Author ↔ id map.
    pub users: UserInterner,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_interner_round_trips() {
        let mut table = SymbolTable::new();
        let a = table.users.intern("@quake_fan");
        let b = table.users.intern("@quake_fan");
        let c = table.users.intern("@other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(table.users.resolve(a), Some("@quake_fan"));
        assert_eq!(table.users.get("@other"), Some(c));
        assert_eq!(table.users.get("@missing"), None);
        assert_eq!(table.users.len(), 2);
        assert!(!table.users.is_empty());
        let names: Vec<&str> = table.users.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["@quake_fan", "@other"]);
        assert_eq!(a.raw(), 0);
        assert_eq!(UserSym(7).to_string(), "u7");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut i = KeywordInterner::new();
        let a = i.intern("earthquake");
        let b = i.intern("earthquake");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_words_get_distinct_ids() {
        let mut i = KeywordInterner::new();
        let a = i.intern("earthquake");
        let b = i.intern("turkey");
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = KeywordInterner::new();
        let id = i.intern("tornado");
        assert_eq!(i.resolve(id), Some("tornado"));
        assert_eq!(i.get("tornado"), Some(id));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.resolve(KeywordId(99)), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = KeywordInterner::new();
        for (n, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(i.intern(w).index(), n);
        }
        let words: Vec<_> = i.iter().map(|(_, w)| w).collect();
        assert_eq!(words, vec!["a", "b", "c"]);
    }

    #[test]
    fn resolve_all_skips_unknown() {
        let mut i = KeywordInterner::new();
        let a = i.intern("a");
        assert_eq!(i.resolve_all(&[a, KeywordId(42)]), vec!["a"]);
    }

    #[test]
    fn display_format() {
        assert_eq!(KeywordId(7).to_string(), "k7");
    }
}
