//! Lightweight part-of-speech heuristic.
//!
//! The paper's precision analysis (Section 7.2.2) uses the Stanford POS
//! tagger to require that a reported event cluster contain **at least one
//! noun keyword**; clusters made of non-noun words only are treated as
//! spurious.  Shipping the Stanford tagger is out of scope (it is an
//! external Java artefact), so we substitute a deterministic heuristic:
//! a small embedded lexicon of unambiguous non-nouns plus suffix rules.
//! The synthetic workload generator labels its own vocabulary, so on the
//! data used by the benchmark harness the heuristic acts as an exact
//! oracle; on free text it is a reasonable approximation.

use std::collections::HashSet;
use std::sync::OnceLock;

/// Coarse word class used by the event-quality filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WordClass {
    /// Likely a noun (default for unknown content words).
    Noun,
    /// A verb, adjective, adverb or other non-noun content word.
    OtherContent,
    /// A number (kept as keyword but never counts as the required noun).
    Number,
}

/// Words that are common in microblog chatter and clearly not nouns.
/// The list is deliberately small: the heuristic defaults to `Noun`.
const NON_NOUNS: &[&str] = &[
    "awesome",
    "amazing",
    "massive",
    "moderate",
    "huge",
    "breaking",
    "live",
    "dead",
    "new",
    "watch",
    "watching",
    "see",
    "seen",
    "look",
    "looking",
    "go",
    "going",
    "gone",
    "come",
    "coming",
    "run",
    "running",
    "struck",
    "strike",
    "hit",
    "hits",
    "found",
    "find",
    "kill",
    "kills",
    "killed",
    "die",
    "dies",
    "died",
    "win",
    "wins",
    "won",
    "lose",
    "loses",
    "lost",
    "make",
    "makes",
    "made",
    "take",
    "takes",
    "took",
    "give",
    "gives",
    "gave",
    "say",
    "says",
    "said",
    "tell",
    "tells",
    "told",
    "think",
    "thinks",
    "thought",
    "feel",
    "feels",
    "felt",
    "really",
    "very",
    "quite",
    "totally",
    "seriously",
    "literally",
    "probably",
    "maybe",
    "today",
    "tomorrow",
    "yesterday",
    "soon",
    "never",
    "always",
    "still",
    "already",
    "good",
    "bad",
    "great",
    "terrible",
    "horrible",
    "sad",
    "happy",
    "angry",
    "scared",
    "big",
    "small",
    "high",
    "low",
    "hot",
    "cold",
    "fast",
    "slow",
    "early",
    "late",
    "issued",
    "reverses",
    "seeking",
    "pounds",
    "worth",
    "more",
    "than",
    "will",
];

/// Noun-like suffixes used when a word is not in the lexicon and does not
/// look like a verb/adverb.
const NOUN_SUFFIXES: &[&str] = &[
    "tion", "sion", "ment", "ness", "ship", "hood", "ism", "ist", "ity", "age", "ance", "ence",
    "quake", "storm", "fire",
];

/// Suffixes that strongly suggest a non-noun.
const NON_NOUN_SUFFIXES: &[&str] = &["ly", "ing", "ed", "ive", "ous", "ful", "able", "ible"];

fn non_noun_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| NON_NOUNS.iter().copied().collect())
}

/// Deterministic noun heuristic.
#[derive(Debug, Default, Clone)]
pub struct NounHeuristic {
    /// Extra words the caller knows to be nouns (e.g. generator vocabulary).
    known_nouns: HashSet<String>,
    /// Extra words the caller knows to be non-nouns.
    known_other: HashSet<String>,
}

impl NounHeuristic {
    /// Creates a heuristic with only the embedded lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a word as a known noun, overriding the heuristic.
    pub fn add_known_noun(&mut self, word: impl Into<String>) {
        self.known_nouns.insert(word.into());
    }

    /// Registers a word as a known non-noun, overriding the heuristic.
    pub fn add_known_other(&mut self, word: impl Into<String>) {
        self.known_other.insert(word.into());
    }

    /// Classifies a lower-cased word.
    pub fn classify(&self, word: &str) -> WordClass {
        if word.chars().all(|c| c.is_ascii_digit() || c == '.') {
            return WordClass::Number;
        }
        if self.known_nouns.contains(word) {
            return WordClass::Noun;
        }
        if self.known_other.contains(word) || non_noun_set().contains(word) {
            return WordClass::OtherContent;
        }
        if NOUN_SUFFIXES.iter().any(|s| word.ends_with(s)) {
            return WordClass::Noun;
        }
        if NON_NOUN_SUFFIXES.iter().any(|s| word.ends_with(s)) && word.len() > 4 {
            return WordClass::OtherContent;
        }
        WordClass::Noun
    }

    /// Returns `true` when the word is classified as a noun.
    pub fn is_noun(&self, word: &str) -> bool {
        self.classify(word) == WordClass::Noun
    }

    /// Returns `true` when at least one of the words is a noun — the
    /// paper's "real event must contain a noun keyword" precision filter.
    pub fn contains_noun<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> bool {
        words.into_iter().any(|w| self.is_noun(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_nouns_are_nouns() {
        let h = NounHeuristic::new();
        for w in [
            "earthquake",
            "turkey",
            "tornado",
            "senator",
            "election",
            "apple",
        ] {
            assert_eq!(h.classify(w), WordClass::Noun, "{w}");
        }
    }

    #[test]
    fn lexicon_non_nouns_are_rejected() {
        let h = NounHeuristic::new();
        for w in ["awesome", "massive", "watch", "struck", "really"] {
            assert_eq!(h.classify(w), WordClass::OtherContent, "{w}");
        }
    }

    #[test]
    fn numbers_are_numbers() {
        let h = NounHeuristic::new();
        assert_eq!(h.classify("5.9"), WordClass::Number);
        assert_eq!(h.classify("150"), WordClass::Number);
    }

    #[test]
    fn suffix_rules_apply() {
        let h = NounHeuristic::new();
        assert_eq!(h.classify("devastation"), WordClass::Noun);
        assert_eq!(h.classify("quickly"), WordClass::OtherContent);
        assert_eq!(h.classify("flooding"), WordClass::OtherContent);
    }

    #[test]
    fn caller_overrides_win() {
        let mut h = NounHeuristic::new();
        h.add_known_noun("awesome");
        h.add_known_other("turkey");
        assert!(h.is_noun("awesome"));
        assert!(!h.is_noun("turkey"));
    }

    #[test]
    fn contains_noun_filter() {
        let h = NounHeuristic::new();
        assert!(h.contains_noun(["massive", "earthquake"]));
        assert!(!h.contains_noun(["massive", "awesome", "really"]));
        assert!(!h.contains_noun::<[&str; 0]>([]));
    }
}
