//! End-to-end keyword extraction: raw text → de-duplicated `KeywordId` set
//! (plus author interning, so a full post becomes dense ids in one call).

use crate::interner::{KeywordId, KeywordInterner, SymbolTable, UserSym};
use crate::stemmer;
use crate::stopwords;
use crate::tokenizer::{self, TokenKind};

/// Configuration of the keyword-extraction pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Keep `#hashtag` tokens as keywords (default `true`).
    pub keep_hashtags: bool,
    /// Keep numeric tokens such as `5.9` as keywords (default `true` — the
    /// paper's Figure 1 adds "5.9" to the earthquake cluster).
    pub keep_numbers: bool,
    /// Apply the light stemmer (default `true`).
    pub stem: bool,
    /// Drop tokens shorter than this many characters (default `2`).
    pub min_token_len: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            keep_hashtags: true,
            keep_numbers: true,
            stem: true,
            min_token_len: 2,
        }
    }
}

/// Stateful keyword pipeline: owns the stream's [`SymbolTable`] so
/// repeated messages map the same word to the same [`KeywordId`] and the
/// same author to the same [`UserSym`].
#[derive(Debug, Default)]
pub struct KeywordPipeline {
    config: PipelineConfig,
    symbols: SymbolTable,
}

impl KeywordPipeline {
    /// Creates a pipeline with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline with an explicit configuration.
    pub fn with_config(config: PipelineConfig) -> Self {
        Self {
            config,
            symbols: SymbolTable::new(),
        }
    }

    /// Processes one message, returning its de-duplicated keyword ids in
    /// first-occurrence order.
    pub fn process(&mut self, text: &str) -> Vec<KeywordId> {
        let mut out: Vec<KeywordId> = Vec::new();
        for token in tokenizer::tokenize(text) {
            let keep = match token.kind {
                TokenKind::Word => true,
                TokenKind::Hashtag => self.config.keep_hashtags,
                TokenKind::Number => self.config.keep_numbers,
                TokenKind::Mention | TokenKind::Url => false,
            };
            if !keep {
                continue;
            }
            let mut word = token.text;
            if token.kind != TokenKind::Number && self.config.stem {
                word = stemmer::normalize(&word);
            }
            if word.chars().count() < self.config.min_token_len && token.kind != TokenKind::Number {
                continue;
            }
            if token.kind != TokenKind::Number && stopwords::is_stopword(&word) {
                continue;
            }
            let id = self.symbols.keywords.intern(&word);
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// Processes one complete post: interns the author and extracts the
    /// keyword ids in a single call, so everything downstream of
    /// tokenization works on dense integers.  The stream layer wraps the
    /// returned [`UserSym`] in its `UserId` newtype.
    pub fn process_post(&mut self, author: &str, text: &str) -> (UserSym, Vec<KeywordId>) {
        let user = self.symbols.users.intern(author);
        (user, self.process(text))
    }

    /// Processes a message but returns keyword strings.
    #[deprecated(
        since = "0.1.0",
        note = "string-keyed read on the hot path: use `process` (dense ids) and resolve at \
                the reporting boundary via `symbols().keywords.resolve`"
    )]
    pub fn process_to_words(&mut self, text: &str) -> Vec<String> {
        self.process(text)
            .into_iter()
            .filter_map(|id| self.symbols.keywords.resolve(id).map(str::to_string))
            .collect()
    }

    /// The stream's symbol table (keywords and users).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Access to the shared keyword interner.
    pub fn interner(&self) -> &KeywordInterner {
        &self.symbols.keywords
    }

    /// Mutable access to the shared keyword interner (the workload
    /// generator interns its vocabulary up front through this).
    pub fn interner_mut(&mut self) -> &mut KeywordInterner {
        &mut self.symbols.keywords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Id-based equivalent of the deprecated `process_to_words`: process,
    /// then resolve at the boundary.
    fn words_of(p: &mut KeywordPipeline, text: &str) -> Vec<String> {
        p.process(text)
            .into_iter()
            .filter_map(|id| p.symbols().keywords.resolve(id).map(str::to_string))
            .collect()
    }

    #[test]
    fn figure1_style_message() {
        let mut p = KeywordPipeline::new();
        let words = words_of(&mut p, "A massive earthquake struck eastern Turkey today");
        assert_eq!(
            words,
            vec![
                "massive",
                "earthquake",
                "struck",
                "eastern",
                "turkey",
                "today"
            ]
        );
    }

    #[test]
    fn duplicates_within_a_message_collapse() {
        let mut p = KeywordPipeline::new();
        let ids = p.process("earthquake earthquake EARTHQUAKE");
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn same_word_across_messages_maps_to_same_id() {
        let mut p = KeywordPipeline::new();
        let a = p.process("earthquake in turkey");
        let b = p.process("turkey earthquake magnitude 5.9");
        assert_eq!(a[0], b[1]); // earthquake
        assert_eq!(a[1], b[0]); // turkey
    }

    #[test]
    fn numbers_kept_and_droppable() {
        let mut keep = KeywordPipeline::new();
        assert!(words_of(&mut keep, "magnitude 5.9").contains(&"5.9".to_string()));
        let mut drop = KeywordPipeline::with_config(PipelineConfig {
            keep_numbers: false,
            ..Default::default()
        });
        assert!(!words_of(&mut drop, "magnitude 5.9").contains(&"5.9".to_string()));
    }

    /// The deprecated string-returning read stays equivalent to the
    /// id-based path for as long as it exists.
    #[test]
    #[allow(deprecated)]
    fn deprecated_process_to_words_matches_resolving_wrapper() {
        let mut a = KeywordPipeline::new();
        let mut b = KeywordPipeline::new();
        let text = "Massive earthquake strikes eastern Turkey, magnitude 5.9";
        assert_eq!(a.process_to_words(text), words_of(&mut b, text));
    }

    #[test]
    fn process_post_interns_author_and_keywords() {
        let mut p = KeywordPipeline::new();
        let (u1, kws1) = p.process_post("@reporter", "earthquake in turkey");
        let (u2, kws2) = p.process_post("@reporter", "turkey earthquake again");
        assert_eq!(u1, u2, "same author maps to the same dense id");
        assert_eq!(kws1[0], kws2[1], "earthquake id is stable");
        assert_eq!(p.symbols().users.resolve(u1), Some("@reporter"));
        let (u3, _) = p.process_post("@witness", "quake");
        assert_ne!(u1, u3);
    }

    #[test]
    fn stemming_unifies_plurals() {
        let mut p = KeywordPipeline::new();
        let a = p.process("earthquakes");
        let b = p.process("earthquake");
        assert_eq!(a, b);
    }

    #[test]
    fn mentions_and_urls_never_become_keywords() {
        let mut p = KeywordPipeline::new();
        let words = words_of(&mut p, "@cnn breaking https://t.co/x earthquake");
        assert_eq!(words, vec!["breaking", "earthquake"]);
    }

    #[test]
    fn stop_words_removed_after_stemming() {
        let mut p = KeywordPipeline::new();
        // "gets" stems to "get" which is a stop word.
        let words = words_of(&mut p, "gets worse tornado");
        assert_eq!(words, vec!["worse", "tornado"]);
    }

    #[test]
    fn empty_message_yields_no_keywords() {
        let mut p = KeywordPipeline::new();
        assert!(p.process("").is_empty());
        assert!(p.process("the a of and").is_empty());
    }
}
