//! End-to-end keyword extraction: raw text → de-duplicated `KeywordId` set.

use crate::interner::{KeywordId, KeywordInterner};
use crate::stemmer;
use crate::stopwords;
use crate::tokenizer::{self, TokenKind};

/// Configuration of the keyword-extraction pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Keep `#hashtag` tokens as keywords (default `true`).
    pub keep_hashtags: bool,
    /// Keep numeric tokens such as `5.9` as keywords (default `true` — the
    /// paper's Figure 1 adds "5.9" to the earthquake cluster).
    pub keep_numbers: bool,
    /// Apply the light stemmer (default `true`).
    pub stem: bool,
    /// Drop tokens shorter than this many characters (default `2`).
    pub min_token_len: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            keep_hashtags: true,
            keep_numbers: true,
            stem: true,
            min_token_len: 2,
        }
    }
}

/// Stateful keyword pipeline: owns the interner so repeated messages map
/// the same word to the same [`KeywordId`].
#[derive(Debug, Default)]
pub struct KeywordPipeline {
    config: PipelineConfig,
    interner: KeywordInterner,
}

impl KeywordPipeline {
    /// Creates a pipeline with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pipeline with an explicit configuration.
    pub fn with_config(config: PipelineConfig) -> Self {
        Self {
            config,
            interner: KeywordInterner::new(),
        }
    }

    /// Processes one message, returning its de-duplicated keyword ids in
    /// first-occurrence order.
    pub fn process(&mut self, text: &str) -> Vec<KeywordId> {
        let mut out: Vec<KeywordId> = Vec::new();
        for token in tokenizer::tokenize(text) {
            let keep = match token.kind {
                TokenKind::Word => true,
                TokenKind::Hashtag => self.config.keep_hashtags,
                TokenKind::Number => self.config.keep_numbers,
                TokenKind::Mention | TokenKind::Url => false,
            };
            if !keep {
                continue;
            }
            let mut word = token.text;
            if token.kind != TokenKind::Number && self.config.stem {
                word = stemmer::normalize(&word);
            }
            if word.chars().count() < self.config.min_token_len && token.kind != TokenKind::Number {
                continue;
            }
            if token.kind != TokenKind::Number && stopwords::is_stopword(&word) {
                continue;
            }
            let id = self.interner.intern(&word);
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// Processes a message but returns keyword strings (useful in examples).
    pub fn process_to_words(&mut self, text: &str) -> Vec<String> {
        self.process(text)
            .into_iter()
            .filter_map(|id| self.interner.resolve(id).map(str::to_string))
            .collect()
    }

    /// Access to the shared interner.
    pub fn interner(&self) -> &KeywordInterner {
        &self.interner
    }

    /// Mutable access to the shared interner (the workload generator interns
    /// its vocabulary up front through this).
    pub fn interner_mut(&mut self) -> &mut KeywordInterner {
        &mut self.interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_style_message() {
        let mut p = KeywordPipeline::new();
        let words = p.process_to_words("A massive earthquake struck eastern Turkey today");
        assert_eq!(
            words,
            vec![
                "massive",
                "earthquake",
                "struck",
                "eastern",
                "turkey",
                "today"
            ]
        );
    }

    #[test]
    fn duplicates_within_a_message_collapse() {
        let mut p = KeywordPipeline::new();
        let ids = p.process("earthquake earthquake EARTHQUAKE");
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn same_word_across_messages_maps_to_same_id() {
        let mut p = KeywordPipeline::new();
        let a = p.process("earthquake in turkey");
        let b = p.process("turkey earthquake magnitude 5.9");
        assert_eq!(a[0], b[1]); // earthquake
        assert_eq!(a[1], b[0]); // turkey
    }

    #[test]
    fn numbers_kept_and_droppable() {
        let mut keep = KeywordPipeline::new();
        assert!(keep
            .process_to_words("magnitude 5.9")
            .contains(&"5.9".to_string()));
        let mut drop = KeywordPipeline::with_config(PipelineConfig {
            keep_numbers: false,
            ..Default::default()
        });
        assert!(!drop
            .process_to_words("magnitude 5.9")
            .contains(&"5.9".to_string()));
    }

    #[test]
    fn stemming_unifies_plurals() {
        let mut p = KeywordPipeline::new();
        let a = p.process("earthquakes");
        let b = p.process("earthquake");
        assert_eq!(a, b);
    }

    #[test]
    fn mentions_and_urls_never_become_keywords() {
        let mut p = KeywordPipeline::new();
        let words = p.process_to_words("@cnn breaking https://t.co/x earthquake");
        assert_eq!(words, vec!["breaking", "earthquake"]);
    }

    #[test]
    fn stop_words_removed_after_stemming() {
        let mut p = KeywordPipeline::new();
        // "gets" stems to "get" which is a stop word.
        let words = p.process_to_words("gets worse tornado");
        assert_eq!(words, vec!["worse", "tornado"]);
    }

    #[test]
    fn empty_message_yields_no_keywords() {
        let mut p = KeywordPipeline::new();
        assert!(p.process("").is_empty());
        assert!(p.process("the a of and").is_empty());
    }
}
