//! Integration-test package: test sources live in the workspace-level `tests/` directory.
