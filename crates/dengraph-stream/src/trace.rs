//! In-memory traces and their statistics.

use dengraph_text::KeywordInterner;

use crate::ground_truth::GroundTruth;
use crate::message::Message;
use crate::quantum::{batch_messages, Quantum};

/// A fully generated (or loaded) trace: the message stream plus everything
/// the evaluation needs to score a detector run against it.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Name of the generating profile.
    pub profile_name: String,
    /// The generator's round size (≈ nominal quantum).
    pub round_size: usize,
    /// All messages in arrival order.
    pub messages: Vec<Message>,
    /// The injected-event registry.
    pub ground_truth: GroundTruth,
    /// Keyword id ↔ string mapping shared by messages and ground truth.
    pub interner: KeywordInterner,
}

impl Trace {
    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` when the trace has no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Batches the trace into quanta of `delta` messages.
    pub fn quanta(&self, delta: usize) -> Vec<Quantum> {
        batch_messages(&self.messages, delta)
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut users = std::collections::HashSet::new();
        let mut keywords = std::collections::HashSet::new();
        let mut keyword_occurrences = 0usize;
        for m in &self.messages {
            users.insert(m.user);
            keyword_occurrences += m.keywords.len();
            for k in &m.keywords {
                keywords.insert(*k);
            }
        }
        TraceStats {
            messages: self.messages.len(),
            distinct_users: users.len(),
            distinct_keywords: keywords.len(),
            keyword_occurrences,
            ground_truth_events: self.ground_truth.events.len(),
            detectable_events: self.ground_truth.detectable_count(),
        }
    }

    /// Serialises the trace to JSON.
    pub fn to_json(&self) -> String {
        dengraph_json::to_string(&crate::json::trace_to_value(self))
    }

    /// Loads a trace from JSON.
    pub fn from_json(json: &str) -> dengraph_json::Result<Self> {
        crate::json::trace_from_value(&dengraph_json::parse(json)?)
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total messages.
    pub messages: usize,
    /// Number of distinct users.
    pub distinct_users: usize,
    /// Number of distinct keywords.
    pub distinct_keywords: usize,
    /// Total keyword occurrences across all messages.
    pub keyword_occurrences: usize,
    /// Number of injected ground-truth events (all kinds).
    pub ground_truth_events: usize,
    /// Number of events counting towards recall.
    pub detectable_events: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::profiles::{tw_profile, ProfileScale};
    use crate::generator::StreamGenerator;

    fn small_trace() -> Trace {
        StreamGenerator::new(tw_profile(11, ProfileScale::Small)).generate()
    }

    #[test]
    fn stats_are_consistent() {
        let t = small_trace();
        let s = t.stats();
        assert_eq!(s.messages, t.len());
        assert!(s.distinct_users > 100);
        assert!(s.distinct_keywords > 500);
        assert!(s.keyword_occurrences >= s.messages);
        assert_eq!(s.ground_truth_events, t.ground_truth.events.len());
        assert!(s.detectable_events <= s.ground_truth_events);
    }

    #[test]
    fn quanta_cover_every_message_exactly_once() {
        let t = small_trace();
        let quanta = t.quanta(160);
        let total: usize = quanta.iter().map(|q| q.len()).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn json_round_trip_preserves_messages() {
        let mut t = small_trace();
        t.messages.truncate(50); // keep the fixture small
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back.messages, t.messages);
        assert_eq!(back.profile_name, t.profile_name);
        assert_eq!(back.ground_truth, t.ground_truth);
    }

    #[test]
    fn empty_trace_helpers() {
        let t = Trace {
            profile_name: "empty".into(),
            round_size: 160,
            messages: vec![],
            ground_truth: GroundTruth::default(),
            interner: KeywordInterner::new(),
        };
        assert!(t.is_empty());
        assert!(t.quanta(10).is_empty());
        assert_eq!(t.stats().messages, 0);
    }
}
