//! The microblog message model.

use dengraph_text::KeywordId;

/// A unique microblog user.
///
/// The paper computes edge correlation over *user* ids rather than message
/// ids "so as to avoid the case of a single user flooding the same message
/// multiple times" (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

impl UserId {
    /// Returns the raw id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// One microblog message, already reduced to its keyword set.
///
/// `time` is a monotonically non-decreasing sequence number (the message
/// index in the trace); the detector only relies on ordering, never on wall
/// clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The author.
    pub user: UserId,
    /// Monotone sequence number / arrival index.
    pub time: u64,
    /// De-duplicated keyword ids of the message (stop words already removed).
    pub keywords: Vec<KeywordId>,
}

impl Message {
    /// Creates a message.
    pub fn new(user: UserId, time: u64, keywords: Vec<KeywordId>) -> Self {
        Self {
            user,
            time,
            keywords,
        }
    }

    /// Returns `true` when the message carries no usable keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_construction() {
        let m = Message::new(UserId(7), 3, vec![KeywordId(1), KeywordId(2)]);
        assert_eq!(m.user.raw(), 7);
        assert_eq!(m.time, 3);
        assert_eq!(m.keywords.len(), 2);
        assert!(!m.is_empty());
        assert!(Message::new(UserId(1), 0, vec![]).is_empty());
    }

    #[test]
    fn user_display() {
        assert_eq!(UserId(42).to_string(), "u42");
    }

    #[test]
    fn message_json_round_trip() {
        let m = Message::new(UserId(7), 3, vec![KeywordId(1)]);
        let json = dengraph_json::to_string(&crate::json::message_to_value(&m));
        let back = crate::json::message_from_value(&dengraph_json::parse(&json).unwrap()).unwrap();
        assert_eq!(m, back);
    }
}
