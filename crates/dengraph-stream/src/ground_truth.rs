//! Ground-truth registry for injected events.
//!
//! The paper compares discovered clusters against Google News headlines
//! (Section 7.1): 60 unique real-world events, of which 27 were "too weak"
//! (fewer than σ related tweets) and excluded, plus roughly six times as
//! many *local* events that never made the headlines.  The synthetic
//! workload generator records exactly which events it injected — including
//! the too-weak and local-only ones and the spurious bursts — so the
//! evaluation harness can compute precision and recall without any manual
//! labelling step.

use dengraph_text::KeywordId;

/// The kind of an injected event, mirroring the categories of Section 7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroundTruthEventKind {
    /// A real-world event that also has a "news headline" (the Google News
    /// analogue).  Counts towards recall.
    Headline,
    /// A real event that is only of local interest — no headline, but the
    /// detector should still be credited for finding it (the paper's "6×
    /// additional events").
    LocalOnly,
    /// An event with so few messages (below the high-state threshold σ)
    /// that no technique could detect it; excluded from the recall
    /// denominator, exactly as the paper excludes its 27 weak headlines.
    TooWeak,
    /// A spurious burst (advertisement, rumour): a sudden burst that dies
    /// immediately.  Matching a spurious burst costs precision.
    Spurious,
}

/// One injected event.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthEvent {
    /// Dense event id within the trace.
    pub id: u32,
    /// Human-readable name (the simulated "headline").
    pub name: String,
    /// The event's keyword vocabulary (every keyword the event can emit).
    pub keywords: Vec<KeywordId>,
    /// The subset of [`Self::keywords`] present in the simulated headline.
    pub headline_keywords: Vec<KeywordId>,
    /// Generation round (≈ quantum at the generator's round size) at which
    /// the event starts emitting messages.
    pub start_round: u64,
    /// Number of rounds the event stays active.
    pub duration_rounds: u64,
    /// Peak number of event messages per round.
    pub peak_messages_per_round: u32,
    /// Category of the event.
    pub kind: GroundTruthEventKind,
}

impl GroundTruthEvent {
    /// Returns `true` when this event should count in the recall
    /// denominator (headline or local-only, not too weak, not spurious).
    pub fn is_detectable_real_event(&self) -> bool {
        matches!(
            self.kind,
            GroundTruthEventKind::Headline | GroundTruthEventKind::LocalOnly
        )
    }
}

/// The full ground truth of a generated trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// All injected events, indexed by their id.
    pub events: Vec<GroundTruthEvent>,
}

impl GroundTruth {
    /// All events of a given kind.
    pub fn of_kind(&self, kind: GroundTruthEventKind) -> impl Iterator<Item = &GroundTruthEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events that count towards recall.
    pub fn detectable_events(&self) -> impl Iterator<Item = &GroundTruthEvent> {
        self.events.iter().filter(|e| e.is_detectable_real_event())
    }

    /// Number of events that count towards recall.
    pub fn detectable_count(&self) -> usize {
        self.detectable_events().count()
    }

    /// Number of headline events (the Google News analogue).
    pub fn headline_count(&self) -> usize {
        self.of_kind(GroundTruthEventKind::Headline).count()
    }

    /// Looks up an event by id.
    pub fn get(&self, id: u32) -> Option<&GroundTruthEvent> {
        self.events.iter().find(|e| e.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(id: u32, kind: GroundTruthEventKind) -> GroundTruthEvent {
        GroundTruthEvent {
            id,
            name: format!("event {id}"),
            keywords: vec![KeywordId(id * 10), KeywordId(id * 10 + 1)],
            headline_keywords: vec![KeywordId(id * 10)],
            start_round: 5,
            duration_rounds: 10,
            peak_messages_per_round: 20,
            kind,
        }
    }

    #[test]
    fn kind_filters_and_counts() {
        let gt = GroundTruth {
            events: vec![
                event(0, GroundTruthEventKind::Headline),
                event(1, GroundTruthEventKind::Headline),
                event(2, GroundTruthEventKind::LocalOnly),
                event(3, GroundTruthEventKind::TooWeak),
                event(4, GroundTruthEventKind::Spurious),
            ],
        };
        assert_eq!(gt.headline_count(), 2);
        assert_eq!(gt.detectable_count(), 3);
        assert_eq!(gt.of_kind(GroundTruthEventKind::Spurious).count(), 1);
        assert!(gt.get(3).unwrap().kind == GroundTruthEventKind::TooWeak);
        assert!(gt.get(99).is_none());
    }

    #[test]
    fn detectability_rules() {
        assert!(event(0, GroundTruthEventKind::Headline).is_detectable_real_event());
        assert!(event(0, GroundTruthEventKind::LocalOnly).is_detectable_real_event());
        assert!(!event(0, GroundTruthEventKind::TooWeak).is_detectable_real_event());
        assert!(!event(0, GroundTruthEventKind::Spurious).is_detectable_real_event());
    }

    #[test]
    fn json_round_trip() {
        let gt = GroundTruth {
            events: vec![event(0, GroundTruthEventKind::Headline)],
        };
        let json = dengraph_json::to_string(&crate::json::ground_truth_to_value(&gt));
        let back =
            crate::json::ground_truth_from_value(&dengraph_json::parse(&json).unwrap()).unwrap();
        assert_eq!(gt, back);
    }
}
