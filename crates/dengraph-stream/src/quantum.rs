//! Batching a message stream into quanta.
//!
//! The paper's unit of time is the *quantum* Δ: a fixed number of messages
//! (Table 2 uses 80–240 per quantum, the ground-truth study 800).  The
//! sliding window spans `w` quanta and advances one quantum at a time.

use crate::message::Message;

/// One quantum: `index` counts quanta from the start of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quantum {
    /// Zero-based quantum index.
    pub index: u64,
    /// Messages of this quantum in arrival order.
    pub messages: Vec<Message>,
}

impl Quantum {
    /// Number of messages in the quantum.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` when the quantum holds no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// Splits a message stream into quanta of `delta` messages.
///
/// The final, possibly partial, quantum is emitted too (the detector treats
/// it exactly like any other quantum).
#[derive(Debug)]
pub struct QuantumBatcher<I> {
    inner: I,
    delta: usize,
    next_index: u64,
    done: bool,
}

impl<I: Iterator<Item = Message>> QuantumBatcher<I> {
    /// Creates a batcher emitting quanta of `delta` messages (`delta ≥ 1`).
    pub fn new(inner: I, delta: usize) -> Self {
        Self {
            inner,
            delta: delta.max(1),
            next_index: 0,
            done: false,
        }
    }
}

impl<I: Iterator<Item = Message>> Iterator for QuantumBatcher<I> {
    type Item = Quantum;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut messages = Vec::with_capacity(self.delta);
        while messages.len() < self.delta {
            match self.inner.next() {
                Some(m) => messages.push(m),
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if messages.is_empty() {
            return None;
        }
        let q = Quantum {
            index: self.next_index,
            messages,
        };
        self.next_index += 1;
        Some(q)
    }
}

/// Convenience: batch a whole slice of messages.
pub fn batch_messages(messages: &[Message], delta: usize) -> Vec<Quantum> {
    QuantumBatcher::new(messages.iter().cloned(), delta).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::UserId;
    use dengraph_text::KeywordId;

    fn msgs(n: usize) -> Vec<Message> {
        (0..n)
            .map(|i| Message::new(UserId(i as u64), i as u64, vec![KeywordId(i as u32)]))
            .collect()
    }

    #[test]
    fn exact_multiple_splits_evenly() {
        let quanta = batch_messages(&msgs(12), 4);
        assert_eq!(quanta.len(), 3);
        assert!(quanta.iter().all(|q| q.len() == 4));
        assert_eq!(quanta[2].index, 2);
    }

    #[test]
    fn final_partial_quantum_is_emitted() {
        let quanta = batch_messages(&msgs(10), 4);
        assert_eq!(quanta.len(), 3);
        assert_eq!(quanta[2].len(), 2);
    }

    #[test]
    fn order_is_preserved() {
        let quanta = batch_messages(&msgs(8), 3);
        let times: Vec<u64> = quanta
            .iter()
            .flat_map(|q| q.messages.iter().map(|m| m.time))
            .collect();
        assert_eq!(times, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(batch_messages(&[], 5).is_empty());
    }

    #[test]
    fn delta_zero_is_clamped_to_one() {
        let quanta = batch_messages(&msgs(3), 0);
        assert_eq!(quanta.len(), 3);
    }
}
