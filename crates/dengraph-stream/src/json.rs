//! Hand-written JSON codecs for the stream types.
//!
//! The build environment has no crates.io access, so instead of serde the
//! trace types convert to and from the [`dengraph_json`] value model
//! explicitly.  Only the types that actually cross a process boundary are
//! covered: [`Message`], [`GroundTruth`] and [`Trace`] (including its
//! interner, stored as the word list in id order).

use dengraph_json::{JsonError, Result, Value};
use dengraph_text::{KeywordId, KeywordInterner};

use crate::ground_truth::{GroundTruth, GroundTruthEvent, GroundTruthEventKind};
use crate::message::{Message, UserId};
use crate::trace::Trace;

fn keywords_to_value(keywords: &[KeywordId]) -> Value {
    Value::arr(keywords.iter().map(|k| Value::from(k.0)))
}

fn keywords_from_value(value: &Value) -> Result<Vec<KeywordId>> {
    value
        .as_arr()?
        .iter()
        .map(|v| v.as_u32().map(KeywordId))
        .collect()
}

/// Encodes one message.
pub fn message_to_value(message: &Message) -> Value {
    Value::obj([
        ("user", Value::from(message.user.0)),
        ("time", Value::from(message.time)),
        ("keywords", keywords_to_value(&message.keywords)),
    ])
}

/// Decodes one message.
pub fn message_from_value(value: &Value) -> Result<Message> {
    Ok(Message {
        user: UserId(value.get("user")?.as_u64()?),
        time: value.get("time")?.as_u64()?,
        keywords: keywords_from_value(value.get("keywords")?)?,
    })
}

/// Appends the compact binary encoding of one message.  Keywords are
/// written in occurrence order (not delta-encoded) — the order is part of
/// the message and must round-trip exactly.
pub fn message_to_bin(message: &Message, w: &mut dengraph_json::BinWriter) {
    w.u64(message.user.0);
    w.u64(message.time);
    w.usize(message.keywords.len());
    for k in &message.keywords {
        w.u32(k.0);
    }
}

/// Decodes one message encoded by [`message_to_bin`].
pub fn message_from_bin(r: &mut dengraph_json::BinReader<'_>) -> Result<Message> {
    let user = UserId(r.u64()?);
    let time = r.u64()?;
    let count = r.seq_len(1)?;
    let mut keywords = Vec::with_capacity(count);
    for _ in 0..count {
        keywords.push(KeywordId(r.u32()?));
    }
    Ok(Message {
        user,
        time,
        keywords,
    })
}

fn kind_to_str(kind: GroundTruthEventKind) -> &'static str {
    match kind {
        GroundTruthEventKind::Headline => "headline",
        GroundTruthEventKind::LocalOnly => "local_only",
        GroundTruthEventKind::TooWeak => "too_weak",
        GroundTruthEventKind::Spurious => "spurious",
    }
}

fn kind_from_str(s: &str) -> Result<GroundTruthEventKind> {
    match s {
        "headline" => Ok(GroundTruthEventKind::Headline),
        "local_only" => Ok(GroundTruthEventKind::LocalOnly),
        "too_weak" => Ok(GroundTruthEventKind::TooWeak),
        "spurious" => Ok(GroundTruthEventKind::Spurious),
        other => Err(JsonError {
            message: format!("unknown ground-truth event kind '{other}'"),
            offset: 0,
        }),
    }
}

/// Encodes one injected event.
pub fn ground_truth_event_to_value(event: &GroundTruthEvent) -> Value {
    Value::obj([
        ("id", Value::from(event.id)),
        ("name", Value::str(&event.name)),
        ("keywords", keywords_to_value(&event.keywords)),
        (
            "headline_keywords",
            keywords_to_value(&event.headline_keywords),
        ),
        ("start_round", Value::from(event.start_round)),
        ("duration_rounds", Value::from(event.duration_rounds)),
        (
            "peak_messages_per_round",
            Value::from(event.peak_messages_per_round),
        ),
        ("kind", Value::str(kind_to_str(event.kind))),
    ])
}

/// Decodes one injected event.
pub fn ground_truth_event_from_value(value: &Value) -> Result<GroundTruthEvent> {
    Ok(GroundTruthEvent {
        id: value.get("id")?.as_u32()?,
        name: value.get("name")?.as_str()?.to_string(),
        keywords: keywords_from_value(value.get("keywords")?)?,
        headline_keywords: keywords_from_value(value.get("headline_keywords")?)?,
        start_round: value.get("start_round")?.as_u64()?,
        duration_rounds: value.get("duration_rounds")?.as_u64()?,
        peak_messages_per_round: value.get("peak_messages_per_round")?.as_u32()?,
        kind: kind_from_str(value.get("kind")?.as_str()?)?,
    })
}

/// Encodes a full ground-truth registry.
pub fn ground_truth_to_value(gt: &GroundTruth) -> Value {
    Value::obj([(
        "events",
        Value::arr(gt.events.iter().map(ground_truth_event_to_value)),
    )])
}

/// Decodes a full ground-truth registry.
pub fn ground_truth_from_value(value: &Value) -> Result<GroundTruth> {
    Ok(GroundTruth {
        events: value
            .get("events")?
            .as_arr()?
            .iter()
            .map(ground_truth_event_from_value)
            .collect::<Result<_>>()?,
    })
}

fn interner_to_value(interner: &KeywordInterner) -> Value {
    Value::arr(interner.iter().map(|(_, word)| Value::str(word)))
}

fn interner_from_value(value: &Value) -> Result<KeywordInterner> {
    let mut interner = KeywordInterner::new();
    for word in value.as_arr()? {
        interner.intern(word.as_str()?);
    }
    Ok(interner)
}

/// Encodes a whole trace.
pub fn trace_to_value(trace: &Trace) -> Value {
    Value::obj([
        ("profile_name", Value::str(&trace.profile_name)),
        ("round_size", Value::from(trace.round_size)),
        (
            "messages",
            Value::arr(trace.messages.iter().map(message_to_value)),
        ),
        ("ground_truth", ground_truth_to_value(&trace.ground_truth)),
        ("interner", interner_to_value(&trace.interner)),
    ])
}

/// Decodes a whole trace.
pub fn trace_from_value(value: &Value) -> Result<Trace> {
    Ok(Trace {
        profile_name: value.get("profile_name")?.as_str()?.to_string(),
        round_size: value.get("round_size")?.as_usize()?,
        messages: value
            .get("messages")?
            .as_arr()?
            .iter()
            .map(message_from_value)
            .collect::<Result<_>>()?,
        ground_truth: ground_truth_from_value(value.get("ground_truth")?)?,
        interner: interner_from_value(value.get("interner")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_round_trip() {
        for kind in [
            GroundTruthEventKind::Headline,
            GroundTruthEventKind::LocalOnly,
            GroundTruthEventKind::TooWeak,
            GroundTruthEventKind::Spurious,
        ] {
            assert_eq!(kind_from_str(kind_to_str(kind)).unwrap(), kind);
        }
        assert!(kind_from_str("bogus").is_err());
    }

    #[test]
    fn interner_round_trip_preserves_ids() {
        let mut interner = KeywordInterner::new();
        let quake = interner.intern("earthquake");
        let turkey = interner.intern("turkey");
        let back = interner_from_value(&interner_to_value(&interner)).unwrap();
        assert_eq!(back.get("earthquake"), Some(quake));
        assert_eq!(back.get("turkey"), Some(turkey));
        assert_eq!(back.len(), 2);
    }
}
