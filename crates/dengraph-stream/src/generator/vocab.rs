//! Zipf-distributed background vocabulary.
//!
//! Keyword frequencies in microblog chatter are heavy-tailed: a few words
//! ("love", "game", "work") appear constantly while the long tail appears
//! once.  The background generator samples from a Zipf distribution so that
//! the AKG's node-admission logic (burstiness) and edge-admission logic
//! (Jaccard correlation) both see realistic pressure: head words are always
//! bursty but never correlated, tail words are never bursty.

use dengraph_text::{KeywordId, KeywordInterner};
use rand::Rng;

/// A fixed vocabulary with a Zipf sampling distribution.
#[derive(Debug, Clone)]
pub struct ZipfVocabulary {
    keywords: Vec<KeywordId>,
    /// Cumulative probability table for binary-search sampling.
    cumulative: Vec<f64>,
}

impl ZipfVocabulary {
    /// Creates a vocabulary of `size` synthetic chatter words (`bg0000`,
    /// `bg0001`, …) interned into `interner`, with Zipf exponent `s`.
    pub fn new(size: usize, s: f64, interner: &mut KeywordInterner) -> Self {
        let size = size.max(1);
        let keywords: Vec<KeywordId> = (0..size)
            .map(|i| interner.intern(&format!("bg{i:05}")))
            .collect();
        let weights: Vec<f64> = (1..=size).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self {
            keywords,
            cumulative,
        }
    }

    /// Number of keywords in the vocabulary.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Returns `true` if the vocabulary is empty (never happens in practice).
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Samples one keyword according to the Zipf distribution.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> KeywordId {
        let u: f64 = rng.gen();
        let idx = match self.cumulative.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.keywords.len() - 1),
        };
        self.keywords[idx]
    }

    /// All keyword ids, most frequent first.
    pub fn keywords(&self) -> &[KeywordId] {
        &self.keywords
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn head_words_are_sampled_much_more_often_than_tail_words() {
        let mut interner = KeywordInterner::new();
        let vocab = ZipfVocabulary::new(1000, 1.0, &mut interner);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            let k = vocab.sample(&mut rng);
            counts[k.index()] += 1;
        }
        let head = counts[0];
        let tail: usize = counts[900..].iter().sum();
        assert!(head > 2000, "head word sampled {head} times");
        assert!(head > tail, "head {head} should dominate the tail {tail}");
    }

    #[test]
    fn sampling_stays_in_range_and_is_deterministic() {
        let mut interner = KeywordInterner::new();
        let vocab = ZipfVocabulary::new(50, 1.2, &mut interner);
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let ka = vocab.sample(&mut a);
            let kb = vocab.sample(&mut b);
            assert_eq!(ka, kb);
            assert!(ka.index() < interner.len());
        }
    }

    #[test]
    fn vocabulary_interns_distinct_words() {
        let mut interner = KeywordInterner::new();
        let vocab = ZipfVocabulary::new(10, 1.0, &mut interner);
        assert_eq!(vocab.len(), 10);
        assert_eq!(interner.len(), 10);
        assert!(!vocab.is_empty());
    }

    #[test]
    fn size_zero_is_clamped() {
        let mut interner = KeywordInterner::new();
        let vocab = ZipfVocabulary::new(0, 1.0, &mut interner);
        assert_eq!(vocab.len(), 1);
    }
}
