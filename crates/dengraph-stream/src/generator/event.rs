//! Event intensity curves.
//!
//! Section 7.2.2 observes that "real world events typically have a build-up
//! and wind-down phase … spurious events have a sudden burst and thereafter
//! they die".  The generator encodes exactly that: real events follow a
//! trapezoidal intensity curve, spurious bursts are a rectangle one or two
//! rounds wide, and too-weak events emit a trickle below any burstiness
//! threshold.

use crate::generator::EventScenario;
use crate::ground_truth::GroundTruthEventKind;

/// Number of event messages emitted in generation round `round`.
pub fn intensity_at(scenario: &EventScenario, round: u64) -> u32 {
    if round < scenario.start_round || round >= scenario.start_round + scenario.duration_rounds {
        return 0;
    }
    let offset = round - scenario.start_round;
    let duration = scenario.duration_rounds.max(1);
    let peak = scenario.peak_messages_per_round;
    match scenario.kind {
        GroundTruthEventKind::Spurious => peak,
        GroundTruthEventKind::TooWeak => peak.min(2),
        GroundTruthEventKind::Headline | GroundTruthEventKind::LocalOnly => {
            // Trapezoid: ramp up over the first third, hold, ramp down over
            // the last third.  Always at least 1 message while active.
            let ramp = (duration / 3).max(1);
            let scaled = if offset < ramp {
                // Build-up.
                peak as u64 * (offset + 1) / ramp
            } else if offset >= duration - ramp {
                // Wind-down.
                peak as u64 * (duration - offset) / ramp
            } else {
                peak as u64
            };
            (scaled as u32).max(1)
        }
    }
}

/// Total messages an event will emit over its lifetime.
pub fn total_messages(scenario: &EventScenario) -> u64 {
    (scenario.start_round..scenario.start_round + scenario.duration_rounds)
        .map(|r| intensity_at(scenario, r) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(kind: GroundTruthEventKind, duration: u64, peak: u32) -> EventScenario {
        EventScenario {
            name: "test".into(),
            keyword_names: vec!["a".into(), "b".into()],
            evolving_keyword_names: vec![],
            start_round: 10,
            duration_rounds: duration,
            peak_messages_per_round: peak,
            kind,
        }
    }

    #[test]
    fn zero_outside_the_active_window() {
        let s = scenario(GroundTruthEventKind::Headline, 9, 30);
        assert_eq!(intensity_at(&s, 9), 0);
        assert_eq!(intensity_at(&s, 19), 0);
        assert!(intensity_at(&s, 10) > 0);
        assert!(intensity_at(&s, 18) > 0);
    }

    #[test]
    fn real_events_build_up_peak_and_wind_down() {
        let s = scenario(GroundTruthEventKind::Headline, 9, 30);
        let curve: Vec<u32> = (10..19).map(|r| intensity_at(&s, r)).collect();
        // Build-up strictly below the peak at the start, peak in the middle,
        // wind-down at the end.
        assert!(curve[0] < 30);
        assert!(curve.iter().max().copied().unwrap() == 30);
        assert!(curve[8] < 30);
        assert!(curve.iter().all(|&c| c >= 1));
    }

    #[test]
    fn spurious_events_are_rectangular() {
        let s = scenario(GroundTruthEventKind::Spurious, 2, 40);
        assert_eq!(intensity_at(&s, 10), 40);
        assert_eq!(intensity_at(&s, 11), 40);
        assert_eq!(intensity_at(&s, 12), 0);
    }

    #[test]
    fn too_weak_events_stay_below_any_threshold() {
        let s = scenario(GroundTruthEventKind::TooWeak, 5, 50);
        for r in 10..15 {
            assert!(intensity_at(&s, r) <= 2);
        }
    }

    #[test]
    fn total_messages_sums_the_curve() {
        let s = scenario(GroundTruthEventKind::Spurious, 2, 40);
        assert_eq!(total_messages(&s), 80);
        let w = scenario(GroundTruthEventKind::TooWeak, 5, 50);
        assert!(total_messages(&w) <= 10);
    }

    #[test]
    fn single_round_event_is_well_defined() {
        let s = scenario(GroundTruthEventKind::Headline, 1, 10);
        assert!(intensity_at(&s, 10) >= 1);
        assert_eq!(intensity_at(&s, 11), 0);
    }
}
