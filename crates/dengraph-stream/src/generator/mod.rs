//! Synthetic microblog workload generator.
//!
//! Real Twitter traces cannot be redistributed, so the benchmark harness
//! generates traces with the same *statistical features* that the paper's
//! algorithms exploit:
//!
//! * a large background of Zipf-distributed chatter keywords whose user
//!   sets are uncorrelated (so they rarely form AKG edges),
//! * injected real-world events: a set of correlated keywords posted by
//!   many distinct users, with a build-up / peak / wind-down intensity
//!   curve and keywords that *join the event late* (the "5.9" of Figure 1),
//! * local-only events that have no news headline (the "6× additional
//!   events" of Section 7.1),
//! * too-weak events with fewer messages than the burstiness threshold can
//!   ever see (the paper's 27 excluded headlines), and
//! * spurious bursts that flare up in a single round and die (the
//!   advertisement / rumour clusters of Section 7.2.2).
//!
//! Generation is fully deterministic given the profile's seed.

pub mod event;
pub mod profiles;
pub mod vocab;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use dengraph_text::{KeywordId, KeywordInterner};

use crate::ground_truth::{GroundTruth, GroundTruthEvent, GroundTruthEventKind};
use crate::message::{Message, UserId};
use crate::trace::Trace;

use event::intensity_at;
use vocab::ZipfVocabulary;

/// Generation-side description of one injected event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventScenario {
    /// Human-readable name (the simulated headline text).
    pub name: String,
    /// Core keywords, active from the event's first round.
    pub keyword_names: Vec<String>,
    /// Late-joining keywords: `(keyword, offset in rounds after start)`.
    pub evolving_keyword_names: Vec<(String, u64)>,
    /// First round in which the event emits messages.
    pub start_round: u64,
    /// Number of rounds the event stays active.
    pub duration_rounds: u64,
    /// Peak messages per round.
    pub peak_messages_per_round: u32,
    /// Ground-truth category.
    pub kind: GroundTruthEventKind,
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamProfile {
    /// Profile name (appears in reports).
    pub name: String,
    /// Number of generation rounds.
    pub rounds: u64,
    /// Target number of messages per round (background fills up to this).
    pub round_size: usize,
    /// Size of the background vocabulary.
    pub background_vocab_size: usize,
    /// Zipf exponent of the background vocabulary.
    pub zipf_exponent: f64,
    /// Size of the background user population.
    pub background_users: u64,
    /// Minimum and maximum keywords per background message.
    pub keywords_per_background_msg: (usize, usize),
    /// Probability that an event message includes any given active event keyword.
    pub event_keyword_prob: f64,
    /// Injected events.
    pub events: Vec<EventScenario>,
    /// RNG seed; two generations with the same profile are identical.
    pub seed: u64,
}

impl StreamProfile {
    /// Total number of messages the profile will roughly produce
    /// (`rounds × round_size`, plus event overflow if any).
    pub fn approx_messages(&self) -> usize {
        self.rounds as usize * self.round_size
    }
}

/// The workload generator.
#[derive(Debug)]
pub struct StreamGenerator {
    profile: StreamProfile,
}

impl StreamGenerator {
    /// Creates a generator for the given profile.
    pub fn new(profile: StreamProfile) -> Self {
        Self { profile }
    }

    /// Generates the full trace.
    pub fn generate(&self) -> Trace {
        let profile = &self.profile;
        let mut rng = ChaCha8Rng::seed_from_u64(profile.seed);
        let mut interner = KeywordInterner::new();

        // Background vocabulary: synthetic "chatter" words.
        let vocab = ZipfVocabulary::new(
            profile.background_vocab_size,
            profile.zipf_exponent,
            &mut interner,
        );

        // Intern event keywords and build the ground-truth registry.
        let mut ground_truth = GroundTruth::default();
        let mut event_keywords: Vec<Vec<(KeywordId, u64)>> = Vec::new(); // (keyword, activation offset)
        for (idx, scenario) in profile.events.iter().enumerate() {
            let mut kws: Vec<(KeywordId, u64)> = Vec::new();
            let mut all_ids = Vec::new();
            let mut headline_ids = Vec::new();
            for name in &scenario.keyword_names {
                let id = interner.intern(name);
                kws.push((id, 0));
                all_ids.push(id);
                headline_ids.push(id);
            }
            for (name, offset) in &scenario.evolving_keyword_names {
                let id = interner.intern(name);
                kws.push((id, *offset));
                all_ids.push(id);
            }
            event_keywords.push(kws);
            ground_truth.events.push(GroundTruthEvent {
                id: idx as u32,
                name: scenario.name.clone(),
                keywords: all_ids,
                headline_keywords: headline_ids,
                start_round: scenario.start_round,
                duration_rounds: scenario.duration_rounds,
                peak_messages_per_round: scenario.peak_messages_per_round,
                kind: scenario.kind,
            });
        }

        let mut messages: Vec<Message> = Vec::with_capacity(profile.approx_messages());
        let mut time: u64 = 0;

        for round in 0..profile.rounds {
            let mut round_msgs: Vec<Message> = Vec::with_capacity(profile.round_size);

            // Event messages.
            for (idx, scenario) in profile.events.iter().enumerate() {
                let count = intensity_at(scenario, round);
                if count == 0 {
                    continue;
                }
                let active: Vec<KeywordId> = event_keywords[idx]
                    .iter()
                    .filter(|(_, offset)| round >= scenario.start_round + offset)
                    .map(|(id, _)| *id)
                    .collect();
                if active.is_empty() {
                    continue;
                }
                for _ in 0..count {
                    let user = UserId(rng.gen_range(0..profile.background_users));
                    let mut kws: Vec<KeywordId> = active
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_bool(profile.event_keyword_prob))
                        .collect();
                    if kws.len() < 2 {
                        // Every event message mentions at least two event keywords
                        // so spatial correlation can form.
                        kws = active
                            .choose_multiple(&mut rng, 2.min(active.len()))
                            .copied()
                            .collect();
                    }
                    // Mix in a little background noise.
                    if rng.gen_bool(0.3) {
                        let noise = vocab.sample(&mut rng);
                        if !kws.contains(&noise) {
                            kws.push(noise);
                        }
                    }
                    round_msgs.push(Message::new(user, 0, kws));
                }
            }

            // Background messages fill the round up to its target size.
            let background_needed = profile.round_size.saturating_sub(round_msgs.len());
            let (kmin, kmax) = profile.keywords_per_background_msg;
            for _ in 0..background_needed {
                let user = UserId(rng.gen_range(0..profile.background_users));
                let count = rng.gen_range(kmin..=kmax.max(kmin));
                let mut kws = Vec::with_capacity(count);
                for _ in 0..count {
                    let k = vocab.sample(&mut rng);
                    if !kws.contains(&k) {
                        kws.push(k);
                    }
                }
                round_msgs.push(Message::new(user, 0, kws));
            }

            // Interleave event and background messages within the round.
            round_msgs.shuffle(&mut rng);
            for mut m in round_msgs {
                m.time = time;
                time += 1;
                messages.push(m);
            }
        }

        Trace {
            profile_name: profile.name.clone(),
            round_size: profile.round_size,
            messages,
            ground_truth,
            interner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::profiles;

    fn tiny_profile() -> StreamProfile {
        StreamProfile {
            name: "tiny".into(),
            rounds: 10,
            round_size: 50,
            background_vocab_size: 200,
            zipf_exponent: 1.0,
            background_users: 500,
            keywords_per_background_msg: (3, 6),
            event_keyword_prob: 0.75,
            events: vec![EventScenario {
                name: "earthquake strikes".into(),
                keyword_names: vec![
                    "earthquake".into(),
                    "struck".into(),
                    "turkey".into(),
                    "eastern".into(),
                ],
                evolving_keyword_names: vec![("magnitude".into(), 2)],
                start_round: 3,
                duration_rounds: 5,
                peak_messages_per_round: 12,
                kind: GroundTruthEventKind::Headline,
            }],
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = StreamGenerator::new(tiny_profile()).generate();
        let b = StreamGenerator::new(tiny_profile()).generate();
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn round_size_is_respected_for_background_rounds() {
        let trace = StreamGenerator::new(tiny_profile()).generate();
        assert_eq!(trace.messages.len(), 10 * 50);
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let trace = StreamGenerator::new(tiny_profile()).generate();
        for w in trace.messages.windows(2) {
            assert!(w[0].time < w[1].time);
        }
    }

    #[test]
    fn event_keywords_appear_only_during_the_event() {
        let trace = StreamGenerator::new(tiny_profile()).generate();
        let quake = trace.interner.get("earthquake").unwrap();
        let per_round: Vec<usize> = (0..10)
            .map(|r| {
                trace
                    .messages
                    .iter()
                    .filter(|m| (m.time / 50) == r && m.keywords.contains(&quake))
                    .count()
            })
            .collect();
        assert!(
            per_round[..3].iter().all(|&c| c == 0),
            "no quake messages before round 3: {per_round:?}"
        );
        assert!(
            per_round[3..8].iter().sum::<usize>() > 0,
            "quake messages during the event"
        );
        assert!(
            per_round[8..].iter().all(|&c| c == 0),
            "no quake messages after the event"
        );
    }

    #[test]
    fn evolving_keyword_joins_late() {
        let trace = StreamGenerator::new(tiny_profile()).generate();
        let magnitude = trace.interner.get("magnitude").unwrap();
        let first_use = trace
            .messages
            .iter()
            .find(|m| m.keywords.contains(&magnitude))
            .map(|m| m.time / 50);
        assert!(
            first_use.is_none() || first_use.unwrap() >= 5,
            "magnitude joins at round 5 or later"
        );
    }

    #[test]
    fn event_messages_mention_multiple_event_keywords() {
        let trace = StreamGenerator::new(tiny_profile()).generate();
        let quake = trace.interner.get("earthquake").unwrap();
        for m in trace
            .messages
            .iter()
            .filter(|m| m.keywords.contains(&quake))
        {
            assert!(m.keywords.len() >= 2);
        }
    }

    #[test]
    fn builtin_profiles_generate_ground_truth() {
        let p = profiles::tw_profile(7, profiles::ProfileScale::Small);
        let trace = StreamGenerator::new(p).generate();
        assert!(trace.ground_truth.detectable_count() > 0);
        assert!(trace.messages.len() > 1000);
    }
}
