//! Built-in workload profiles.
//!
//! The paper evaluates on three traces:
//!
//! * the **ground-truth** trace (Section 7.1): ~1.3 M geo-filtered tweets
//!   over 18 hours, compared against 60 Google News events of which 27 were
//!   too weak to detect, plus roughly six times as many local-only events;
//! * the **Time Window (TW)** trace (Section 7.2): 10 M tweets not specific
//!   to any event; and
//! * the **Event Specific (ES)** trace: 8 M tweets around specific topics,
//!   with roughly **3× the event density** of the TW trace.
//!
//! The profiles below reproduce the *structure* of those traces at three
//! selectable scales so that unit tests (Small), the precision/recall sweep
//! (Medium) and the throughput measurements (Large) all stay tractable.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::generator::{EventScenario, StreamProfile};
use crate::ground_truth::GroundTruthEventKind;

/// How big a generated trace should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileScale {
    /// ~8 k messages; used by unit and integration tests.
    Small,
    /// ~32 k messages; used by the precision/recall sweeps.
    Medium,
    /// ~96 k messages; used by the throughput benchmarks.
    Large,
}

impl ProfileScale {
    /// Number of generation rounds at this scale.
    pub fn rounds(self) -> u64 {
        match self {
            ProfileScale::Small => 50,
            ProfileScale::Medium => 200,
            ProfileScale::Large => 600,
        }
    }
}

/// Nominal generation-round size; matches the paper's nominal quantum Δ=160.
pub const ROUND_SIZE: usize = 160;

/// One realistic template: `(name, core keywords, evolving keywords)`.
type EventTemplate = (
    &'static str,
    &'static [&'static str],
    &'static [(&'static str, u64)],
);

/// Realistic event templates.  Each template is used at most once per
/// trace; the remaining events are synthesised with unique keyword names.
const EVENT_TEMPLATES: &[EventTemplate] = &[
    (
        "earthquake strikes eastern turkey",
        &["earthquake", "struck", "eastern", "turkey"],
        &[("magnitude", 2), ("59quake", 2)],
    ),
    (
        "tornado pounds midwest",
        &["tornado", "warning", "midwest", "storm"],
        &[("shelter", 1), ("damage", 3)],
    ),
    (
        "davy jones of monkees dead",
        &["davy", "jones", "monkees", "dead"],
        &[("rip", 1)],
    ),
    (
        "dead body found at rick ross house",
        &["body", "found", "rick", "ross", "house"],
        &[("police", 2)],
    ),
    (
        "bob kerrey reverses decision and will run",
        &["bob", "kerrey", "senate", "run"],
        &[("nebraska", 1)],
    ),
    (
        "apple market value hits 500 billion",
        &["apple", "market", "value", "billion"],
        &[("poland", 1), ("stock", 2)],
    ),
    (
        "plane crash kills passengers",
        &["plane", "crash", "passengers", "airport"],
        &[("survivors", 2)],
    ),
    (
        "snow and rain forecast today",
        &["forecast", "snow", "rain", "weather"],
        &[("advisory", 1)],
    ),
    (
        "high wind warning issued for the coast",
        &["wind", "warning", "coast", "surf"],
        &[("advisory", 2)],
    ),
    (
        "milk products contaminated near fukushima",
        &["milk", "products", "fukushima", "contaminated"],
        &[("radiation", 1)],
    ),
    (
        "wildfire spreads near canyon",
        &["wildfire", "canyon", "evacuation", "acres"],
        &[("containment", 3)],
    ),
    (
        "championship game goes to overtime",
        &["championship", "game", "overtime", "buzzer"],
        &[("trophy", 2)],
    ),
];

/// Builds one synthetic event scenario with unique keyword names.
fn synthetic_event(
    idx: usize,
    kind: GroundTruthEventKind,
    start_round: u64,
    duration_rounds: u64,
    peak: u32,
) -> EventScenario {
    let core: Vec<String> = (0..4).map(|j| format!("ev{idx:03}kw{j}")).collect();
    let evolving: Vec<(String, u64)> = (4..6)
        .map(|j| (format!("ev{idx:03}kw{j}"), 1 + (j as u64 % 3)))
        .collect();
    EventScenario {
        name: format!("synthetic event {idx}"),
        keyword_names: core,
        evolving_keyword_names: evolving,
        start_round,
        duration_rounds,
        peak_messages_per_round: peak,
        kind,
    }
}

/// Builds an event from a realistic template, if one is left, otherwise a
/// synthetic one.
fn event_from_pool(
    idx: usize,
    kind: GroundTruthEventKind,
    start_round: u64,
    duration_rounds: u64,
    peak: u32,
) -> EventScenario {
    if kind == GroundTruthEventKind::Headline && idx < EVENT_TEMPLATES.len() {
        let (name, core, evolving) = EVENT_TEMPLATES[idx];
        EventScenario {
            name: name.to_string(),
            keyword_names: core.iter().map(|s| s.to_string()).collect(),
            evolving_keyword_names: evolving.iter().map(|(s, o)| (s.to_string(), *o)).collect(),
            start_round,
            duration_rounds,
            peak_messages_per_round: peak,
            kind,
        }
    } else {
        synthetic_event(idx, kind, start_round, duration_rounds, peak)
    }
}

/// Internal knobs shared by the profile constructors.
struct ProfileSpec {
    name: &'static str,
    headline: usize,
    local: usize,
    too_weak: usize,
    spurious: usize,
    peak_range: (u32, u32),
    duration_range: (u64, u64),
}

fn build_profile(spec: ProfileSpec, seed: u64, scale: ProfileScale) -> StreamProfile {
    let rounds = scale.rounds();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB10C_CAFE);
    let mut events = Vec::new();
    let mut idx = 0usize;
    let push_events = |count: usize,
                       kind: GroundTruthEventKind,
                       rng: &mut ChaCha8Rng,
                       events: &mut Vec<EventScenario>,
                       idx: &mut usize| {
        for i in 0..count {
            // Roughly every third real event is *marginal*: a short, weak
            // burst close to the burstiness threshold.  These are the events
            // the paper loses at small quanta or strict correlation
            // thresholds, which is what gives Figures 7–10 their shape.
            let marginal = matches!(
                kind,
                GroundTruthEventKind::Headline | GroundTruthEventKind::LocalOnly
            ) && i % 3 == 2;
            let duration = match kind {
                GroundTruthEventKind::Spurious => rng.gen_range(1..=2),
                _ if marginal => rng.gen_range(2..=4),
                _ => rng.gen_range(spec.duration_range.0..=spec.duration_range.1),
            };
            let latest_start = rounds.saturating_sub(duration + 2).max(2);
            let start = rng.gen_range(2..=latest_start);
            let peak = match kind {
                GroundTruthEventKind::TooWeak => 1,
                _ if marginal => rng.gen_range(4..=8),
                _ => rng.gen_range(spec.peak_range.0..=spec.peak_range.1),
            };
            events.push(event_from_pool(*idx, kind, start, duration, peak));
            *idx += 1;
        }
    };
    push_events(
        spec.headline,
        GroundTruthEventKind::Headline,
        &mut rng,
        &mut events,
        &mut idx,
    );
    push_events(
        spec.local,
        GroundTruthEventKind::LocalOnly,
        &mut rng,
        &mut events,
        &mut idx,
    );
    push_events(
        spec.too_weak,
        GroundTruthEventKind::TooWeak,
        &mut rng,
        &mut events,
        &mut idx,
    );
    push_events(
        spec.spurious,
        GroundTruthEventKind::Spurious,
        &mut rng,
        &mut events,
        &mut idx,
    );

    StreamProfile {
        name: spec.name.to_string(),
        rounds,
        round_size: ROUND_SIZE,
        background_vocab_size: 12_000,
        zipf_exponent: 1.1,
        background_users: 50_000,
        keywords_per_background_msg: (3, 7),
        event_keyword_prob: 0.75,
        events,
        seed,
    }
}

/// The Time-Window (TW) trace analogue: general chatter with a moderate
/// number of events (Section 7.2's 10 M-tweet trace).
pub fn tw_profile(seed: u64, scale: ProfileScale) -> StreamProfile {
    let factor = match scale {
        ProfileScale::Small => 1,
        ProfileScale::Medium => 3,
        ProfileScale::Large => 8,
    };
    build_profile(
        ProfileSpec {
            name: "time-window",
            headline: 4 * factor,
            local: 3 * factor,
            too_weak: 2 * factor,
            spurious: factor,
            peak_range: (14, 30),
            duration_range: (6, 14),
        },
        seed,
        scale,
    )
}

/// The Event-Specific (ES) trace analogue: roughly 3× the event density of
/// [`tw_profile`] and higher per-event intensity (Section 7.2 reports the
/// ES event density as about three times the TW density).
pub fn es_profile(seed: u64, scale: ProfileScale) -> StreamProfile {
    let factor = match scale {
        ProfileScale::Small => 1,
        ProfileScale::Medium => 3,
        ProfileScale::Large => 8,
    };
    build_profile(
        ProfileSpec {
            name: "event-specific",
            headline: 12 * factor,
            local: 9 * factor,
            too_weak: 3 * factor,
            spurious: 2 * factor,
            peak_range: (20, 40),
            duration_range: (6, 16),
        },
        seed,
        scale,
    )
}

/// A dense-AKG stress profile (not one of the paper's traces): many small
/// *pulsing* keyword families that keep re-bursting inside the detector's
/// window, so the AKG accumulates far more live edges than any one
/// quantum's delta log touches.  This is the workload where stage 3's
/// partitioning cost separates from its maintenance cost: a from-scratch
/// partition walks every AKG edge each parallel quantum, an incremental
/// component index only the deltas.
///
/// Structure (all draws from one seeded ChaCha8 stream):
///
/// * `FAMILIES` disjoint families of [`DENSE_FAMILY_KEYWORDS`] keywords
///   each; every family's messages co-mention most of its keywords, so
///   each family settles into a near-clique AKG component of
///   ~`k·(k-1)/2` edges and its own cluster.
/// * Each family re-bursts every [`DENSE_PULSE_PERIOD`] rounds (staggered
///   phase, 1–2-round pulses) — shorter than the benchmark window, so
///   dormant families stay resident and the AKG stays dense while only
///   the currently pulsing families produce deltas.
/// * Every fifth family is *mortal*: it stops pulsing halfway through the
///   trace, goes stale once the window slides past, and is torn out of
///   the AKG — exercising the component index's deletion/split path under
///   load.
/// * Background chatter is the same Zipf vocabulary as the paper traces.
pub fn dense_profile(seed: u64, scale: ProfileScale) -> StreamProfile {
    let rounds = scale.rounds();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDE45_E000);
    let mut events = Vec::new();
    for family in 0..DENSE_FAMILIES {
        let keywords: Vec<String> = (0..DENSE_FAMILY_KEYWORDS)
            .map(|j| format!("dn{family:03}k{j}"))
            .collect();
        let mortal = family % 20 == 19;
        let phase = family as u64 % DENSE_PULSE_PERIOD;
        let last_start = if mortal {
            rounds / 2
        } else {
            rounds.saturating_sub(2)
        };
        let mut start = 2 + phase;
        let mut pulse = 0usize;
        while start < last_start {
            let duration = 1;
            let peak = rng.gen_range(5..=7);
            events.push(EventScenario {
                name: format!("dense family {family} pulse {pulse}"),
                keyword_names: keywords.clone(),
                evolving_keyword_names: Vec::new(),
                start_round: start,
                duration_rounds: duration,
                peak_messages_per_round: peak,
                kind: GroundTruthEventKind::LocalOnly,
            });
            start += DENSE_PULSE_PERIOD;
            pulse += 1;
        }
    }
    StreamProfile {
        name: "dense".to_string(),
        rounds,
        round_size: ROUND_SIZE,
        // A uniformly sampled background vocabulary: every filler word
        // recurs at a rate far below the burstiness threshold, so the AKG
        // holds *only* the pulsing families (a Zipf head word would hover
        // right at the threshold and flicker in and out of the graph).
        // Filler messages carry a single keyword so they can never
        // contribute a co-occurrence pair of their own.  This keeps the
        // per-quantum delta log small relative to the resident AKG, which
        // is exactly the regime the incremental component index targets.
        background_vocab_size: 400,
        zipf_exponent: 0.0,
        background_users: 50_000,
        keywords_per_background_msg: (1, 1),
        event_keyword_prob: 0.85,
        events,
        seed,
    }
}

/// Number of pulsing keyword families in [`dense_profile`].
pub const DENSE_FAMILIES: usize = 250;

/// Keywords per dense family (each family tends to a `k`-clique).
pub const DENSE_FAMILY_KEYWORDS: usize = 6;

/// Rounds between two bursts of the same dense family.  Must stay below
/// the benchmark's window length so dormant families remain resident in
/// the AKG instead of being removed as stale, and must divide the round
/// count of every [`ProfileScale`] so that replaying the trace through an
/// already-warm session (the bench's steady-state pass) continues every
/// family's pulse schedule seamlessly.
pub const DENSE_PULSE_PERIOD: u64 = 10;

/// The ground-truth study analogue (Section 7.1 / Table 1): 60 "headline"
/// events of which 27 are too weak to ever detect, plus many local-only
/// events and a few spurious bursts.
pub fn ground_truth_profile(seed: u64, scale: ProfileScale) -> StreamProfile {
    build_profile(
        ProfileSpec {
            name: "ground-truth",
            headline: 33,
            local: 90,
            too_weak: 27,
            spurious: 8,
            peak_range: (12, 32),
            duration_range: (5, 12),
        },
        seed,
        match scale {
            // The ground-truth study needs room for 150+ events.
            ProfileScale::Small => ProfileScale::Medium,
            other => other,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tw_and_es_density_ratio_is_about_three() {
        let tw = tw_profile(1, ProfileScale::Medium);
        let es = es_profile(1, ProfileScale::Medium);
        let tw_real = tw
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    GroundTruthEventKind::TooWeak | GroundTruthEventKind::Spurious
                )
            })
            .count();
        let es_real = es
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    GroundTruthEventKind::TooWeak | GroundTruthEventKind::Spurious
                )
            })
            .count();
        assert_eq!(es_real, 3 * tw_real);
    }

    #[test]
    fn ground_truth_profile_matches_paper_structure() {
        let p = ground_truth_profile(1, ProfileScale::Medium);
        let headlines = p
            .events
            .iter()
            .filter(|e| e.kind == GroundTruthEventKind::Headline)
            .count();
        let weak = p
            .events
            .iter()
            .filter(|e| e.kind == GroundTruthEventKind::TooWeak)
            .count();
        let local = p
            .events
            .iter()
            .filter(|e| e.kind == GroundTruthEventKind::LocalOnly)
            .count();
        assert_eq!(headlines, 33);
        assert_eq!(weak, 27);
        assert!(
            local >= 2 * headlines,
            "many more local events than headlines"
        );
    }

    #[test]
    fn events_fit_inside_the_trace() {
        for p in [
            tw_profile(3, ProfileScale::Small),
            es_profile(3, ProfileScale::Small),
        ] {
            for e in &p.events {
                assert!(
                    e.start_round + e.duration_rounds <= p.rounds,
                    "{} overruns",
                    e.name
                );
            }
        }
    }

    #[test]
    fn keyword_names_are_unique_across_events() {
        let p = es_profile(5, ProfileScale::Medium);
        let mut seen = std::collections::HashSet::new();
        for e in &p.events {
            for k in e
                .keyword_names
                .iter()
                .chain(e.evolving_keyword_names.iter().map(|(k, _)| k))
            {
                // Realistic templates may share a couple of generic words
                // ("warning", "advisory"); synthetic ones never collide.
                if k.starts_with("ev") {
                    assert!(seen.insert(k.clone()), "duplicate synthetic keyword {k}");
                }
            }
        }
    }

    #[test]
    fn dense_profile_pulses_and_retires_families() {
        let p = dense_profile(7, ProfileScale::Small);
        assert_eq!(p.name, "dense");
        // Every family re-bursts: at least two pulses share the exact same
        // keyword set (the interner will dedup them into the same AKG nodes).
        let family0: Vec<&EventScenario> = p
            .events
            .iter()
            .filter(|e| e.keyword_names[0] == "dn000k0")
            .collect();
        assert!(family0.len() >= 2, "families must pulse repeatedly");
        assert!(family0
            .windows(2)
            .all(|w| w[0].keyword_names == w[1].keyword_names));
        // Mortal families stop pulsing in the first half of the trace so
        // the window can slide past them and the AKG tears them down.
        let mortal_last_start = p
            .events
            .iter()
            .filter(|e| e.keyword_names[0] == "dn019k0")
            .map(|e| e.start_round)
            .max()
            .expect("mortal family pulses at least once");
        assert!(mortal_last_start < p.rounds / 2);
        // An immortal family keeps pulsing into the final window.
        let immortal_last_start = p
            .events
            .iter()
            .filter(|e| e.keyword_names[0] == "dn000k0")
            .map(|e| e.start_round)
            .max()
            .unwrap();
        assert!(immortal_last_start + DENSE_PULSE_PERIOD >= p.rounds);
        // Determinism in the seed, like every other profile.
        assert_eq!(p, dense_profile(7, ProfileScale::Small));
        assert_ne!(p, dense_profile(8, ProfileScale::Small));
        for e in &p.events {
            assert!(e.start_round + e.duration_rounds <= p.rounds);
        }
    }

    #[test]
    fn profiles_are_deterministic_in_their_seed() {
        assert_eq!(
            tw_profile(9, ProfileScale::Small),
            tw_profile(9, ProfileScale::Small)
        );
        assert_ne!(
            tw_profile(9, ProfileScale::Small),
            tw_profile(10, ProfileScale::Small)
        );
    }

    #[test]
    fn scale_controls_rounds() {
        assert!(ProfileScale::Large.rounds() > ProfileScale::Medium.rounds());
        assert!(ProfileScale::Medium.rounds() > ProfileScale::Small.rounds());
    }
}
