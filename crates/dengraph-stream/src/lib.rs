//! Microblog stream model and synthetic workload generator for `dengraph`.
//!
//! The paper evaluates its event-detection technique on real Twitter traces
//! (a geo-filtered ground-truth trace plus the "Time Window" and "Event
//! Specific" traces of Section 7.2) and on Google News headlines as ground
//! truth.  Those artefacts cannot be redistributed, so this crate provides
//! the closest synthetic equivalent (see DESIGN.md for the substitution
//! argument):
//!
//! * [`message`] — the `(user, time, keyword set)` message model consumed by
//!   the detector; everything downstream is agnostic about where messages
//!   come from.
//! * [`quantum`] — batching a message stream into quanta of Δ messages (the
//!   unit at which the sliding window advances).
//! * [`generator`] — the synthetic workload generator: Zipfian background
//!   chatter, injected real-world events with build-up / peak / wind-down
//!   phases and evolving keyword sets, spurious bursts, and the TW / ES /
//!   ground-truth profiles used by the benchmark harness.
//! * [`ground_truth`] — the registry of injected events that the evaluation
//!   harness matches discovered clusters against.
//! * [`trace`] — an in-memory trace (messages + ground truth + interner)
//!   with summary statistics and JSON (de)serialisation.

pub mod generator;
pub mod ground_truth;
pub mod json;
pub mod message;
pub mod quantum;
pub mod trace;

pub use generator::{EventScenario, StreamGenerator, StreamProfile};
pub use ground_truth::{GroundTruth, GroundTruthEvent, GroundTruthEventKind};
pub use message::{Message, UserId};
pub use quantum::{Quantum, QuantumBatcher};
pub use trace::{Trace, TraceStats};
