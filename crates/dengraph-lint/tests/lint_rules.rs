//! Fixture-driven tests for the project lints: every rule is proven by a
//! known-bad snippet that must fire, and by allow-comment / exemption /
//! false-positive snippets that must stay silent.

use dengraph_lint::{classify, lint_source, FileClass, Rule};
use std::path::Path;

const LIB: FileClass = FileClass::Library {
    docs_required: false,
};
const LIB_DOCS: FileClass = FileClass::Library {
    docs_required: true,
};

fn lines_for(source: &str, class: FileClass, rule: Rule) -> Vec<usize> {
    lint_source(source, class)
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn l001_catches_every_hash_iteration_form() {
    let src = include_str!("fixtures/l001_hash_iteration.rs");
    let lines = lines_for(src, LIB, Rule::L001);
    // for-loop, .keys(), .values(), .iter(), .drain().
    assert_eq!(lines, vec![10, 17, 18, 19, 25]);
}

#[test]
fn l001_respects_allows_exemptions_and_vec_types() {
    let src = include_str!("fixtures/l001_allowed.rs");
    assert_eq!(lines_for(src, LIB, Rule::L001), Vec::<usize>::new());
}

#[test]
fn l001_does_not_apply_to_support_code() {
    let src = include_str!("fixtures/l001_hash_iteration.rs");
    assert_eq!(lines_for(src, FileClass::Support, Rule::L001), vec![]);
}

#[test]
fn l002_catches_panic_class_calls() {
    let src = include_str!("fixtures/l002_panics.rs");
    let lines = lines_for(src, LIB, Rule::L002);
    // unwrap, panic!, unreachable!, short expect — and nothing from the
    // invariant expect, unwrap_or, or the #[cfg(test)] module.
    assert_eq!(lines, vec![4, 9, 16, 21]);
}

#[test]
fn l003_catches_nan_unsafe_orderings() {
    let src = include_str!("fixtures/l003_float_ordering.rs");
    let lines = lines_for(src, LIB, Rule::L003);
    assert_eq!(lines, vec![4, 8]);
    // L003 applies to support code too (benches sort floats as well).
    assert_eq!(lines_for(src, FileClass::Support, Rule::L003), vec![4, 8]);
}

#[test]
fn l004_requires_safety_comments() {
    let src = include_str!("fixtures/l004_unsafe.rs");
    let lines = lines_for(src, LIB, Rule::L004);
    assert_eq!(lines, vec![4]);
}

#[test]
fn l005_requires_rustdoc_on_public_items() {
    let src = include_str!("fixtures/l005_docs.rs");
    let lines = lines_for(src, LIB_DOCS, Rule::L005);
    assert_eq!(lines, vec![3, 5]);
    // Without the docs flag the rule is off entirely.
    assert_eq!(lines_for(src, LIB, Rule::L005), vec![]);
}

#[test]
fn allow_without_reason_is_itself_a_violation() {
    let src = "fn f(m: &std::collections::HashMap<u8, u8>) -> usize {\n\
               // lint: allow(L001)\n\
               m.keys().count()\n\
               }\n";
    let violations = lint_source(src, LIB);
    assert!(
        violations
            .iter()
            .any(|v| v.rule == Rule::L001 && v.message.contains("mandatory reason")),
        "reasonless allow must be reported: {violations:?}"
    );
}

#[test]
fn allow_with_unknown_rule_is_reported() {
    let src = "fn f() {}\n// lint: allow(L999, not a rule)\n";
    let violations = lint_source(src, LIB);
    assert!(violations
        .iter()
        .any(|v| v.message.contains("unknown rule")));
}

#[test]
fn code_inside_strings_never_fires() {
    let src = r#"pub fn f() -> &'static str {
    "for k in &map { map.iter(); x.unwrap(); unsafe {} partial_cmp().unwrap() }"
}
"#;
    assert_eq!(lint_source(src, LIB), vec![]);
}

#[test]
fn classification_covers_the_workspace_layout() {
    assert_eq!(
        classify(Path::new("crates/dengraph-core/src/detector.rs")),
        Some(FileClass::Library {
            docs_required: true
        })
    );
    assert_eq!(
        classify(Path::new("crates/dengraph-graph/src/scp.rs")),
        Some(FileClass::Library {
            docs_required: false
        })
    );
    assert_eq!(
        classify(Path::new("crates/dengraph-bench/src/lib.rs")),
        Some(FileClass::Support)
    );
    assert_eq!(
        classify(Path::new("crates/dengraph-stream/src/bin/gen.rs")),
        Some(FileClass::Support)
    );
    // Crate tests/benches and anything outside crates/ are out of scope.
    assert_eq!(classify(Path::new("crates/dengraph-core/tests/x.rs")), None);
    assert_eq!(classify(Path::new("vendor/rand/src/lib.rs")), None);
    assert_eq!(classify(Path::new("tests/determinism.rs")), None);
}

#[test]
fn workspace_report_json_shape() {
    let src = include_str!("fixtures/l003_float_ordering.rs");
    let violations = lint_source(src, LIB);
    assert!(!violations.is_empty());
    // The JSON renderer is exercised through the workspace entry point in
    // CI; here we only pin the per-rule counting used to build it.
    let l003 = violations.iter().filter(|v| v.rule == Rule::L003).count();
    assert_eq!(l003, 2);
}
