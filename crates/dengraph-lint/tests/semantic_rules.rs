//! Integration tests for the semantic rules L006–L009: each rule is
//! proven by a failing fixture and an allowed fixture under
//! `tests/fixtures/`, and the real workspace is held to the same bar
//! (the `dengraph-parallel` pool must be lock-order-clean).

use dengraph_lint::resolve::Workspace;
use dengraph_lint::semantic::{analyze, analyze_single, Mode};
use dengraph_lint::Rule;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Rules hit by a fixture, with their lines, in report order.
fn hits(name: &str) -> Vec<(Rule, usize)> {
    analyze_single(&fixture(name))
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn l006_failing_fixture_reports_cycle_and_submit() {
    let hits = hits("l006_lock_order.rs");
    let l006: Vec<usize> = hits
        .iter()
        .filter(|(r, _)| *r == Rule::L006)
        .map(|&(_, line)| line)
        .collect();
    // One cycle edge in `forward` (line 20), one in `backward` (line
    // 26), and the submit under a live guard (line 33).
    assert_eq!(l006, vec![20, 26, 33], "hits: {hits:?}");
    let messages: Vec<String> = analyze_single(&fixture("l006_lock_order.rs"))
        .into_iter()
        .map(|v| v.message)
        .collect();
    assert!(
        messages.iter().any(|m| m.contains("lock-order cycle")),
        "expected a cycle message in {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("pool submit")),
        "expected a submit message in {messages:?}"
    );
}

#[test]
fn l006_allowed_fixture_is_clean() {
    assert_eq!(hits("l006_allowed.rs"), vec![]);
}

#[test]
fn l007_failing_fixture_reports_transitive_reach() {
    let all = analyze_single(&fixture("l007_panic_reach.rs"));
    assert_eq!(all.len(), 1, "hits: {all:?}");
    assert_eq!(all[0].rule, Rule::L007);
    assert_eq!(all[0].line, 13);
    // The message reconstructs the whole call path for the report.
    assert!(
        all[0].message.contains("process_quantum -> step -> widest"),
        "message: {}",
        all[0].message
    );
}

#[test]
fn l007_allowed_fixture_is_clean() {
    // `diagnostics_only` keeps an unwrap, but no entry point reaches it.
    assert_eq!(hits("l007_allowed.rs"), vec![]);
}

#[test]
fn l008_failing_fixture_reports_all_three_sinks() {
    let l008: Vec<usize> = hits("l008_untrusted_len.rs")
        .into_iter()
        .filter(|(r, _)| *r == Rule::L008)
        .map(|(_, line)| line)
        .collect();
    // `with_capacity` (line 20), `vec![0u8; len]` (line 27), and
    // `.reserve` (line 33).
    assert_eq!(l008, vec![20, 27, 33]);
}

#[test]
fn l008_allowed_fixture_is_clean() {
    assert_eq!(hits("l008_allowed.rs"), vec![]);
}

#[test]
fn l009_failing_fixture_reports_fold_and_reached_sum() {
    let l009: Vec<usize> = hits("l009_float_fold.rs")
        .into_iter()
        .filter(|(r, _)| *r == Rule::L009)
        .map(|(_, line)| line)
        .collect();
    // The fold inside the parallel closure (line 12) and the
    // turbofished sum in the helper the parallel region reaches
    // (line 17).
    assert_eq!(l009, vec![12, 17]);
}

#[test]
fn l009_allowed_fixture_is_clean() {
    assert_eq!(hits("l009_allowed.rs"), vec![]);
}

#[test]
fn real_parallel_pool_is_lock_order_clean() {
    let ws = Workspace::load(&workspace_root());
    let findings = analyze(&ws, Mode::Workspace);
    let l006: Vec<String> = findings
        .iter()
        .flat_map(|(file, vs)| {
            vs.iter()
                .filter(|v| v.rule == Rule::L006)
                .map(move |v| format!("{}:{} {}", file.display(), v.line, v.message))
        })
        .collect();
    assert_eq!(
        l006,
        Vec::<String>::new(),
        "the pool/session locks must keep one consistent order"
    );
}

#[test]
fn real_workspace_has_no_unjustified_violations() {
    let report = dengraph_lint::lint_workspace(&workspace_root()).expect("workspace walk failed");
    let surviving: Vec<String> = report
        .files
        .iter()
        .flat_map(|f| {
            f.violations
                .iter()
                .map(|v| format!("{} {}:{}", v.rule, f.path.display(), v.line))
        })
        .collect();
    assert_eq!(surviving, Vec::<String>::new());
}

#[test]
fn fingerprints_are_line_stable_and_baseline_roundtrips() {
    let report = dengraph_lint::lint_workspace(&workspace_root()).expect("workspace walk failed");
    let fps = report.fingerprints();
    let json = dengraph_lint::baseline_json(&fps);
    assert_eq!(dengraph_lint::parse_baseline(&json), fps);
    // A clean report diffs clean against its own baseline.
    assert_eq!(report.new_since(&fps), vec![]);
}

#[test]
fn enclosing_symbol_resolves_impl_methods() {
    let source = fixture("l006_lock_order.rs");
    let file = dengraph_lint::ast::parse_file(&source);
    // Line 20 is inside `Shared::forward`.
    assert_eq!(
        dengraph_lint::enclosing_symbol(&file, 20),
        "Shared::forward"
    );
    assert_eq!(
        dengraph_lint::enclosing_symbol(&file, 32),
        "submit_under_guard"
    );
    assert_eq!(dengraph_lint::enclosing_symbol(&file, 4), "<file>");
}
