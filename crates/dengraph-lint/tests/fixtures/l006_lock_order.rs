//! L006 failing fixture: an ABBA lock-order inversion plus a guard held
//! across a pool submit.  Every `lock()` here is on a declared Mutex
//! field, so lock identities resolve to `Shared::a` / `Shared::b`.
use std::sync::Mutex;

pub struct Shared {
    pub a: Mutex<Vec<u64>>,
    pub b: Mutex<Vec<u64>>,
}

pub struct Pool;

impl Pool {
    pub fn submit(&self, _job: u64) {}
}

impl Shared {
    pub fn forward(&self) -> usize {
        let first = self.a.lock().unwrap();
        let second = self.b.lock().unwrap();
        first.len() + second.len()
    }

    pub fn backward(&self) -> usize {
        let first = self.b.lock().unwrap();
        let second = self.a.lock().unwrap();
        first.len() + second.len()
    }
}

pub fn submit_under_guard(shared: &Shared, pool: &Pool) {
    let guard = shared.a.lock().unwrap();
    pool.submit(guard.len() as u64);
}
