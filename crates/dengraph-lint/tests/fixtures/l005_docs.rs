//! Fixture for L005: public items must carry rustdoc.

pub fn bad_undocumented() {}

pub struct BadStruct;

/// Documented: fine.
pub fn good_documented() {}

/// Documented through an attribute stack.
#[derive(Debug)]
#[deprecated(
    since = "0.1.0",
    note = "multi-line attribute between the doc comment and the item"
)]
pub struct GoodBehindAttrs;

#[doc(hidden)]
pub fn good_hidden_is_waived() {}

pub(crate) fn crate_visible_needs_no_docs() {}

fn private_needs_no_docs() {}
