//! L008 failing fixture: lengths decoded from wire bytes reach
//! allocations with no bounds check against the remaining input.
pub struct Reader {
    pos: usize,
}

impl Reader {
    pub fn usize(&mut self) -> Option<usize> {
        self.pos += 8;
        Some(self.pos)
    }

    pub fn remaining(&self) -> usize {
        self.pos
    }
}

pub fn decode(r: &mut Reader) -> Option<Vec<u8>> {
    let len = r.usize()?;
    let mut out = Vec::with_capacity(len);
    out.push(0);
    Some(out)
}

pub fn decode_fill(r: &mut Reader) -> Option<Vec<u8>> {
    let len = r.usize()?;
    let out = vec![0u8; len];
    Some(out)
}

pub fn decode_reserve(r: &mut Reader, out: &mut Vec<u8>) -> Option<()> {
    let extra = r.usize()?;
    out.reserve(extra);
    Some(())
}
