// Known-bad fixture: every hash-iteration form L001 must catch.
use std::collections::{HashMap, HashSet};

pub struct State {
    index: HashMap<u64, u64>,
}

pub fn bad_for_loop(set: &HashSet<u64>) -> u64 {
    let mut out = Vec::new();
    for v in set {
        out.push(*v); // order leaks into `out`
    }
    out[0]
}

pub fn bad_methods(state: &State) -> Vec<u64> {
    let mut out: Vec<u64> = state.index.keys().copied().collect();
    out.extend(state.index.values().copied());
    let pairs: Vec<(u64, u64)> = state.index.iter().map(|(k, v)| (*k, *v)).collect();
    out.push(pairs.len() as u64);
    out
}

pub fn bad_drain(map: &mut HashMap<u64, u64>) -> Vec<u64> {
    map.drain().map(|(k, _)| k).collect()
}
