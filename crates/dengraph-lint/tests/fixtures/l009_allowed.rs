//! L009 allowed fixture: the same reductions over provably ordered
//! sources — a `BTreeMap` and a sequential `Vec` — stay quiet, parallel
//! or not.
use std::collections::BTreeMap;

pub fn par_map(items: &[u64], f: impl Fn(&u64) -> f64) -> Vec<f64> {
    items.iter().map(f).collect()
}

pub fn parallel_total(items: &[u64], weights: BTreeMap<u64, f64>) -> f64 {
    let sums = par_map(items, |_item| weights.values().fold(0.0, |acc, w| acc + w));
    sums.first().copied().unwrap_or(0.0)
}

pub fn sequential_total(values: Vec<f64>) -> f64 {
    values.iter().copied().fold(0.0, |acc, v| acc + v)
}
