//! L007 allowed fixture: the entry path handles the empty case without
//! a panic-class call, and the remaining `unwrap` lives in a helper no
//! entry point can reach.
pub fn process_quantum(values: &[u64]) -> u64 {
    step(values)
}

fn step(values: &[u64]) -> u64 {
    values.iter().copied().max().unwrap_or(0)
}

pub fn diagnostics_only(values: &[u64]) -> u64 {
    values.iter().copied().max().unwrap()
}
