// Fixture: justified, exempt, and false-positive L001 cases — none may fire.
use std::collections::HashSet;

pub fn justified(set: &HashSet<u64>) -> u64 {
    let mut acc = 0;
    // lint: allow(L001, wrapping sum is commutative so the result is order-independent)
    for v in set {
        acc += *v;
    }
    acc
}

pub fn feeds_sort(set: &HashSet<u64>) -> Vec<u64> {
    let mut out: Vec<u64> = set.iter().copied().collect();
    out.sort_unstable();
    out
}

pub fn vec_is_not_a_hash_container(rows: &Vec<u64>) -> u64 {
    let mut acc = 0;
    for v in rows.iter() {
        acc += *v;
    }
    acc
}

pub fn shadowed_name() -> usize {
    let items: Vec<u64> = Vec::new();
    items.iter().count()
}
