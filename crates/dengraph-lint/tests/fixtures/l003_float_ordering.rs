// Known-bad fixture for L003: NaN-unsafe float orderings.

pub fn bad_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn bad_unwrap_or(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

pub fn good_total_cmp(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn good_handled_none(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}
