//! L009 failing fixture: an `f64` fold over a hash map's values inside
//! a closure handed to a parallel entry point, plus a turbofished
//! `.sum::<f64>()` over `.values()` in a helper the parallel region
//! reaches.
use std::collections::HashMap;

pub fn par_map(items: &[u64], f: impl Fn(&u64) -> f64) -> Vec<f64> {
    items.iter().map(f).collect()
}

pub fn parallel_total(items: &[u64], weights: HashMap<u64, f64>) -> f64 {
    let sums = par_map(items, |_item| weights.values().fold(0.0, |acc, w| acc + w));
    sums.first().copied().unwrap_or(0.0)
}

pub fn helper_total(weights: &HashMap<u64, f64>) -> f64 {
    weights.values().copied().sum::<f64>()
}

pub fn parallel_helper(items: &[u64], weights: HashMap<u64, f64>) -> Vec<f64> {
    par_map(items, move |_item| helper_total(&weights))
}
