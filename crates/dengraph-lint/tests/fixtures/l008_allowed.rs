//! L008 allowed fixture: every decoded length is bounded against the
//! remaining input before it sizes an allocation.
pub struct Reader {
    pos: usize,
}

impl Reader {
    pub fn usize(&mut self) -> Option<usize> {
        self.pos += 8;
        Some(self.pos)
    }

    pub fn seq_len(&mut self) -> Option<usize> {
        let n = self.usize()?;
        if n > self.remaining() {
            return None;
        }
        Some(n)
    }

    pub fn remaining(&self) -> usize {
        self.pos
    }
}

pub fn decode(r: &mut Reader) -> Option<Vec<u8>> {
    let len = r.usize()?;
    if len > r.remaining() {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    out.push(0);
    Some(out)
}

pub fn decode_validated(r: &mut Reader) -> Option<Vec<u8>> {
    let len = r.seq_len()?;
    let out = vec![0u8; len];
    Some(out)
}
