//! L007 failing fixture: a pipeline entry point reaches an `unwrap`
//! two calls deep — the rule must walk the call graph, not just the
//! entry's own body.
pub fn process_quantum(values: &[u64]) -> u64 {
    step(values)
}

fn step(values: &[u64]) -> u64 {
    widest(values)
}

fn widest(values: &[u64]) -> u64 {
    values.iter().copied().max().unwrap()
}
