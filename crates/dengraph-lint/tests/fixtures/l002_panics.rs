// Known-bad fixture for L002: panic-class calls in library code.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn bad_unreachable(v: u8) -> u8 {
    match v {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn bad_short_expect(x: Option<u32>) -> u32 {
    x.expect("oops")
}

pub fn good_invariant_expect(x: Option<u32>) -> u32 {
    x.expect("caller guarantees the slot was populated in the same quantum")
}

pub fn good_unwrap_or(x: Option<u32>) -> u32 {
    x.unwrap_or(0).max(x.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("test-only panic is fine");
        }
    }
}
