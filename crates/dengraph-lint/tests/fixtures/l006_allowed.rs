//! L006 allowed fixture: the same locks acquired in one consistent
//! order everywhere, guards scoped to release before the pool submit,
//! and an explicit `drop` between dependent acquisitions.
use std::sync::Mutex;

pub struct Shared {
    pub a: Mutex<Vec<u64>>,
    pub b: Mutex<Vec<u64>>,
}

pub struct Pool;

impl Pool {
    pub fn submit(&self, _job: u64) {}
}

impl Shared {
    pub fn forward(&self) -> usize {
        let first = self.a.lock().unwrap();
        let second = self.b.lock().unwrap();
        first.len() + second.len()
    }

    pub fn also_forward(&self) -> usize {
        let first = self.a.lock().unwrap();
        let second = self.b.lock().unwrap();
        second.len() - first.len()
    }

    pub fn sequential(&self) -> usize {
        let first = self.b.lock().unwrap();
        let b_len = first.len();
        drop(first);
        let second = self.a.lock().unwrap();
        second.len() + b_len
    }
}

pub fn submit_after_release(shared: &Shared, pool: &Pool) {
    let len = {
        let guard = shared.a.lock().unwrap();
        guard.len()
    };
    pool.submit(len as u64);
}
