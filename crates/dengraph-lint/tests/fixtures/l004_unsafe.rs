// Known-bad fixture for L004: undocumented unsafe.

pub fn bad_unsafe(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn good_unsafe(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` points to a live, aligned u32
    // for the duration of this call.
    unsafe { *p }
}

pub fn good_multiline_statement(p: *const u32) -> u32 {
    // SAFETY: same contract as above; the unsafe block sits on a
    // continuation line of this let statement.
    let value: u32 =
        unsafe { *p };
    value
}

pub fn string_mentioning_unsafe() -> &'static str {
    "unsafe is just data here"
}
