//! Workspace lint driver: `cargo run -p dengraph-lint [-- --json PATH]`.
//!
//! Walks `crates/*/src/**/*.rs`, applies the project lints
//! (see [`dengraph_lint`]) and exits non-zero if any unjustified
//! violation survives.  `--json PATH` additionally writes the
//! machine-readable `lint_report.json` consumed by CI.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<PathBuf> = None;
    let mut root_override: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().map(PathBuf::from),
            "--root" => root_override = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: dengraph-lint [--json PATH] [--root DIR]");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root_override.or_else(find_workspace_root) else {
        eprintln!("dengraph-lint: could not locate the workspace root (no crates/ dir found)");
        return ExitCode::from(2);
    };

    let report = match dengraph_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dengraph-lint: walk failed: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("dengraph-lint: cannot write {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    for file in &report.files {
        for v in &file.violations {
            println!(
                "{}: {}:{}: {}",
                v.rule,
                file.path.display(),
                v.line,
                v.message
            );
        }
    }

    println!(
        "dengraph-lint: {} files scanned, {} violations",
        report.files_scanned,
        report.violation_count()
    );
    for (rule, violations, allows) in report.per_rule() {
        println!(
            "  {rule}: {violations} violations, {allows} justified allows — {}",
            rule.summary()
        );
    }

    if report.violation_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
