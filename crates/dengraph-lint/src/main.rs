//! Workspace lint driver: `cargo run -p dengraph-lint [-- FLAGS]`.
//!
//! Walks `crates/*/src/**/*.rs`, applies the project lints
//! (see [`dengraph_lint`]) and exits non-zero if any unjustified
//! violation survives.
//!
//! Flags:
//!
//! * `--json PATH` — also write the machine-readable `lint_report.json`
//!   consumed by CI.  A failed write prints the path and exits non-zero
//!   even when the lint itself is clean.
//! * `--baseline PATH` — load a committed fingerprint baseline.
//! * `--diff` — with `--baseline`: fail only on findings whose
//!   fingerprint (rule + path + symbol, no line numbers) is not in the
//!   baseline.  Lets CI gate on *new* findings mid-burn-down.
//! * `--write-baseline PATH` — write the current fingerprints as a new
//!   baseline and exit by the normal rules.
//! * `--check-drift PATH` — fail if the current fingerprints differ
//!   from the baseline *in either direction* (fixed findings must be
//!   removed from the baseline too, so it never goes stale).
//! * `--root DIR` — workspace root override.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dengraph-lint [--json PATH] [--root DIR] [--baseline PATH] [--diff] \
         [--write-baseline PATH] [--check-drift PATH]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut json_path: Option<PathBuf> = None;
    let mut root_override: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut diff = false;
    let mut write_baseline: Option<PathBuf> = None;
    let mut check_drift: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().map(PathBuf::from),
            "--root" => root_override = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--diff" => diff = true,
            "--write-baseline" => write_baseline = args.next().map(PathBuf::from),
            "--check-drift" => check_drift = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    if diff && baseline_path.is_none() {
        eprintln!("--diff requires --baseline PATH");
        return usage();
    }

    let Some(root) = root_override.or_else(find_workspace_root) else {
        eprintln!("dengraph-lint: could not locate the workspace root (no crates/ dir found)");
        return ExitCode::from(2);
    };

    let report = match dengraph_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dengraph-lint: walk failed: {err}");
            return ExitCode::from(2);
        }
    };

    for file in &report.files {
        for v in &file.violations {
            println!(
                "{}: {}:{}: {}",
                v.rule,
                file.path.display(),
                v.line,
                v.message
            );
        }
    }

    println!(
        "dengraph-lint: {} files scanned, {} violations",
        report.files_scanned,
        report.violation_count()
    );
    for (rule, violations, allows) in report.per_rule() {
        println!(
            "  {rule}: {violations} violations, {allows} justified allows — {}",
            rule.summary()
        );
    }

    // Side outputs come after the human report so a write failure never
    // swallows findings, but any failed write is itself a hard failure:
    // CI must not mistake a missing report for a clean one.
    let mut io_failed = false;
    if let Some(path) = &json_path {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!(
                "dengraph-lint: failed to write report to {}: {err}",
                path.display()
            );
            io_failed = true;
        }
    }
    if let Some(path) = &write_baseline {
        if let Err(err) = std::fs::write(path, dengraph_lint::baseline_json(&report.fingerprints()))
        {
            eprintln!(
                "dengraph-lint: failed to write baseline to {}: {err}",
                path.display()
            );
            io_failed = true;
        }
    }
    if io_failed {
        return ExitCode::from(2);
    }

    if let Some(path) = &check_drift {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!(
                    "dengraph-lint: cannot read baseline {}: {err}",
                    path.display()
                );
                return ExitCode::from(2);
            }
        };
        let baseline = dengraph_lint::parse_baseline(&text);
        let current = report.fingerprints();
        if baseline == current {
            println!(
                "dengraph-lint: no drift against {} ({} fingerprints)",
                path.display(),
                baseline.len()
            );
        } else {
            for fp in current.iter().filter(|fp| !baseline.contains(fp)) {
                eprintln!("dengraph-lint: drift (new finding):    {fp}");
            }
            for fp in baseline.iter().filter(|fp| !current.contains(fp)) {
                eprintln!("dengraph-lint: drift (stale baseline): {fp}");
            }
            eprintln!(
                "dengraph-lint: report drifts from {}; regenerate it with --write-baseline",
                path.display()
            );
            return ExitCode::from(1);
        }
    }

    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!(
                    "dengraph-lint: cannot read baseline {}: {err}",
                    path.display()
                );
                return ExitCode::from(2);
            }
        };
        let baseline = dengraph_lint::parse_baseline(&text);
        let new = report.new_since(&baseline);
        if diff {
            for (fp, file, line) in &new {
                println!("NEW {fp} ({}:{line})", file.display());
            }
            println!(
                "dengraph-lint: {} new finding(s) vs baseline {}",
                new.len(),
                path.display()
            );
            return if new.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            };
        }
    }

    if report.violation_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
