//! Workspace call graph with per-function summaries.
//!
//! Built on [`crate::resolve::Workspace`]: every function (free, impl
//! method, trait default method, statement-level nested fn) becomes a
//! node with a fully-qualified id — `dengraph_core::session::restore`,
//! `dengraph_parallel::pool::<Pool>::run` — and each body is walked for
//! call sites and panic sites.
//!
//! **Model limits** (documented, deliberate):
//!
//! * Method calls are linked by *name*: `x.merge(y)` edges to every
//!   `merge` method in the workspace.  There is no trait-object or
//!   generic-receiver resolution, so the graph over-approximates —
//!   fine for reachability-style rules, where missing an edge is the
//!   dangerous direction.
//! * Closures are analysed as part of their enclosing function: a call
//!   inside a closure is an edge from the function that *defines* the
//!   closure.  Call sites inside closures passed to the parallel entry
//!   points (`par_map`, `par_chunks`, `par_map_indexed`,
//!   `pooled_chunks`, `Pool::run`) are additionally flagged
//!   [`CallSite::parallel`], which is how L009 finds code that runs on
//!   pool workers.
//! * Panic sites are the L002 panic class — `.unwrap()`, `panic!`-family
//!   macros, and `.expect()` with a message too short to state an
//!   invariant.  A long `expect` message is an asserted invariant, not a
//!   panic site (this is what makes lock-poisoning `expect`s exempt from
//!   L007 without special cases).

use crate::ast::{Block, Chain, ChainRoot, ChainSeg, Expr, Item, ItemKind, Stmt};
use crate::resolve::{base_type_name, Module, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

/// Method/function names that hand their closure arguments to the
/// thread pool.
pub const PARALLEL_ENTRIES: [&str; 5] = [
    "par_chunks",
    "par_map",
    "par_map_indexed",
    "pooled_chunks",
    "run",
];

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Canonicalised path for path calls; the bare name for method calls.
    pub target: Vec<String>,
    /// True for `.name(…)` method calls (linked by name only).
    pub method: bool,
    /// 1-based line.
    pub line: usize,
    /// True when the site sits inside a closure passed to a parallel
    /// entry point.
    pub parallel: bool,
}

/// One panic-class site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// Human-readable form (`.unwrap()`, `panic!`, …).
    pub what: String,
}

/// Per-function summary node.
pub struct FnInfo<'w> {
    /// Fully-qualified id (`module::name` or `module::<Ty>::name`).
    pub id: String,
    /// Bare function name.
    pub name: String,
    /// Module key (`::`-joined module path).
    pub module: String,
    /// Workspace-relative source file.
    pub file: PathBuf,
    /// 1-based line of the `fn`.
    pub line: usize,
    /// True under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
    /// Base type name for impl methods (`<Pool>` → `Pool`).
    pub self_ty: Option<String>,
    /// Parameter `(name, type-text)` pairs, `("self", "Self")` first
    /// for methods.
    pub params: Vec<(String, String)>,
    /// The body, if the fn has one.
    pub body: Option<&'w Block>,
    /// Raw call sites in body order.
    pub calls: Vec<CallSite>,
    /// Panic-class sites.
    pub panics: Vec<PanicSite>,
    /// Resolved callee fn ids (sorted, deduped).
    pub edges: Vec<String>,
    /// Callee ids reached specifically through parallel-flagged sites.
    pub parallel_edges: Vec<String>,
}

/// The workspace call graph.
pub struct CallGraph<'w> {
    /// Fn id → node.
    pub fns: BTreeMap<String, FnInfo<'w>>,
    /// Bare name → ids of impl/trait methods with that name.
    methods_by_name: BTreeMap<String, Vec<String>>,
}

impl<'w> CallGraph<'w> {
    /// Builds the graph over every module of the workspace.
    pub fn build(ws: &'w Workspace) -> CallGraph<'w> {
        let mut graph = CallGraph {
            fns: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
        };
        for module in ws.modules.values() {
            for item in &module.items {
                graph.collect_item(ws, module, item, None, item.in_test);
            }
        }
        graph.link();
        graph
    }

    fn collect_item(
        &mut self,
        ws: &'w Workspace,
        module: &'w Module,
        item: &'w Item,
        self_ty: Option<&str>,
        in_test: bool,
    ) {
        match &item.kind {
            ItemKind::Fn(def) => {
                let id = match self_ty {
                    Some(ty) => format!("{}::<{}>::{}", module.path.join("::"), ty, def.name),
                    None => format!("{}::{}", module.path.join("::"), def.name),
                };
                let mut info = FnInfo {
                    id: id.clone(),
                    name: def.name.clone(),
                    module: module.path.join("::"),
                    file: module.file.clone(),
                    line: def.line,
                    in_test: in_test || item.in_test,
                    self_ty: self_ty.map(str::to_string),
                    params: def.params.clone(),
                    body: def.body.as_ref(),
                    calls: Vec::new(),
                    panics: Vec::new(),
                    edges: Vec::new(),
                    parallel_edges: Vec::new(),
                };
                if let Some(body) = &def.body {
                    let mut walker = Walker {
                        ws,
                        module,
                        info: &mut info,
                    };
                    walker.walk_block(body, false);
                }
                // Only real methods (a `self` receiver) are candidates
                // for dot-call resolution; associated fns like
                // `Workspace::load` must not shadow std method names
                // (`.load(…)` on an atomic is not our `load`).
                let takes_self = info.params.first().is_some_and(|(n, _)| n == "self");
                if info.self_ty.is_some() && takes_self {
                    self.methods_by_name
                        .entry(info.name.clone())
                        .or_default()
                        .push(id.clone());
                }
                self.fns.insert(id, info);
            }
            ItemKind::Impl {
                self_ty: ty, items, ..
            } => {
                let base = base_type_name(ty).to_string();
                for inner in items {
                    self.collect_item(ws, module, inner, Some(&base), in_test || item.in_test);
                }
            }
            ItemKind::Trait { name, items } => {
                for inner in items {
                    self.collect_item(ws, module, inner, Some(name), in_test || item.in_test);
                }
            }
            ItemKind::Mod { .. } => {
                // File and inline modules are registered as their own
                // [`Module`] entries by the resolver; walking the nested
                // copy here would double-count their fns.
            }
            _ => {}
        }
    }

    /// Resolves every call site to callee fn ids.
    fn link(&mut self) {
        let ids: Vec<String> = self.fns.keys().cloned().collect();
        let mut resolved: BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)> = BTreeMap::new();
        for id in &ids {
            let info = &self.fns[id];
            let mut edges = BTreeSet::new();
            let mut parallel_edges = BTreeSet::new();
            for site in &info.calls {
                for callee in self.resolve_site(site) {
                    if site.parallel {
                        parallel_edges.insert(callee.clone());
                    }
                    edges.insert(callee);
                }
            }
            resolved.insert(id.clone(), (edges, parallel_edges));
        }
        for (id, (edges, parallel_edges)) in resolved {
            if let Some(info) = self.fns.get_mut(&id) {
                info.edges = edges.into_iter().collect();
                info.parallel_edges = parallel_edges.into_iter().collect();
            }
        }
    }

    /// The callee candidates of one site.
    fn resolve_site(&self, site: &CallSite) -> Vec<String> {
        if site.method {
            let name = site.target.first().map(String::as_str).unwrap_or("");
            return self.methods_by_name.get(name).cloned().unwrap_or_default();
        }
        let path = &site.target;
        // Exact free-fn match.
        let joined = path.join("::");
        if self.fns.contains_key(&joined) {
            return vec![joined];
        }
        if path.len() >= 2 {
            // `Type::method` (or `module::Type::method`): match by the
            // trailing pair against impl ids anywhere in the workspace.
            let ty = &path[path.len() - 2];
            let meth = &path[path.len() - 1];
            let suffix = format!("::<{ty}>::{meth}");
            let hits: Vec<String> = self
                .fns
                .keys()
                .filter(|id| id.ends_with(&suffix))
                .cloned()
                .collect();
            if !hits.is_empty() {
                return hits;
            }
            // Re-exported free fn: match by trailing `module::fn` pair.
            let tail = format!("::{ty}::{meth}");
            let hits: Vec<String> = self
                .fns
                .keys()
                .filter(|id| id.ends_with(&tail))
                .cloned()
                .collect();
            if hits.len() == 1 {
                return hits;
            }
        }
        Vec::new()
    }

    /// BFS from `roots` over call edges.  Returns reached fn id →
    /// parent fn id (roots map to themselves), for path reconstruction.
    pub fn reachable(&self, roots: &[String]) -> BTreeMap<String, String> {
        let mut parent: BTreeMap<String, String> = BTreeMap::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        for root in roots {
            if self.fns.contains_key(root) && !parent.contains_key(root) {
                parent.insert(root.clone(), root.clone());
                queue.push_back(root.clone());
            }
        }
        while let Some(id) = queue.pop_front() {
            let Some(info) = self.fns.get(&id) else {
                continue;
            };
            for callee in &info.edges {
                if !parent.contains_key(callee) {
                    parent.insert(callee.clone(), id.clone());
                    queue.push_back(callee.clone());
                }
            }
        }
        parent
    }

    /// Reconstructs the call path root → … → `target` from a
    /// [`Self::reachable`] parent map.
    pub fn path_to(parents: &BTreeMap<String, String>, target: &str) -> Vec<String> {
        let mut path = vec![target.to_string()];
        let mut cur = target.to_string();
        for _ in 0..64 {
            match parents.get(&cur) {
                Some(p) if *p != cur => {
                    path.push(p.clone());
                    cur = p.clone();
                }
                _ => break,
            }
        }
        path.reverse();
        path
    }

    /// Every fn id whose body contains parallel-flagged call sites, plus
    /// everything reachable from their parallel callees — the "runs on
    /// pool workers" set for L009.
    pub fn parallel_region(&self) -> BTreeSet<String> {
        let mut seeds: Vec<String> = Vec::new();
        for info in self.fns.values() {
            seeds.extend(info.parallel_edges.iter().cloned());
        }
        self.reachable(&seeds).into_keys().collect()
    }
}

/// Body walker accumulating call and panic sites into one [`FnInfo`].
struct Walker<'a, 'w> {
    ws: &'w Workspace,
    module: &'w Module,
    info: &'a mut FnInfo<'w>,
}

/// Minimum `expect` message length to count as a stated invariant
/// (mirrors L002's threshold).
const MIN_EXPECT_MESSAGE: usize = 10;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl<'w> Walker<'_, 'w> {
    fn walk_block(&mut self, block: &'w Block, parallel: bool) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        self.walk_expr(init, parallel);
                    }
                    if let Some(else_block) = &l.else_block {
                        self.walk_block(else_block, parallel);
                    }
                }
                Stmt::Expr(e) => self.walk_expr(e, parallel),
                Stmt::Item(_) => {
                    // Statement-level items (nested fns) are rare and
                    // deliberately not graphed.
                }
            }
        }
    }

    fn walk_expr(&mut self, expr: &'w Expr, parallel: bool) {
        match expr {
            Expr::Chain(chain) => self.walk_chain(chain, parallel),
            Expr::Closure(c) => self.walk_expr(&c.body, parallel),
            Expr::Block(b) => self.walk_block(b, parallel),
            Expr::If {
                cond,
                then_block,
                else_expr,
            } => {
                self.walk_expr(cond, parallel);
                self.walk_block(then_block, parallel);
                if let Some(e) = else_expr {
                    self.walk_expr(e, parallel);
                }
            }
            Expr::For { iter, body, .. } => {
                self.walk_expr(iter, parallel);
                self.walk_block(body, parallel);
            }
            Expr::While { cond, body } => {
                self.walk_expr(cond, parallel);
                self.walk_block(body, parallel);
            }
            Expr::Loop { body } => self.walk_block(body, parallel),
            Expr::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee, parallel);
                for arm in arms {
                    self.walk_expr(arm, parallel);
                }
            }
            Expr::Macro(mac) => {
                let base = mac.name.rsplit("::").next().unwrap_or(&mac.name);
                if PANIC_MACROS.contains(&base) {
                    self.info.panics.push(PanicSite {
                        line: mac.line,
                        what: format!("{base}!"),
                    });
                }
                for arg in &mac.args {
                    self.walk_expr(arg, parallel);
                }
            }
            Expr::Seq(parts) => {
                for part in parts {
                    self.walk_expr(part, parallel);
                }
            }
            Expr::Unit => {}
        }
    }

    fn walk_chain(&mut self, chain: &'w Chain, parallel: bool) {
        if let ChainRoot::Expr(e) = &chain.root {
            self.walk_expr(e, parallel);
        }
        for (i, seg) in chain.segs.iter().enumerate() {
            match seg {
                ChainSeg::Call { args, line } => {
                    // A call group directly after a path root is a call
                    // of that path; after anything else it is an
                    // expression-call (fn pointer / closure), unlinked.
                    if i == 0 {
                        if let ChainRoot::Path(path) = &chain.root {
                            let canon = self.ws.canonicalize(self.module, path);
                            let entry = is_parallel_entry_path(&canon);
                            self.info.calls.push(CallSite {
                                target: canon,
                                method: false,
                                line: *line,
                                parallel,
                            });
                            self.walk_args(args, parallel, entry);
                            continue;
                        }
                    }
                    self.walk_args(args, parallel, false);
                }
                ChainSeg::Method {
                    name,
                    args,
                    line,
                    turbofish: _,
                } => {
                    self.record_method(chain, name, args, *line, parallel);
                    let entry = PARALLEL_ENTRIES.contains(&name.as_str());
                    self.walk_args(args, parallel, entry);
                }
                ChainSeg::Index(args) => self.walk_args(args, parallel, false),
                ChainSeg::StructLit(fields) => self.walk_args(fields, parallel, false),
                ChainSeg::Field(_) => {}
            }
        }
    }

    /// Walks call arguments; closure arguments of a parallel entry are
    /// walked with the parallel flag raised.
    fn walk_args(&mut self, args: &'w [Expr], parallel: bool, parallel_entry: bool) {
        for arg in args {
            let flag = parallel || (parallel_entry && matches!(arg, Expr::Closure(_)));
            self.walk_expr(arg, flag);
        }
    }

    fn record_method(
        &mut self,
        chain: &Chain,
        name: &str,
        args: &'w [Expr],
        line: usize,
        parallel: bool,
    ) {
        // Panic-class sites.
        if !self.info.in_test {
            if name == "unwrap" && args.is_empty() && !is_partial_cmp_receiver(chain, line) {
                self.info.panics.push(PanicSite {
                    line,
                    what: ".unwrap()".to_string(),
                });
            }
            if name == "expect" {
                if let Some(Expr::Chain(arg)) = args.first() {
                    if let ChainRoot::Lit(text) = &arg.root {
                        if text.starts_with('"')
                            && text.len().saturating_sub(2) < MIN_EXPECT_MESSAGE
                        {
                            self.info.panics.push(PanicSite {
                                line,
                                what: ".expect(<short message>)".to_string(),
                            });
                        }
                    }
                }
            }
        }
        self.info.calls.push(CallSite {
            target: vec![name.to_string()],
            method: true,
            line,
            parallel,
        });
    }
}

/// `partial_cmp().unwrap()` is L003's domain (a float-ordering defect,
/// not a panic-path defect); keep the two rules disjoint.
fn is_partial_cmp_receiver(chain: &Chain, unwrap_line: usize) -> bool {
    chain.segs.iter().any(|seg| {
        matches!(seg, ChainSeg::Method { name, line, .. }
            if name == "partial_cmp" && *line <= unwrap_line)
    })
}

/// Does a canonical call path name a parallel entry point (`Pool::run`
/// or a re-exported parallel helper)?
fn is_parallel_entry_path(path: &[String]) -> bool {
    let Some(last) = path.last() else {
        return false;
    };
    if last == "run" {
        return path.iter().any(|s| s == "Pool" || s == "pool");
    }
    PARALLEL_ENTRIES.contains(&last.as_str()) && *last != "run"
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn workspace_root() -> &'static Path {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root is two levels up")
    }

    #[test]
    fn builds_nodes_for_known_functions() {
        let ws = Workspace::load(workspace_root());
        let graph = CallGraph::build(&ws);
        assert!(
            graph
                .fns
                .contains_key("dengraph_parallel::pool::<Pool>::run"),
            "Pool::run missing; ids: {:?}",
            graph
                .fns
                .keys()
                .filter(|k| k.starts_with("dengraph_parallel"))
                .collect::<Vec<_>>()
        );
        assert!(graph.fns.keys().any(|k| k.ends_with("::process_quantum")));
    }

    #[test]
    fn panic_sites_include_pool_panic_macro() {
        let ws = Workspace::load(workspace_root());
        let graph = CallGraph::build(&ws);
        // pool.rs re-raises job panics with panic!() (an allowed L002
        // site) — the call graph must still see it as a panic site.
        let has_pool_panic = graph
            .fns
            .values()
            .any(|f| f.module.starts_with("dengraph_parallel") && !f.panics.is_empty());
        assert!(has_pool_panic, "no panic site found in dengraph_parallel");
    }

    #[test]
    fn reachability_walks_cross_crate_edges() {
        let ws = Workspace::load(workspace_root());
        let graph = CallGraph::build(&ws);
        let roots: Vec<String> = graph
            .fns
            .keys()
            .filter(|k| k.ends_with("::process_quantum"))
            .cloned()
            .collect();
        assert!(!roots.is_empty());
        let reached = graph.reachable(&roots);
        // process_quantum drives the parallel phases, so something in
        // dengraph_parallel must be reachable.
        assert!(
            reached.keys().any(|k| k.starts_with("dengraph_parallel")),
            "parallel crate unreachable from process_quantum"
        );
        // And a path can be reconstructed for any reached node.
        let target = reached
            .keys()
            .find(|k| k.starts_with("dengraph_parallel"))
            .expect("checked above");
        let path = CallGraph::path_to(&reached, target);
        assert_eq!(path.last().map(String::as_str), Some(target.as_str()));
        assert!(path.len() >= 2);
    }

    #[test]
    fn parallel_region_covers_pool_closures() {
        let ws = Workspace::load(workspace_root());
        let graph = CallGraph::build(&ws);
        let region = graph.parallel_region();
        // The par_map slot-writing closures call Mutex::lock; the region
        // must be non-empty whenever the workspace uses par_* helpers.
        let uses_par = graph.fns.values().any(|f| {
            f.calls
                .iter()
                .any(|c| c.method && PARALLEL_ENTRIES.contains(&c.target[0].as_str()))
        });
        if uses_par {
            assert!(!region.is_empty(), "parallel region empty");
        }
    }
}
