//! A minimal, dependency-free Rust surface lexer.
//!
//! The lint rules are line-oriented pattern checks, but they must never
//! fire on text inside a string literal or a comment (`"for k in &map"`
//! is data, not code), and conversely must be able to *read* comments
//! (`// SAFETY:`, `// lint: allow(...)`).  This module does the one
//! transformation that makes both possible: it splits every source line
//! into its **code text** and its **comment text**.
//!
//! * Comment characters are removed from the code text entirely.
//! * String and char literal *contents* are replaced by `s` filler of
//!   equal length (the delimiters stay), so downstream length checks —
//!   e.g. "does this `expect` message actually say anything?" — still
//!   work while `.iter()` inside a string can no longer match a rule.
//! * Lifetimes (`'scope`) are kept verbatim in code; nested block
//!   comments and raw strings (`r#"…"#`, `br"…"`) are handled.
//!
//! The output is intentionally *not* a token stream: every rule in this
//! project is expressible over comment-stripped lines plus brace depth,
//! and a full Rust grammar would be a liability to maintain by hand.

/// One source line, split into code and comment halves.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line's code with comments removed and literal contents
    /// replaced by `s` filler of the same length.
    pub code: String,
    /// The concatenated text of every comment on the line (without the
    /// `//` / `/*` markers).
    pub comment: String,
}

/// Lexer mode between characters.
enum Mode {
    Code,
    LineComment,
    /// Block comment with nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`; `raw_hashes == None` for ordinary strings (escape
    /// processing on), `Some(n)` for raw strings closed by `"` + n `#`s.
    Str {
        raw_hashes: Option<u32>,
    },
    /// Inside `'…'` (a char literal, not a lifetime).
    Char,
}

/// Splits `source` into per-line code/comment halves.
pub fn split(source: &str) -> Vec<Line> {
    let bytes: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut line = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0usize;

    // True when the previous code character could end an identifier —
    // used to tell a raw-string prefix `r"` from an identifier that
    // merely ends in `r` followed by a string (`war"x"` is `war` + str).
    let mut prev_ident = false;

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if let Mode::LineComment = mode {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            prev_ident = false;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw-string prefixes: r"…", r#"…"#, br"…", br#"…"# —
                // only when `r`/`br` is not the tail of an identifier.
                if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                    let after_r = if c == 'b' { i + 2 } else { i + 1 };
                    let mut hashes = 0usize;
                    while bytes.get(after_r + hashes) == Some(&'#') {
                        hashes += 1;
                    }
                    if bytes.get(after_r + hashes) == Some(&'"') {
                        for &p in &bytes[i..=after_r + hashes] {
                            line.code.push(p);
                        }
                        i = after_r + hashes + 1;
                        mode = Mode::Str {
                            raw_hashes: Some(hashes as u32),
                        };
                        prev_ident = false;
                        continue;
                    }
                }
                if c == '"' {
                    line.code.push('"');
                    mode = Mode::Str { raw_hashes: None };
                    i += 1;
                    prev_ident = false;
                    continue;
                }
                if c == '\'' {
                    // Lifetime or char literal?  `'\…'` and `'x'` are
                    // literals; `'ident` not closed by a quote is a
                    // lifetime and stays in the code text.
                    let is_char_literal = match next {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_literal {
                        line.code.push('\'');
                        mode = Mode::Char;
                        i += 1;
                        prev_ident = false;
                        continue;
                    }
                    line.code.push('\'');
                    i += 1;
                    prev_ident = false;
                    continue;
                }
                line.code.push(c);
                prev_ident = c.is_alphanumeric() || c == '_';
                i += 1;
            }
            Mode::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        mode = Mode::Code;
                        // Keep statements on either side apart.
                        line.code.push(' ');
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                line.comment.push(c);
                i += 1;
            }
            Mode::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            // Escape: blank both characters.
                            line.code.push('s');
                            if bytes.get(i + 1).is_some_and(|&e| e != '\n') {
                                line.code.push('s');
                                i += 2;
                            } else {
                                i += 1;
                            }
                            continue;
                        }
                        if c == '"' {
                            line.code.push('"');
                            mode = Mode::Code;
                            i += 1;
                            continue;
                        }
                    }
                    Some(hashes) => {
                        if c == '"' {
                            let h = hashes as usize;
                            if (1..=h).all(|k| bytes.get(i + k) == Some(&'#')) {
                                line.code.push('"');
                                for _ in 0..h {
                                    line.code.push('#');
                                }
                                mode = Mode::Code;
                                i += 1 + h;
                                continue;
                            }
                        }
                    }
                }
                line.code.push('s');
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    line.code.push('s');
                    if bytes.get(i + 1).is_some_and(|&e| e != '\n') {
                        line.code.push('s');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '\'' {
                    line.code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                    continue;
                }
                line.code.push('s');
                i += 1;
            }
        }
    }
    lines.push(line);
    lines
}

// ---------------------------------------------------------------------------
// Token stream
// ---------------------------------------------------------------------------

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `quantum`, `self`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'outer`) — the quote is kept.
    Lifetime,
    /// A numeric literal (`42`, `0xFF`, `1.5e-3`, `0.0f64`).
    Number,
    /// A string or byte-string literal; contents are the lexer's
    /// length-preserving `s` filler, delimiters and prefixes kept.
    Str,
    /// A char or byte-char literal (`'x'`, `b'\''`), contents blanked.
    Char,
    /// Punctuation.  Multi-character operators that matter to the parser
    /// (`::`, `->`, `=>`, `..=`, `..`, `&&`, `||`, comparison and
    /// compound-assignment operators) are joined into one token; `<` and
    /// `>` always stay single so generic brackets can be matched.
    Punct,
}

/// One token of the comment-stripped, literal-blanked source.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token's text (literal contents are blanked filler).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

/// Multi-character punctuation joined into single tokens, longest first.
const JOINED_PUNCT: [&str; 20] = [
    "<<=", ">>=", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes one already comment-stripped, literal-blanked code line
/// (see [`split`]) into `out`.
fn tokenize_line(code: &str, line_no: usize, out: &mut Vec<Token>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    let push = |out: &mut Vec<Token>, kind: TokenKind, text: String| {
        out.push(Token {
            kind,
            text,
            line: line_no,
        });
    };
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Identifier, or a string/char prefix (`r"…"`, `b"…"`, `b'…'`).
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            let next = chars.get(i).copied();
            let is_str_prefix =
                matches!(ident.as_str(), "r" | "b" | "br") && matches!(next, Some('"') | Some('#'));
            let is_char_prefix = ident == "b" && next == Some('\'');
            if is_str_prefix {
                // Consume optional `#`s and the string body.
                let mut text = ident;
                while chars.get(i) == Some(&'#') {
                    text.push('#');
                    i += 1;
                }
                if chars.get(i) == Some(&'"') {
                    let (body, rest) = scan_string(&chars, i);
                    text.push_str(&body);
                    i = rest;
                    push(out, TokenKind::Str, text);
                    continue;
                }
                // `r#raw_ident` style: fall through as a plain ident.
                push(out, TokenKind::Ident, text);
                continue;
            }
            if is_char_prefix {
                if let Some((body, rest)) = scan_char(&chars, i) {
                    push(out, TokenKind::Char, format!("{ident}{body}"));
                    i = rest;
                    continue;
                }
            }
            push(out, TokenKind::Ident, ident);
            continue;
        }
        // Number: decimal/hex/binary/octal, fraction, exponent, suffix.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (is_ident_continue(chars[i])) {
                i += 1;
            }
            // Fraction: a `.` followed by a digit (not `..`, not a method).
            if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            // Signed exponent (`1e-3`); unsigned ones were consumed above.
            if chars
                .get(i.wrapping_sub(1))
                .is_some_and(|&e| e == 'e' || e == 'E')
                && matches!(chars.get(i), Some('+') | Some('-'))
                && chars.get(i + 1).is_some_and(char::is_ascii_digit)
            {
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            push(out, TokenKind::Number, chars[start..i].iter().collect());
            continue;
        }
        if c == '"' {
            let (body, rest) = scan_string(&chars, i);
            i = rest;
            push(out, TokenKind::Str, body);
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime, decided exactly as rustc does at
            // this point: a quote, ident chars, and a closing quote is a
            // char literal; otherwise it is a lifetime or label.  The
            // blanked filler from `split` keeps char contents ident-like,
            // so this lookahead is reliable.
            if let Some((body, rest)) = scan_char(&chars, i) {
                push(out, TokenKind::Char, body);
                i = rest;
                continue;
            }
            let start = i;
            i += 1;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            push(out, TokenKind::Lifetime, chars[start..i].iter().collect());
            continue;
        }
        // Punctuation, joining the multi-char operators the parser needs.
        let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
        if let Some(op) = JOINED_PUNCT.iter().find(|op| rest.starts_with(**op)) {
            push(out, TokenKind::Punct, (*op).to_string());
            i += op.len();
            continue;
        }
        push(out, TokenKind::Punct, c.to_string());
        i += 1;
    }
}

/// Scans a (blanked) string literal starting at the opening quote;
/// returns the text including delimiters and the index after it.
fn scan_string(chars: &[char], start: usize) -> (String, usize) {
    let mut i = start + 1;
    while i < chars.len() && chars[i] != '"' {
        i += 1;
    }
    let end = (i + 1).min(chars.len());
    (chars[start..end].iter().collect(), end)
}

/// Scans a (blanked) char literal at the opening quote: `'`, one or more
/// ident-like filler chars, `'`.  Returns `None` when the quote starts a
/// lifetime instead.
fn scan_char(chars: &[char], start: usize) -> Option<(String, usize)> {
    debug_assert_eq!(chars.get(start), Some(&'\''));
    let mut i = start + 1;
    while i < chars.len() && is_ident_continue(chars[i]) {
        i += 1;
    }
    if i > start + 1 && chars.get(i) == Some(&'\'') {
        Some((chars[start..=i].iter().collect(), i + 1))
    } else {
        None
    }
}

/// Tokenizes full source text: [`split`] strips comments and blanks
/// literal contents, then each code line is scanned into [`Token`]s.
/// Multi-line strings collapse into one `Str` token per spanned line;
/// that is fine for the parser, which never looks inside literals.
pub fn tokenize(source: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in split(source).iter().enumerate() {
        tokenize_line(&line.code, idx + 1, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        split(src).into_iter().map(|l| l.code).collect()
    }

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn line_comments_move_to_comment_half() {
        let lines = split("let x = 1; // trailing note");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " trailing note");
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let lines = code_of("a /* outer /* inner */ still comment */ b");
        assert_eq!(lines[0].replace(' ', ""), "ab");
    }

    #[test]
    fn string_contents_are_blanked_but_length_preserved() {
        let lines = code_of("x.expect(\"map is non-empty\")");
        assert_eq!(lines[0], "x.expect(\"ssssssssssssssss\")");
    }

    #[test]
    fn code_inside_strings_cannot_match_rules() {
        let lines = code_of("let s = \"for k in &map { map.iter() }\";");
        assert!(!lines[0].contains("iter"));
        assert!(!lines[0].contains("for k"));
    }

    #[test]
    fn raw_strings_and_hashes_close_correctly() {
        let lines = code_of("let s = r#\"quote \" inside\"# + tail();");
        assert!(lines[0].contains("tail()"));
        assert!(!lines[0].contains("inside"));
    }

    #[test]
    fn byte_and_identifier_adjacent_strings() {
        // `br` prefix is a raw byte string; `war` is not a prefix.
        let lines = code_of("let a = br\"xy\"; let war = 1;");
        assert!(lines[0].contains("war = 1"));
        assert!(!lines[0].contains("xy"));
    }

    #[test]
    fn lifetimes_stay_in_code_char_literals_are_blanked() {
        let lines = code_of("fn f<'scope>(c: char) { if c == 'x' || c == '\\n' {} }");
        assert!(lines[0].contains("'scope"));
        assert!(!lines[0].contains("'x'"));
    }

    #[test]
    fn byte_char_literals_and_escapes_are_blanked() {
        // `b'\''`, `b'\\'`, `b'\n'`, `b'x'`: the byte prefix must not
        // derail the char-literal scan, and escaped quotes must not
        // reopen code mode early.
        let lines = code_of("let a = b'\\''; let b = b'\\\\'; let c = b'\\n'; let d = b'x';");
        assert_eq!(
            lines[0],
            "let a = b'ss'; let b = b'ss'; let c = b'ss'; let d = b's';"
        );
    }

    #[test]
    fn lifetime_vs_char_ambiguity_in_generics_labels_and_ranges() {
        // Generic and label positions keep lifetimes in code; literal
        // positions blank the contents.  These are the exact shapes that
        // defeat naive one-character lookahead.
        let cases = [
            ("struct S<'a,'b>(&'a u8, &'b u8);", "'a,'b"),
            ("'outer: loop { break 'outer; }", "'outer: loop"),
            ("fn f<'a>(x: &'a str) -> &'a str { x }", "<'a>"),
        ];
        for (src, must_keep) in cases {
            let code = &code_of(src)[0];
            assert!(
                code.contains(must_keep),
                "{src:?} lost {must_keep:?}: {code:?}"
            );
        }
        let code = &code_of("let r = 'a'..='z'; let u = '\\u{1F600}'; let q = '\\'';")[0];
        assert!(!code.contains("'a'"), "char literal leaked: {code:?}");
        assert_eq!(
            code,
            "let r = 's'..='s'; let u = 'sssssssss'; let q = 'ss';"
        );
    }

    #[test]
    fn tokens_classify_lifetimes_chars_and_numbers() {
        let toks = kinds("fn f<'a>(c: char) -> u8 { if c == 'x' { 1.5e-3 } else { 0xFFu8 } }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Char, "'s'".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3".into())));
        assert!(toks.contains(&(TokenKind::Number, "0xFFu8".into())));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'x"));
    }

    #[test]
    fn tokens_join_parser_relevant_operators_only() {
        let toks = kinds(
            "a::b
.c()?; x += 1; y => z; v -> w; p..=q; r..s; m && n || o; g<<h; Vec<Vec<u8>>",
        );
        let punct: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        for op in ["::", "+=", "=>", "->", "..=", "..", "&&", "||"] {
            assert!(punct.contains(&op), "missing {op}: {punct:?}");
        }
        // `<` and `>` stay single so generics can be matched.
        assert!(!punct.contains(&"<<"));
        assert!(!punct.contains(&">>"));
    }

    #[test]
    fn tokens_merge_byte_and_raw_string_prefixes() {
        let toks = kinds("let a = b'\\''; let s = r#\"x\"#; let t = br\"y\"; let r = 1;");
        assert!(toks.contains(&(TokenKind::Char, "b'ss'".into())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("r#\"")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("br\"")));
        // A plain `r` identifier is not a raw-string prefix.
        assert!(toks.contains(&(TokenKind::Ident, "r".into())));
    }

    #[test]
    fn token_lines_are_one_based_and_accurate() {
        let toks = tokenize("fn a() {}\n\nfn b() {}\n");
        let a = toks.iter().find(|t| t.text == "a").expect("token a");
        let b = toks.iter().find(|t| t.text == "b").expect("token b");
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 3);
    }

    #[test]
    fn multiline_strings_and_comments_span_lines() {
        let src = "let s = \"line one\nline two\";\n/* c1\nc2 */ let y = 2;";
        let lines = split(src);
        assert!(!lines[0].code.contains("one"));
        assert!(!lines[1].code.contains("two"));
        assert!(lines[1].code.ends_with('"') || lines[1].code.contains('"'));
        assert_eq!(lines[2].comment, " c1");
        assert!(lines[3].code.contains("let y = 2;"));
    }
}
