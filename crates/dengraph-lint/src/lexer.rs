//! A minimal, dependency-free Rust surface lexer.
//!
//! The lint rules are line-oriented pattern checks, but they must never
//! fire on text inside a string literal or a comment (`"for k in &map"`
//! is data, not code), and conversely must be able to *read* comments
//! (`// SAFETY:`, `// lint: allow(...)`).  This module does the one
//! transformation that makes both possible: it splits every source line
//! into its **code text** and its **comment text**.
//!
//! * Comment characters are removed from the code text entirely.
//! * String and char literal *contents* are replaced by `s` filler of
//!   equal length (the delimiters stay), so downstream length checks —
//!   e.g. "does this `expect` message actually say anything?" — still
//!   work while `.iter()` inside a string can no longer match a rule.
//! * Lifetimes (`'scope`) are kept verbatim in code; nested block
//!   comments and raw strings (`r#"…"#`, `br"…"`) are handled.
//!
//! The output is intentionally *not* a token stream: every rule in this
//! project is expressible over comment-stripped lines plus brace depth,
//! and a full Rust grammar would be a liability to maintain by hand.

/// One source line, split into code and comment halves.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line's code with comments removed and literal contents
    /// replaced by `s` filler of the same length.
    pub code: String,
    /// The concatenated text of every comment on the line (without the
    /// `//` / `/*` markers).
    pub comment: String,
}

/// Lexer mode between characters.
enum Mode {
    Code,
    LineComment,
    /// Block comment with nesting depth (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`; `raw_hashes == None` for ordinary strings (escape
    /// processing on), `Some(n)` for raw strings closed by `"` + n `#`s.
    Str {
        raw_hashes: Option<u32>,
    },
    /// Inside `'…'` (a char literal, not a lifetime).
    Char,
}

/// Splits `source` into per-line code/comment halves.
pub fn split(source: &str) -> Vec<Line> {
    let bytes: Vec<char> = source.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut line = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0usize;

    // True when the previous code character could end an identifier —
    // used to tell a raw-string prefix `r"` from an identifier that
    // merely ends in `r` followed by a string (`war"x"` is `war` + str).
    let mut prev_ident = false;

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            if let Mode::LineComment = mode {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            prev_ident = false;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = bytes.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw-string prefixes: r"…", r#"…"#, br"…", br#"…"# —
                // only when `r`/`br` is not the tail of an identifier.
                if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                    let after_r = if c == 'b' { i + 2 } else { i + 1 };
                    let mut hashes = 0usize;
                    while bytes.get(after_r + hashes) == Some(&'#') {
                        hashes += 1;
                    }
                    if bytes.get(after_r + hashes) == Some(&'"') {
                        for &p in &bytes[i..=after_r + hashes] {
                            line.code.push(p);
                        }
                        i = after_r + hashes + 1;
                        mode = Mode::Str {
                            raw_hashes: Some(hashes as u32),
                        };
                        prev_ident = false;
                        continue;
                    }
                }
                if c == '"' {
                    line.code.push('"');
                    mode = Mode::Str { raw_hashes: None };
                    i += 1;
                    prev_ident = false;
                    continue;
                }
                if c == '\'' {
                    // Lifetime or char literal?  `'\…'` and `'x'` are
                    // literals; `'ident` not closed by a quote is a
                    // lifetime and stays in the code text.
                    let is_char_literal = match next {
                        Some('\\') => true,
                        Some(_) => bytes.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_literal {
                        line.code.push('\'');
                        mode = Mode::Char;
                        i += 1;
                        prev_ident = false;
                        continue;
                    }
                    line.code.push('\'');
                    i += 1;
                    prev_ident = false;
                    continue;
                }
                line.code.push(c);
                prev_ident = c.is_alphanumeric() || c == '_';
                i += 1;
            }
            Mode::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = bytes.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        mode = Mode::Code;
                        // Keep statements on either side apart.
                        line.code.push(' ');
                    } else {
                        mode = Mode::BlockComment(depth - 1);
                    }
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                    continue;
                }
                line.comment.push(c);
                i += 1;
            }
            Mode::Str { raw_hashes } => {
                match raw_hashes {
                    None => {
                        if c == '\\' {
                            // Escape: blank both characters.
                            line.code.push('s');
                            if bytes.get(i + 1).is_some_and(|&e| e != '\n') {
                                line.code.push('s');
                                i += 2;
                            } else {
                                i += 1;
                            }
                            continue;
                        }
                        if c == '"' {
                            line.code.push('"');
                            mode = Mode::Code;
                            i += 1;
                            continue;
                        }
                    }
                    Some(hashes) => {
                        if c == '"' {
                            let h = hashes as usize;
                            if (1..=h).all(|k| bytes.get(i + k) == Some(&'#')) {
                                line.code.push('"');
                                for _ in 0..h {
                                    line.code.push('#');
                                }
                                mode = Mode::Code;
                                i += 1 + h;
                                continue;
                            }
                        }
                    }
                }
                line.code.push('s');
                i += 1;
            }
            Mode::Char => {
                if c == '\\' {
                    line.code.push('s');
                    if bytes.get(i + 1).is_some_and(|&e| e != '\n') {
                        line.code.push('s');
                        i += 2;
                    } else {
                        i += 1;
                    }
                    continue;
                }
                if c == '\'' {
                    line.code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                    continue;
                }
                line.code.push('s');
                i += 1;
            }
        }
    }
    lines.push(line);
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        split(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_move_to_comment_half() {
        let lines = split("let x = 1; // trailing note");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " trailing note");
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        let lines = code_of("a /* outer /* inner */ still comment */ b");
        assert_eq!(lines[0].replace(' ', ""), "ab");
    }

    #[test]
    fn string_contents_are_blanked_but_length_preserved() {
        let lines = code_of("x.expect(\"map is non-empty\")");
        assert_eq!(lines[0], "x.expect(\"ssssssssssssssss\")");
    }

    #[test]
    fn code_inside_strings_cannot_match_rules() {
        let lines = code_of("let s = \"for k in &map { map.iter() }\";");
        assert!(!lines[0].contains("iter"));
        assert!(!lines[0].contains("for k"));
    }

    #[test]
    fn raw_strings_and_hashes_close_correctly() {
        let lines = code_of("let s = r#\"quote \" inside\"# + tail();");
        assert!(lines[0].contains("tail()"));
        assert!(!lines[0].contains("inside"));
    }

    #[test]
    fn byte_and_identifier_adjacent_strings() {
        // `br` prefix is a raw byte string; `war` is not a prefix.
        let lines = code_of("let a = br\"xy\"; let war = 1;");
        assert!(lines[0].contains("war = 1"));
        assert!(!lines[0].contains("xy"));
    }

    #[test]
    fn lifetimes_stay_in_code_char_literals_are_blanked() {
        let lines = code_of("fn f<'scope>(c: char) { if c == 'x' || c == '\\n' {} }");
        assert!(lines[0].contains("'scope"));
        assert!(!lines[0].contains("'x'"));
    }

    #[test]
    fn multiline_strings_and_comments_span_lines() {
        let src = "let s = \"line one\nline two\";\n/* c1\nc2 */ let y = 2;";
        let lines = split(src);
        assert!(!lines[0].code.contains("one"));
        assert!(!lines[1].code.contains("two"));
        assert!(lines[1].code.ends_with('"') || lines[1].code.contains('"'));
        assert_eq!(lines[2].comment, " c1");
        assert!(lines[3].code.contains("let y = 2;"));
    }
}
