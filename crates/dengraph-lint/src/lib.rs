//! `dengraph-lint`: project-invariant static analysis for the dengraph
//! workspace.
//!
//! The system's headline guarantee — parallel, checkpoint-restored and
//! journal-recovered runs are **bit-identical** to serial — has been
//! violated by real bugs (hash-map iteration order leaking into cluster
//! ids and event ordering, fixed in PRs 2–3).  This crate turns those
//! bug classes into machine-checked, deny-by-default lints instead of
//! review folklore.  It is dependency-free by design, matching the
//! vendored-offline workspace: a hand-rolled surface lexer
//! ([`lexer`]) plus line-oriented rules, not a compiler plugin.
//!
//! ## Rules
//!
//! | rule | what it forbids | why |
//! |------|-----------------|-----|
//! | L001 | iterating a `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()`, `for … in &map`) in library code | hash iteration order is nondeterministic and has twice leaked into observable output |
//! | L002 | `.unwrap()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, and `.expect()` with a vacuous message in non-test library code | library panics crash the service; every residual panic site must state its invariant |
//! | L003 | `partial_cmp(..).unwrap()` (or `unwrap_or`) as an f64 ordering | NaN-unsafe and panicky; `f64::total_cmp` is the project's canonical float order |
//! | L004 | `unsafe` without a `// SAFETY:` comment | every unsafe block must state why it is sound |
//! | L005 | undocumented `pub` items in `dengraph-core` / `dengraph-json` | the session/codec surface is the public API |
//! | L006 | lock-order inversions, and guards held across pool submits | the worker pool plus `Arc<Mutex<…>>` sinks make ABBA deadlocks a real hazard |
//! | L007 | panic-class sites reachable (interprocedurally) from pipeline entry points | L002 is syntactic; the hot path must not reach a panic through any call chain either |
//! | L008 | wire-decoded lengths reaching `with_capacity`/`vec!`/`.reserve` unchecked | a corrupt or hostile checkpoint must not drive allocation size |
//! | L009 | `f64` folds/sums over unordered sources in parallel-phase code | float addition is non-associative; reduction order must be deterministic |
//!
//! L001–L005 are line-oriented lexical rules; L006–L009 are semantic
//! rules built on a recursive-descent parse ([`ast`]), a workspace
//! module-graph resolver ([`resolve`]) and a call graph ([`callgraph`]).
//!
//! A site can be justified with an allow comment on the same line or the
//! line above; one `lint:` marker may stack several allows when a line
//! violates more than one rule:
//!
//! ```text
//! // lint: allow(L001, canonicalised by the sort two lines down)
//! // lint: allow(L002, re-raised on the caller thread) allow(L007, propagates the job panic)
//! ```
//!
//! The reason is **mandatory**; an allow without one is itself reported.
//! L001 sites whose surrounding statement feeds an immediate sort (or an
//! order-insensitive `all`/`any`/`count`) are exempt automatically.

pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod resolve;
pub mod semantic;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// Rules and violations
// ---------------------------------------------------------------------------

/// A project lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hash-order iteration in library code.
    L001,
    /// Panic-class calls in non-test library code.
    L002,
    /// `partial_cmp(..).unwrap()` float orderings.
    L003,
    /// `unsafe` without a `// SAFETY:` comment.
    L004,
    /// Undocumented `pub` item in a docs-required crate.
    L005,
    /// Inconsistent lock acquisition order, or a guard held across a
    /// pool submit.
    L006,
    /// Panic-class site reachable from a pipeline entry point.
    L007,
    /// Wire-decoded length reaching an allocation without a bounds
    /// check.
    L008,
    /// Nondeterministic f64 reduction in parallel-phase code.
    L009,
}

/// Every rule, in id order.
pub const ALL_RULES: [Rule; 9] = [
    Rule::L001,
    Rule::L002,
    Rule::L003,
    Rule::L004,
    Rule::L005,
    Rule::L006,
    Rule::L007,
    Rule::L008,
    Rule::L009,
];

impl Rule {
    /// The rule's stable id (`"L001"`…).
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
        }
    }

    /// One-line description used in reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::L001 => "hash-map/set iteration order may leak into output",
            Rule::L002 => "panic-class call in non-test library code",
            Rule::L003 => "float ordering via partial_cmp().unwrap(); use total_cmp",
            Rule::L004 => "unsafe without a `// SAFETY:` comment",
            Rule::L005 => "undocumented public item",
            Rule::L006 => "lock-order inversion or guard held across a pool submit",
            Rule::L007 => "panic-class site reachable from a pipeline entry point",
            Rule::L008 => "untrusted wire length reaches an allocation unchecked",
            Rule::L009 => "f64 reduction over an unordered source in parallel code",
        }
    }

    fn parse(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// What exactly is wrong at this site.
    pub message: String,
}

/// How a file is treated by the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Shipping library code: all rules apply; `docs_required` adds L005.
    Library {
        /// Whether L005 (public-item rustdoc) applies.
        docs_required: bool,
    },
    /// Benches, examples, test-support and binary entry points: only the
    /// universal safety rules (L003, L004) apply.
    Support,
}

impl FileClass {
    fn strict(self) -> bool {
        matches!(self, FileClass::Library { .. })
    }

    fn docs_required(self) -> bool {
        matches!(
            self,
            FileClass::Library {
                docs_required: true
            }
        )
    }
}

// ---------------------------------------------------------------------------
// Allow comments
// ---------------------------------------------------------------------------

/// A parsed `lint: allow(RULE, reason)` comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: Option<Rule>,
    reason: String,
    /// 1-based line the comment sits on.
    line: usize,
}

/// Extracts every allow comment from the lexed lines.
fn collect_allows(lines: &[lexer::Line]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let comment = &line.comment;
        // Doc comments (`///` → `/ …`, `//!` → `! …`) are prose; only a
        // plain `//` comment can justify a site.
        let trimmed = comment.trim_start();
        if trimmed.starts_with('/') || trimmed.starts_with('!') {
            continue;
        }
        let Some(start) = comment.find("lint: allow(") else {
            continue;
        };
        // One `lint:` marker may carry several `allow(RULE, reason)`
        // groups (a site can violate more than one rule, and stacking
        // comment lines would mis-anchor the upper ones).
        let mut rest = &comment[start + "lint: ".len()..];
        while let Some(open) = rest.find("allow(") {
            let body = &rest[open + "allow(".len()..];
            let Some(end) = body.find(')') else {
                break;
            };
            let inner = &body[..end];
            let (id, reason) = match inner.split_once(',') {
                Some((id, reason)) => (id.trim(), reason.trim()),
                None => (inner.trim(), ""),
            };
            allows.push(Allow {
                rule: Rule::parse(id),
                reason: reason.to_string(),
                line: i + 1,
            });
            rest = &body[end + 1..];
        }
    }
    allows
}

/// Does an allow for `rule` cover 1-based `line` (same line or the line
/// directly above)?
fn allowed(allows: &[Allow], rule: Rule, line: usize) -> bool {
    allows.iter().any(|a| {
        a.rule == Some(rule) && !a.reason.is_empty() && (a.line == line || a.line + 1 == line)
    })
}

// ---------------------------------------------------------------------------
// Per-file context: brace depth, test regions, attribute spans
// ---------------------------------------------------------------------------

struct FileContext {
    lines: Vec<lexer::Line>,
    /// True for lines inside a `#[cfg(test)]` / `#[test]` item.
    in_test: Vec<bool>,
    /// True for attribute lines (`#[…]` including multi-line spans).
    attr_line: Vec<bool>,
}

fn build_context(source: &str) -> FileContext {
    let lines = lexer::split(source);
    let n = lines.len();
    let mut in_test = vec![false; n];
    let mut attr_line = vec![false; n];

    // Attribute spans: a trimmed code line starting with `#[` opens an
    // attribute; it continues across lines until its square brackets
    // balance.
    let mut attr_depth = 0i32;
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        let opens = code.matches('[').count() as i32;
        let closes = code.matches(']').count() as i32;
        if attr_depth > 0 {
            attr_line[i] = true;
            attr_depth += opens - closes;
            attr_depth = attr_depth.max(0);
            continue;
        }
        if code.starts_with("#[") || code.starts_with("#![") {
            attr_line[i] = true;
            attr_depth = (opens - closes).max(0);
        }
    }

    // Test regions: a `#[cfg(test)]` or `#[test]` attribute marks the
    // next brace-delimited item; everything until the matching close
    // brace is test code.
    let mut depth = 0i64;
    let mut pending_test = false;
    // Depth at which each active test region's braces opened.
    let mut test_entry: Vec<i64> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        if !test_entry.is_empty() {
            in_test[i] = true;
        }
        if attr_line[i]
            && (code.contains("cfg(test")
                || code.contains("#[test]")
                || code.contains("cfg(all(test"))
        {
            pending_test = true;
            in_test[i] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_test {
                        test_entry.push(depth);
                        pending_test = false;
                        in_test[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_entry.last().is_some_and(|&entry| depth <= entry) {
                        test_entry.pop();
                    }
                }
                _ => {}
            }
        }
    }
    FileContext {
        lines,
        in_test,
        attr_line,
    }
}

// ---------------------------------------------------------------------------
// L001: hash iteration
// ---------------------------------------------------------------------------

const HASH_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
/// Order-preserving container types: a declaration with one of these
/// *shadows* an earlier hash-typed declaration of the same name (the
/// table is per-file, declarations are resolved nearest-first).
const SEQ_TYPES: [&str; 5] = ["Vec", "VecDeque", "BTreeMap", "BTreeSet", "String"];
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// One `name: Type` / `name = Type::new()` declaration found in a file.
pub(crate) struct Decl {
    pub(crate) name: String,
    /// 0-based line of the declaration.
    pub(crate) line: usize,
    /// True for hash-map/set types, false for order-preserving ones.
    pub(crate) is_hash: bool,
}

/// Scans a file for identifiers declared with a container type
/// (`name: FxHashMap<…>`, `name = HashSet::new()`, struct fields, fn
/// params) and records each declaration with its line.  Matching at use
/// sites is by final path segment, so `self.adj` resolves through
/// `adj`; a use resolves to the *nearest preceding* declaration of its
/// name (falling back to the nearest following one), which lets a
/// `users: Vec<…>` field coexist with a `users: FxHashSet<…>` local
/// elsewhere in the file.
pub(crate) fn container_decls(lines: &[lexer::Line]) -> Vec<Decl> {
    let mut decls = Vec::new();
    for (line_idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        for (ty, is_hash) in HASH_TYPES
            .iter()
            .map(|t| (*t, true))
            .chain(SEQ_TYPES.iter().map(|t| (*t, false)))
        {
            let mut from = 0;
            while let Some(pos) = code[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                // Word-boundary on both sides of the type name.
                let before_ok =
                    at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
                let after = code[at + ty.len()..].chars().next().unwrap_or(' ');
                if !before_ok || is_ident_char(after) {
                    continue;
                }
                // Walk back over `: `, `= `, `&`, `mut `, path prefixes
                // (`&mut`, `& mut`, `&&mut` all reduce to the separator).
                let mut head = code[..at].trim_end();
                loop {
                    let before = head;
                    head = head.trim_end_matches(|c: char| c == '&' || c.is_whitespace());
                    if let Some(h) = head.strip_suffix("mut") {
                        // Only strip `mut` as a whole word, not an
                        // identifier tail like `permut`.
                        if h.chars().next_back().is_none_or(|c| !is_ident_char(c)) {
                            head = h;
                        }
                    }
                    if head == before {
                        break;
                    }
                }
                let Some(sep) = head.chars().next_back() else {
                    continue;
                };
                if sep != ':' && sep != '=' {
                    continue;
                }
                let head = head[..head.len() - 1].trim_end();
                let name: String = head
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident_char(c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty() && name != "mut" {
                    decls.push(Decl {
                        name,
                        line: line_idx,
                        is_hash,
                    });
                }
            }
        }
    }
    decls
}

/// Is `name` hash-typed at (0-based) `line`, under nearest-declaration
/// resolution?
pub(crate) fn is_hash_at(decls: &[Decl], name: &str, line: usize) -> bool {
    let mut best_before: Option<&Decl> = None;
    let mut best_after: Option<&Decl> = None;
    for d in decls.iter().filter(|d| d.name == name) {
        if d.line <= line {
            if best_before.is_none_or(|b| d.line >= b.line) {
                best_before = Some(d);
            }
        } else if best_after.is_none_or(|b| d.line < b.line) {
            best_after = Some(d);
        }
    }
    best_before.or(best_after).is_some_and(|d| d.is_hash)
}

/// The receiver path ending just before byte offset `dot` (exclusive),
/// e.g. `self.adj` for `self.adj.iter()`.  Returns the final segment.
fn receiver_segment(code: &str, dot: usize) -> Option<&str> {
    let head = &code[..dot];
    let start = head
        .rfind(|c: char| !is_ident_char(c) && c != '.')
        .map_or(0, |p| p + 1);
    let path = &head[start..];
    let segment = path.rsplit('.').next().unwrap_or(path);
    if segment.is_empty() {
        None
    } else {
        Some(segment)
    }
}

/// Is the statement around `line_idx` order-insensitive — does it feed an
/// immediate sort (or a BTree collection / pure predicate)?
fn feeds_immediate_sort(ctx: &FileContext, line_idx: usize) -> bool {
    let window_end = (line_idx + 4).min(ctx.lines.len());
    let window: String = ctx.lines[line_idx..window_end]
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    window.contains(".sort")
        || window.contains("BTreeMap")
        || window.contains("BTreeSet")
        || window.contains(".all(")
        || window.contains(".any(")
        || window.contains(".count()")
}

fn check_l001(ctx: &FileContext, decls: &[Decl], out: &mut Vec<Violation>) {
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let code = &line.code;
        // Method-call form: `recv.iter()` etc.
        for method in ITER_METHODS {
            let needle = format!(".{method}(");
            let mut from = 0;
            while let Some(pos) = code[from..].find(&needle) {
                let at = from + pos;
                from = at + needle.len();
                let Some(recv) = receiver_segment(code, at) else {
                    continue;
                };
                if is_hash_at(decls, recv, i) && !feeds_immediate_sort(ctx, i) {
                    out.push(Violation {
                        rule: Rule::L001,
                        line: i + 1,
                        message: format!(
                            "`{recv}.{method}()` iterates a hash container in nondeterministic order"
                        ),
                    });
                }
            }
        }
        // For-loop form: `for pat in &recv {`.
        if let Some(for_pos) = code.find("for ") {
            if let Some(in_pos) = code[for_pos..].find(" in ") {
                let tail = &code[for_pos + in_pos + 4..];
                let tail = tail.split('{').next().unwrap_or(tail).trim();
                let tail = tail
                    .trim_start_matches('&')
                    .trim_start_matches("mut ")
                    .trim();
                if !tail.is_empty() && tail.chars().all(|c| is_ident_char(c) || c == '.') {
                    let segment = tail.rsplit('.').next().unwrap_or(tail);
                    if is_hash_at(decls, segment, i) && !feeds_immediate_sort(ctx, i) {
                        out.push(Violation {
                            rule: Rule::L001,
                            line: i + 1,
                            message: format!(
                                "`for … in {tail}` iterates a hash container in nondeterministic order"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L002: panic-class calls
// ---------------------------------------------------------------------------

/// Minimum length for an `expect` message to count as stating an
/// invariant (the lexer preserves literal lengths).
const MIN_EXPECT_MESSAGE: usize = 10;

fn check_l002(ctx: &FileContext, out: &mut Vec<Violation>) {
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let code = &line.code;
        if code.contains(".unwrap()") {
            out.push(Violation {
                rule: Rule::L002,
                line: i + 1,
                message: "`.unwrap()` in library code; propagate the error or use \
                          `expect(\"<invariant>\")`"
                    .into(),
            });
        }
        for mac in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            if let Some(pos) = code.find(mac) {
                // Word boundary: `std::panic!` vs `catch_unwind`… the
                // char before must not be ident-like (rules out
                // `debug_unreachable!`-style wrappers, none here).
                let before_ok =
                    pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap_or(' '));
                if before_ok {
                    out.push(Violation {
                        rule: Rule::L002,
                        line: i + 1,
                        message: format!("`{}…)` in library code", &mac[..mac.len() - 1]),
                    });
                }
            }
        }
        // `.expect(` with a vacuous message.  Literal contents were
        // blanked length-preserving by the lexer, so the span between
        // the quotes is the message length.
        let mut from = 0;
        while let Some(pos) = code[from..].find(".expect(") {
            let at = from + pos;
            from = at + ".expect(".len();
            let tail = &code[at + ".expect(".len()..];
            // A non-literal argument (formatted or computed message) is
            // treated as descriptive and skipped.
            if let Some(rest) = tail.trim_start().strip_prefix('"') {
                let len = rest.find('"').unwrap_or(rest.len());
                if len < MIN_EXPECT_MESSAGE {
                    out.push(Violation {
                        rule: Rule::L002,
                        line: i + 1,
                        message: format!(
                            "`.expect()` message is too short ({len} chars) to state an \
                             invariant (need ≥ {MIN_EXPECT_MESSAGE})"
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L003: float orderings
// ---------------------------------------------------------------------------

fn check_l003(ctx: &FileContext, out: &mut Vec<Violation>) {
    for (i, line) in ctx.lines.iter().enumerate() {
        let code = &line.code;
        let Some(pos) = code.find("partial_cmp") else {
            continue;
        };
        let tail = &code[pos..];
        if tail.contains(".unwrap()") || tail.contains(".unwrap_or(") || tail.contains(".expect(") {
            out.push(Violation {
                rule: Rule::L003,
                line: i + 1,
                message: "float ordering via `partial_cmp(..).unwrap()`; use `f64::total_cmp`"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L004: unsafe without SAFETY
// ---------------------------------------------------------------------------

fn check_l004(ctx: &FileContext, out: &mut Vec<Violation>) {
    for (i, line) in ctx.lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(pos) = code[from..].find("unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            let before_ok =
                at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '));
            let after = code[at + "unsafe".len()..].chars().next().unwrap_or(' ');
            if !before_ok || is_ident_char(after) {
                continue;
            }
            // A SAFETY comment on the same line, or above it — walking up
            // through the comment block (any length) and at most 3
            // statement-head code lines (the `unsafe` may sit on a
            // continuation line of a multi-line statement).
            let mut documented = ctx.lines[i].comment.contains("SAFETY:");
            let mut code_budget = 3u32;
            let mut j = i;
            while !documented && code_budget > 0 && j > 0 {
                j -= 1;
                let above = &ctx.lines[j];
                if above.comment.contains("SAFETY:") {
                    documented = true;
                } else if !above.code.trim().is_empty() {
                    code_budget -= 1;
                }
            }
            if !documented {
                out.push(Violation {
                    rule: Rule::L004,
                    line: i + 1,
                    message: "`unsafe` without an attached `// SAFETY:` comment".into(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L005: public-item docs
// ---------------------------------------------------------------------------

// `mod` is deliberately absent: module docs are `//!` inner docs in the
// module's own file, and an outer `///` on the declaration would merge
// with them and re-scope their intra-doc links into the declaring file
// (breaking `cargo doc`).
const PUB_ITEMS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "union",
];

fn check_l005(ctx: &FileContext, out: &mut Vec<Violation>) {
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.in_test[i] || ctx.attr_line[i] {
            continue;
        }
        let code = line.code.trim_start();
        let Some(rest) = code.strip_prefix("pub ") else {
            continue;
        };
        let item = rest.split_whitespace().next().unwrap_or("");
        let item = item.trim_start_matches("unsafe").trim();
        let is_item = PUB_ITEMS.contains(&item)
            || (item.is_empty() && rest.trim_start().starts_with("unsafe"))
            || rest.starts_with("unsafe fn")
            || rest.starts_with("async fn");
        if !PUB_ITEMS.contains(&item) && !is_item {
            continue;
        }
        if item.is_empty() {
            continue;
        }
        // Walk upward over attributes and blank lines looking for a doc
        // comment (`///` lexes to a comment starting with `/`) or a
        // `#[doc…]` attribute; `#[doc(hidden)]` waives the requirement.
        let mut documented = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let above = &ctx.lines[j];
            let above_code = above.code.trim();
            if above.comment.trim_start().starts_with('/') {
                documented = true;
                break;
            }
            if ctx.attr_line[j] {
                if above_code.contains("doc") {
                    documented = true;
                    break;
                }
                continue;
            }
            if above_code.is_empty() && above.comment.is_empty() {
                // Blank line between docs and item: stop (rustdoc would
                // not attach the comment either).
                break;
            }
            if above_code.is_empty() {
                // A plain comment directly above is not a doc comment.
                break;
            }
            break;
        }
        if !documented {
            out.push(Violation {
                rule: Rule::L005,
                line: i + 1,
                message: format!("public {item} is missing a rustdoc comment"),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Lints one file's source text under the given [`FileClass`].  Returns
/// the surviving (unjustified) violations, including malformed allow
/// comments.
pub fn lint_source(source: &str, class: FileClass) -> Vec<Violation> {
    let ctx = build_context(source);
    let allows = collect_allows(&ctx.lines);
    let mut raw = Vec::new();
    if class.strict() {
        let decls = container_decls(&ctx.lines);
        check_l001(&ctx, &decls, &mut raw);
        check_l002(&ctx, &mut raw);
    }
    check_l003(&ctx, &mut raw);
    check_l004(&ctx, &mut raw);
    if class.docs_required() {
        check_l005(&ctx, &mut raw);
    }
    let mut out: Vec<Violation> = raw
        .into_iter()
        .filter(|v| !allowed(&allows, v.rule, v.line))
        .collect();
    // An allow that names no valid rule or carries no reason is itself a
    // violation: justifications must be auditable.
    for a in &allows {
        match a.rule {
            None => out.push(Violation {
                rule: Rule::L002,
                line: a.line,
                message: "`lint: allow(…)` names an unknown rule".into(),
            }),
            Some(rule) if a.reason.is_empty() => out.push(Violation {
                rule,
                line: a.line,
                message: format!("`lint: allow({rule})` is missing its mandatory reason"),
            }),
            Some(_) => {}
        }
    }
    out.sort_by_key(|v| (v.line, v.rule));
    out
}

/// Counts the *justified* sites per rule (allow comments with a reason),
/// for trend reporting.
pub fn count_allows(source: &str) -> Vec<(Rule, usize)> {
    let ctx = build_context(source);
    let allows = collect_allows(&ctx.lines);
    let mut counts = vec![0usize; ALL_RULES.len()];
    for a in &allows {
        if let Some(rule) = a.rule {
            if !a.reason.is_empty() {
                counts[ALL_RULES.iter().position(|&r| r == rule).unwrap_or(0)] += 1;
            }
        }
    }
    ALL_RULES.iter().copied().zip(counts).collect()
}

/// One linted file's outcome.
#[derive(Debug)]
pub struct FileReport {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Surviving violations.
    pub violations: Vec<Violation>,
    /// Enclosing item symbol per violation (same order), for
    /// fingerprinting.
    pub symbols: Vec<String>,
    /// Justified sites per rule in this file.
    pub allows: Vec<(Rule, usize)>,
}

/// The innermost item symbol enclosing 1-based `line` (`Ty::method`,
/// `function`, `Struct`), or `"<file>"` for file-level sites.  Symbols
/// anchor violation fingerprints so baselines survive line drift.
pub fn enclosing_symbol(file: &ast::File, line: usize) -> String {
    fn visit(items: &[ast::Item], prefix: &str, line: usize, best: &mut Option<(usize, String)>) {
        for item in items {
            let qualify = |name: &str| {
                if prefix.is_empty() {
                    name.to_string()
                } else {
                    format!("{prefix}::{name}")
                }
            };
            // Innermost wins: a later/deeper candidate starts no earlier.
            let mut record = |start: usize, name: String| {
                let better = match best {
                    None => true,
                    Some((l, _)) => *l <= start,
                };
                if better {
                    *best = Some((start, name));
                }
            };
            match &item.kind {
                ast::ItemKind::Fn(def) => {
                    let end = def.body.as_ref().map_or(def.line, |b| b.close_line);
                    if def.line <= line && line <= end {
                        record(def.line, qualify(&def.name));
                    }
                }
                ast::ItemKind::Impl { self_ty, items, .. } => {
                    visit(items, resolve::base_type_name(self_ty), line, best);
                }
                ast::ItemKind::Trait { name, items } => {
                    visit(items, name, line, best);
                }
                ast::ItemKind::Mod {
                    items: Some(inner), ..
                } => {
                    visit(inner, prefix, line, best);
                }
                ast::ItemKind::Struct { name, .. } if item.line == line => {
                    record(item.line, qualify(name));
                }
                ast::ItemKind::Static { name, .. } if item.line == line => {
                    record(item.line, qualify(name));
                }
                _ => {}
            }
        }
    }
    let mut best = None;
    visit(&file.items, "", line, &mut best);
    best.map_or_else(|| "<file>".to_string(), |(_, name)| name)
}

/// The stable fingerprint of one violation: rule, `/`-normalized path,
/// and enclosing symbol — deliberately no line number, so moving code
/// within a function does not churn baselines.
pub fn fingerprint(rule: Rule, path: &Path, symbol: &str) -> String {
    let normalized: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    format!("{rule}:{}:{symbol}", normalized.join("/"))
}

/// The whole workspace's lint outcome.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Per-file outcomes that carry violations or allows.
    pub files: Vec<FileReport>,
}

impl WorkspaceReport {
    /// Total surviving violations.
    pub fn violation_count(&self) -> usize {
        self.files.iter().map(|f| f.violations.len()).sum()
    }

    /// `(violations, allows)` per rule, in rule order.
    pub fn per_rule(&self) -> [(Rule, usize, usize); ALL_RULES.len()] {
        let mut out = ALL_RULES.map(|r| (r, 0, 0));
        for file in &self.files {
            for v in &file.violations {
                let slot = &mut out[ALL_RULES.iter().position(|&r| r == v.rule).unwrap_or(0)];
                slot.1 += 1;
            }
            for &(rule, n) in &file.allows {
                let slot = &mut out[ALL_RULES.iter().position(|&r| r == rule).unwrap_or(0)];
                slot.2 += n;
            }
        }
        out
    }

    /// Every violation's fingerprint, sorted (a multiset: duplicates
    /// are kept so counts are comparable).
    pub fn fingerprints(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .files
            .iter()
            .flat_map(|f| {
                f.violations
                    .iter()
                    .zip(&f.symbols)
                    .map(|(v, s)| fingerprint(v.rule, &f.path, s))
            })
            .collect();
        out.sort();
        out
    }

    /// Fingerprints of violations *not* present in `baseline`
    /// (count-aware: a third duplicate of a twice-baselined finding is
    /// new), paired with their file and line for display.
    pub fn new_since<'a>(&'a self, baseline: &[String]) -> Vec<(String, &'a Path, usize)> {
        let mut budget: BTreeMap<&str, usize> = BTreeMap::new();
        for fp in baseline {
            *budget.entry(fp.as_str()).or_insert(0) += 1;
        }
        let mut out = Vec::new();
        for file in &self.files {
            for (v, symbol) in file.violations.iter().zip(&file.symbols) {
                let fp = fingerprint(v.rule, &file.path, symbol);
                match budget.get_mut(fp.as_str()) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => out.push((fp, file.path.as_path(), v.line)),
                }
            }
        }
        out.sort();
        out
    }

    /// Renders the machine-readable JSON report (`lint_report.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"files_scanned\": ");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\n  \"violations\": ");
        s.push_str(&self.violation_count().to_string());
        s.push_str(",\n  \"per_rule\": {");
        for (i, (rule, violations, allows)) in self.per_rule().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{rule}\": {{\"violations\": {violations}, \"allowed\": {allows}}}"
            ));
        }
        s.push_str("\n  },\n  \"sites\": [");
        let mut first = true;
        for file in &self.files {
            for (v, symbol) in file.violations.iter().zip(&file.symbols) {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                     \"fingerprint\": \"{}\", \"message\": \"{}\"}}",
                    v.rule,
                    file.path.display(),
                    v.line,
                    fingerprint(v.rule, &file.path, symbol),
                    v.message.replace('\\', "\\\\").replace('"', "\\\"")
                ));
            }
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// Crates whose `src/` is library code, with their L005 (docs) flag.
const LIBRARY_CRATES: [(&str, bool); 8] = [
    ("dengraph-core", true),
    ("dengraph-json", true),
    ("dengraph-graph", false),
    ("dengraph-minhash", false),
    ("dengraph-parallel", false),
    ("dengraph-stream", false),
    ("dengraph-text", false),
    ("dengraph-lint", false),
];

/// Classifies one workspace-relative source path.  Returns `None` for
/// files outside the lint's scope (vendored code, generated output).
pub fn classify(path: &Path) -> Option<FileClass> {
    let mut components = path.components().map(|c| c.as_os_str().to_string_lossy());
    if components.next().as_deref() != Some("crates") {
        return None;
    }
    let crate_name = components.next()?;
    if components.next().as_deref() != Some("src") {
        // benches/, tests/, examples/ inside a crate: out of scope.
        return None;
    }
    // Binary entry points are operational glue, not library surface.
    let rest: Vec<String> = components.map(|c| c.into_owned()).collect();
    if rest.first().map(String::as_str) == Some("bin") {
        return Some(FileClass::Support);
    }
    match LIBRARY_CRATES.iter().find(|(name, _)| *name == crate_name) {
        Some(&(_, docs_required)) => Some(FileClass::Library { docs_required }),
        None => Some(FileClass::Support),
    }
}

/// Recursively collects `.rs` files under `dir`, workspace-relative.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root.join(dir))? {
        let entry = entry?;
        let rel = dir.join(entry.file_name());
        let kind = entry.file_type()?;
        if kind.is_dir() {
            collect_rs(root, &rel, out)?;
        } else if rel.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints every in-scope source file under the workspace `root`
/// (`crates/*/src/**/*.rs`; the vendored crates are out of scope):
/// the lexical rules L001–L005 per file, then the semantic rules
/// L006–L009 over the resolved module graph, merged per file with the
/// same allow-comment filtering.
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs(root, Path::new("crates"), &mut files)?;
    files.sort();
    let ws = resolve::Workspace::load(root);
    let mut semantic_map = semantic::analyze(&ws, semantic::Mode::Workspace);
    let mut report = WorkspaceReport::default();
    for rel in files {
        let Some(class) = classify(&rel) else {
            continue;
        };
        let source = std::fs::read_to_string(root.join(&rel))?;
        report.files_scanned += 1;
        let mut violations = lint_source(&source, class);
        if class.strict() {
            if let Some(sem) = semantic_map.remove(&rel) {
                let allows = collect_allows(&lexer::split(&source));
                violations.extend(
                    sem.into_iter()
                        .filter(|v| !allowed(&allows, v.rule, v.line)),
                );
                violations.sort_by_key(|v| (v.line, v.rule));
            }
        }
        let allows: Vec<(Rule, usize)> = count_allows(&source)
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .collect();
        if !violations.is_empty() || !allows.is_empty() {
            let file_ast = ast::parse_file(&source);
            let symbols = violations
                .iter()
                .map(|v| enclosing_symbol(&file_ast, v.line))
                .collect();
            report.files.push(FileReport {
                path: rel,
                violations,
                symbols,
                allows,
            });
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

/// Serializes fingerprints as the committed baseline
/// (`lint_baseline.json`): a sorted JSON string array.
pub fn baseline_json(fingerprints: &[String]) -> String {
    let mut s = String::from("[");
    for (i, fp) in fingerprints.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n  \"");
        s.push_str(&fp.replace('\\', "\\\\").replace('"', "\\\""));
        s.push('"');
    }
    if !fingerprints.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Parses a baseline file: every JSON string literal in the text, in
/// order.  Tolerant by design — the baseline is machine-written.
pub fn parse_baseline(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '"' {
            continue;
        }
        let mut lit = String::new();
        loop {
            match chars.next() {
                Some('\\') => {
                    if let Some(esc) = chars.next() {
                        lit.push(esc);
                    }
                }
                Some('"') | None => break,
                Some(other) => lit.push(other),
            }
        }
        out.push(lit);
    }
    out
}
