//! A lightweight item/expression tree over the token stream.
//!
//! This is **not** a Rust grammar: it is the minimal structure the
//! semantic rules (L006–L009) need — function boundaries with names and
//! parameters, `impl` context, struct fields and their type text, `use`
//! declarations, and inside bodies the things dataflow cares about:
//! `let` bindings, call and method chains, closures, and control-flow
//! blocks.  The parser is *forgiving by construction*: any token it does
//! not understand is skipped, unclosed delimiters close at end of input,
//! and nothing ever panics on malformed input.  Precision lost here
//! shows up as missed findings, never as a crash.
//!
//! Parsing happens in two passes: the token stream is first grouped into
//! a delimiter tree ([`Tree`], the same shape as a proc-macro token
//! stream), then a recursive-descent pass over sibling slices builds
//! items and expressions.  Angle brackets are **not** delimiters; the
//! parser skips balanced `<…>` runs only where generics can occur
//! (after `::`, after type names, after `impl`/`fn`).

use crate::lexer::{self, Token, TokenKind};

// ---------------------------------------------------------------------------
// Delimiter tree
// ---------------------------------------------------------------------------

/// Bracket style of a [`Group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// A balanced delimiter group of the token stream.
#[derive(Debug, Clone)]
pub struct Group {
    /// The bracket style.
    pub delim: Delim,
    /// The trees inside the brackets.
    pub trees: Vec<Tree>,
    /// 1-based line of the opening bracket.
    pub open_line: usize,
    /// 1-based line of the closing bracket (end of input if unclosed).
    pub close_line: usize,
}

/// One node of the delimiter tree: a leaf token or a bracketed group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A balanced `()`/`[]`/`{}` group.
    Group(Group),
}

impl Tree {
    fn leaf(&self) -> Option<&Token> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    fn line(&self) -> usize {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.open_line,
        }
    }

    fn is_punct(&self, p: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    }

    fn is_ident(&self, name: &str) -> bool {
        self.leaf()
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    }

    fn ident(&self) -> Option<&str> {
        self.leaf().and_then(|t| {
            if t.kind == TokenKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    fn group(&self, delim: Delim) -> Option<&Group> {
        match self {
            Tree::Group(g) if g.delim == delim => Some(g),
            _ => None,
        }
    }
}

fn open_delim(c: &str) -> Option<Delim> {
    match c {
        "(" => Some(Delim::Paren),
        "[" => Some(Delim::Bracket),
        "{" => Some(Delim::Brace),
        _ => None,
    }
}

fn close_delim(c: &str) -> Option<Delim> {
    match c {
        ")" => Some(Delim::Paren),
        "]" => Some(Delim::Bracket),
        "}" => Some(Delim::Brace),
        _ => None,
    }
}

/// Groups a token stream into a delimiter tree.  Unmatched closers are
/// dropped; unclosed groups close at end of input.
pub fn build_trees(tokens: &[Token]) -> Vec<Tree> {
    // Stack of (delim, open_line, children).
    let mut stack: Vec<(Delim, usize, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in tokens {
        if tok.kind == TokenKind::Punct {
            if let Some(d) = open_delim(&tok.text) {
                stack.push((d, tok.line, Vec::new()));
                continue;
            }
            if let Some(d) = close_delim(&tok.text) {
                // Close the nearest matching open group; a mismatched
                // closer closes nothing (dropped).
                if stack.last().is_some_and(|(open, _, _)| *open == d) {
                    let (delim, open_line, trees) = stack.pop().expect("non-empty stack");
                    let group = Tree::Group(Group {
                        delim,
                        trees,
                        open_line,
                        close_line: tok.line,
                    });
                    match stack.last_mut() {
                        Some((_, _, parent)) => parent.push(group),
                        None => top.push(group),
                    }
                }
                continue;
            }
        }
        let leaf = Tree::Leaf(tok.clone());
        match stack.last_mut() {
            Some((_, _, children)) => children.push(leaf),
            None => top.push(leaf),
        }
    }
    // Close any unterminated groups at end of input.
    let last_line = tokens.last().map_or(1, |t| t.line);
    while let Some((delim, open_line, trees)) = stack.pop() {
        let group = Tree::Group(Group {
            delim,
            trees,
            open_line,
            close_line: last_line,
        });
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(group),
            None => top.push(group),
        }
    }
    top
}

// ---------------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------------

/// A parsed source file.
#[derive(Debug, Default, Clone)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item, with test-context tracking.
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// 1-based line of the item keyword.
    pub line: usize,
    /// True under `#[cfg(test)]` / `#[test]` (including inherited from an
    /// enclosing test module).
    pub in_test: bool,
}

/// One flattened `use` target: the path with the leaf name last.
#[derive(Debug, Clone)]
pub struct UseTarget {
    /// Full path segments, e.g. `["crate", "pool", "Pool"]`.
    pub path: Vec<String>,
    /// Local name the leaf is bound to (`as` alias or last segment);
    /// `*` for glob imports.
    pub local: String,
}

/// The parsed forms of an [`Item`].
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// A `use` declaration, flattened over `{…}` groups.
    Use(Vec<UseTarget>),
    /// `mod name;` (file module) or `mod name { … }` (inline).
    Mod {
        /// Module name.
        name: String,
        /// Inline body, or `None` for a file module.
        items: Option<Vec<Item>>,
    },
    /// A function definition.
    Fn(FnDef),
    /// An `impl` block (inherent or trait).
    Impl {
        /// Normalized text of the implemented type (generics kept).
        self_ty: String,
        /// Normalized trait path text for trait impls.
        trait_name: Option<String>,
        /// Items inside the impl (functions and nested consts).
        items: Vec<Item>,
    },
    /// A trait definition; default-bodied methods appear in `items`.
    Trait {
        /// Trait name.
        name: String,
        /// Trait items (methods with or without bodies).
        items: Vec<Item>,
    },
    /// A struct with named fields (tuple/unit structs have none).
    Struct {
        /// Struct name.
        name: String,
        /// `(field, normalized type text)` pairs.
        fields: Vec<(String, String)>,
    },
    /// A `static` or `const` with its type text and initializer.
    Static {
        /// Item name.
        name: String,
        /// Normalized type text.
        ty: String,
        /// Initializer expression.
        init: Option<Expr>,
    },
    /// Anything else (enums, type aliases, macro definitions, …).
    Other,
}

/// A function definition (free, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `(name, normalized type text)` per parameter; a `self` receiver
    /// appears as `("self", "Self")`.
    pub params: Vec<(String, String)>,
    /// The body, or `None` for trait method declarations.
    pub body: Option<Block>,
}

// ---------------------------------------------------------------------------
// Statements and expressions
// ---------------------------------------------------------------------------

/// A brace-delimited body.
#[derive(Debug, Clone)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the closing brace — the end of every `let`
    /// binding's scope in this block.
    pub close_line: usize,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let` binding (incl. `let … else { … }`).
    Let(LetStmt),
    /// An expression statement.
    Expr(Expr),
    /// A nested item (fn, use, …).
    Item(Box<Item>),
}

/// A `let` binding.
#[derive(Debug, Clone)]
pub struct LetStmt {
    /// Every identifier bound by the pattern (first is the primary).
    pub names: Vec<String>,
    /// Normalized type-ascription text, if present.
    pub ty: Option<String>,
    /// The initializer.
    pub init: Option<Expr>,
    /// Diverging `else` block of a `let … else`.
    pub else_block: Option<Block>,
    /// 1-based line of the `let`.
    pub line: usize,
}

/// One expression, at the granularity the rules need.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A primary with postfix segments — paths, calls, method chains.
    Chain(Chain),
    /// A closure literal.
    Closure(Closure),
    /// A plain or `unsafe` block.
    Block(Block),
    /// `if`/`if let`, with the else branch as a nested expression.
    If {
        /// The condition (scrutinee for `if let`).
        cond: Box<Expr>,
        /// The then block.
        then_block: Block,
        /// `else` block or `else if` chain.
        else_expr: Option<Box<Expr>>,
    },
    /// A `for` loop.
    For {
        /// Identifiers bound by the loop pattern.
        pat_names: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// The loop body.
        body: Block,
        /// 1-based line of the `for`.
        line: usize,
    },
    /// A `while`/`while let` loop.
    While {
        /// The condition (scrutinee for `while let`).
        cond: Box<Expr>,
        /// The loop body.
        body: Block,
    },
    /// A `loop` block.
    Loop {
        /// The loop body.
        body: Block,
    },
    /// A `match`, with arm guards and arm bodies flattened together.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// Guard and body expressions of every arm, in order.
        arms: Vec<Expr>,
    },
    /// A macro invocation (`name!(…)` / `name![…]` / `name!{…}`).
    Macro(MacroCall),
    /// Operands of binary/assignment/range/cast sequences, flattened.
    Seq(Vec<Expr>),
    /// Nothing (empty operand position).
    Unit,
}

/// A macro invocation.
#[derive(Debug, Clone)]
pub struct MacroCall {
    /// Macro path text (`panic`, `vec`, `debug_assert`, …).
    pub name: String,
    /// Best-effort parse of the argument tokens as expressions.
    pub args: Vec<Expr>,
    /// 1-based line of the macro name.
    pub line: usize,
}

/// The head of a [`Chain`].
#[derive(Debug, Clone)]
pub enum ChainRoot {
    /// A (possibly qualified) path: `x`, `self.y` starts as `self`,
    /// `crate::a::B`.  Segment turbofish is stripped.
    Path(Vec<String>),
    /// A parenthesized or otherwise structured sub-expression.
    Expr(Box<Expr>),
    /// A literal, with its (blanked-string) token text — number literals
    /// keep their real text, so `0.0f64` is distinguishable.
    Lit(String),
}

/// A postfix segment of a [`Chain`].
#[derive(Debug, Clone)]
pub enum ChainSeg {
    /// `(args)` applied to the root path — a function call.
    Call {
        /// Call arguments.
        args: Vec<Expr>,
        /// 1-based line of the argument list.
        line: usize,
    },
    /// `.name(args)` — a method call.
    Method {
        /// Method name.
        name: String,
        /// Call arguments.
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: usize,
        /// Turbofish text (`<f64>` for `.sum::<f64>()`), if present.
        turbofish: Option<String>,
    },
    /// `.name` / `.0` — a field access.
    Field(String),
    /// `[index]` — an index expression.
    Index(Vec<Expr>),
    /// `Path { field: expr, … }` — a struct literal's field values.
    StructLit(Vec<Expr>),
}

/// A primary expression plus its postfix segments.
#[derive(Debug, Clone)]
pub struct Chain {
    /// The head.
    pub root: ChainRoot,
    /// Postfix segments in application order.
    pub segs: Vec<ChainSeg>,
    /// 1-based line the chain starts on.
    pub line: usize,
}

/// A closure literal.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Parameter names.
    pub params: Vec<String>,
    /// The body expression.
    pub body: Box<Expr>,
    /// 1-based line of the opening `|`.
    pub line: usize,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses full source text into a [`File`].
pub fn parse_file(source: &str) -> File {
    let tokens = lexer::tokenize(source);
    let trees = build_trees(&tokens);
    let mut p = Parser {
        trees: &trees,
        i: 0,
    };
    File {
        items: p.parse_items(false),
    }
}

/// Binary / assignment / range operators that continue an expression.
const BINARY_OPS: [&str; 26] = [
    "+", "-", "*", "/", "%", "^", "&", "|", "<", ">", "=", "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "..", "..=",
];

/// Keywords that never start an expression operand (statement context).
fn is_item_keyword(name: &str) -> bool {
    matches!(
        name,
        "fn" | "use"
            | "mod"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "pub"
            | "extern"
            | "union"
    )
}

struct Parser<'t> {
    trees: &'t [Tree],
    i: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> Option<&'t Tree> {
        self.trees.get(self.i)
    }

    fn peek_at(&self, offset: usize) -> Option<&'t Tree> {
        self.trees.get(self.i + offset)
    }

    fn bump(&mut self) -> Option<&'t Tree> {
        let t = self.trees.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(p)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_ident(name)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Skips one balanced `<…>` run if positioned on `<`.
    fn skip_generics(&mut self) {
        if !self.peek().is_some_and(|t| t.is_punct("<")) {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth <= 0 {
                    self.i += 1;
                    return;
                }
            } else if t.is_punct("->") {
                // `fn(…) -> T` inside generics: the `>` in `->` is joined
                // and never miscounted, nothing to do.
            } else if t.is_punct(";") {
                // Give up at a statement boundary — malformed input.
                return;
            }
            self.i += 1;
        }
    }

    /// Like [`Self::skip_generics`], but returns the rendered text of the
    /// `<…>` run (`None` when not positioned on `<`).
    fn generics_text(&mut self) -> Option<String> {
        if !self.peek().is_some_and(|t| t.is_punct("<")) {
            return None;
        }
        let mut out = String::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                Tree::Leaf(tok) => {
                    if tok.is_punct_text("<") {
                        depth += 1;
                    } else if tok.is_punct_text(">") {
                        depth -= 1;
                        if depth <= 0 {
                            out.push('>');
                            self.i += 1;
                            return Some(out);
                        }
                    } else if tok.is_punct_text(";") {
                        return Some(out);
                    }
                    out.push_str(&tok.text);
                }
                Tree::Group(g) => out.push_str(match g.delim {
                    Delim::Paren => "()",
                    Delim::Bracket => "[]",
                    Delim::Brace => "{}",
                }),
            }
            self.i += 1;
        }
        Some(out)
    }

    /// Collects normalized type text until one of `stops` at angle-depth
    /// zero (group subtrees are rendered opaquely).
    fn type_text_until(&mut self, stops: &[&str]) -> String {
        let mut out = String::new();
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth <= 0 {
                match t {
                    Tree::Leaf(tok) => {
                        if (tok.kind == TokenKind::Punct || tok.kind == TokenKind::Ident)
                            && stops.contains(&tok.text.as_str())
                        {
                            break;
                        }
                    }
                    Tree::Group(g) => {
                        let open = match g.delim {
                            Delim::Paren => "(",
                            Delim::Bracket => "[",
                            Delim::Brace => "{",
                        };
                        if stops.contains(&open) {
                            break;
                        }
                    }
                }
            }
            match t {
                Tree::Leaf(tok) => {
                    if tok.is_punct_text("<") {
                        depth += 1;
                    } else if tok.is_punct_text(">") {
                        depth -= 1;
                    }
                    out.push_str(&tok.text);
                }
                Tree::Group(g) => {
                    out.push_str(match g.delim {
                        Delim::Paren => "()",
                        Delim::Bracket => "[]",
                        Delim::Brace => "{}",
                    });
                }
            }
            self.i += 1;
        }
        out
    }

    // -- items ----------------------------------------------------------

    /// Parses a sibling run of items.  `in_test` marks an enclosing test
    /// module.
    fn parse_items(&mut self, in_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        let mut pending_test = false;
        while self.i < self.trees.len() {
            let before = self.i;
            // Attributes: `#` `[ … ]` (or `#!` `[ … ]`).
            if self.peek().is_some_and(|t| t.is_punct("#")) {
                self.i += 1;
                self.eat_punct("!");
                if let Some(Tree::Group(g)) = self.peek() {
                    if g.delim == Delim::Bracket {
                        if attr_is_test(g) {
                            pending_test = true;
                        }
                        self.i += 1;
                    }
                }
                continue;
            }
            if let Some(item) = self.parse_item(in_test || pending_test) {
                items.push(item);
                pending_test = false;
                continue;
            }
            // Not an item: skip one tree so we always make progress.
            if self.i == before {
                self.i += 1;
            }
        }
        items
    }

    /// Parses one item if positioned on one.
    fn parse_item(&mut self, in_test: bool) -> Option<Item> {
        let start = self.i;
        // Visibility and modifiers.
        if self.eat_ident("pub") {
            // `pub(crate)` / `pub(super)` / `pub(in path)`.
            if self.peek().and_then(|t| t.group(Delim::Paren)).is_some() {
                self.i += 1;
            }
        }
        loop {
            if self.eat_ident("async") || self.eat_ident("unsafe") || self.eat_ident("default") {
                continue;
            }
            if self.eat_ident("extern") {
                // `extern "C"` string.
                if self
                    .peek()
                    .and_then(Tree::leaf)
                    .is_some_and(|t| t.kind == TokenKind::Str)
                {
                    self.i += 1;
                }
                continue;
            }
            break;
        }
        let kw = match self.peek().and_then(Tree::ident) {
            Some(k) if is_item_keyword(k) || k == "macro_rules" => k.to_string(),
            // `const fn` reaches here with `const` eaten below; handle
            // plain identifiers as "not an item".
            _ => {
                self.i = start;
                return None;
            }
        };
        let line = self.peek().map_or(1, Tree::line);
        match kw.as_str() {
            "fn" => {
                self.i += 1;
                let def = self.parse_fn_after_kw(line)?;
                Some(Item {
                    kind: ItemKind::Fn(def),
                    line,
                    in_test,
                })
            }
            "const" => {
                // `const fn name…` or `const NAME: T = …;`.
                self.i += 1;
                if self.peek().is_some_and(|t| t.is_ident("fn")) {
                    self.i += 1;
                    let def = self.parse_fn_after_kw(line)?;
                    return Some(Item {
                        kind: ItemKind::Fn(def),
                        line,
                        in_test,
                    });
                }
                self.parse_static_like(line, in_test)
            }
            "static" => {
                self.i += 1;
                self.eat_ident("mut");
                self.parse_static_like(line, in_test)
            }
            "use" => {
                self.i += 1;
                let targets = self.parse_use_targets();
                self.eat_punct(";");
                Some(Item {
                    kind: ItemKind::Use(targets),
                    line,
                    in_test,
                })
            }
            "mod" => {
                self.i += 1;
                let name = self.bump().and_then(Tree::ident)?.to_string();
                if let Some(Tree::Group(g)) = self.peek() {
                    if g.delim == Delim::Brace {
                        let mut inner = Parser {
                            trees: &g.trees,
                            i: 0,
                        };
                        let is_test_mod = in_test;
                        let items = inner.parse_items(is_test_mod);
                        self.i += 1;
                        return Some(Item {
                            kind: ItemKind::Mod {
                                name,
                                items: Some(items),
                            },
                            line,
                            in_test,
                        });
                    }
                }
                self.eat_punct(";");
                Some(Item {
                    kind: ItemKind::Mod { name, items: None },
                    line,
                    in_test,
                })
            }
            "impl" => {
                self.i += 1;
                self.skip_generics();
                let first = self.type_text_until(&["for", "where", "{"]);
                let (self_ty, trait_name) = if self.eat_ident("for") {
                    let ty = self.type_text_until(&["where", "{"]);
                    (ty, Some(first))
                } else {
                    (first, None)
                };
                // Skip the `where` clause.
                while self.peek().is_some_and(|t| t.group(Delim::Brace).is_none()) {
                    self.i += 1;
                }
                let items = match self.peek() {
                    Some(Tree::Group(g)) => {
                        let mut inner = Parser {
                            trees: &g.trees,
                            i: 0,
                        };
                        let items = inner.parse_items(in_test);
                        self.i += 1;
                        items
                    }
                    _ => Vec::new(),
                };
                Some(Item {
                    kind: ItemKind::Impl {
                        self_ty,
                        trait_name,
                        items,
                    },
                    line,
                    in_test,
                })
            }
            "trait" => {
                self.i += 1;
                let name = self.bump().and_then(Tree::ident)?.to_string();
                while self.peek().is_some_and(|t| t.group(Delim::Brace).is_none()) {
                    if self.peek().is_some_and(|t| t.is_punct(";")) {
                        break;
                    }
                    self.i += 1;
                }
                let items = match self.peek() {
                    Some(Tree::Group(g)) => {
                        let mut inner = Parser {
                            trees: &g.trees,
                            i: 0,
                        };
                        let items = inner.parse_items(in_test);
                        self.i += 1;
                        items
                    }
                    _ => {
                        self.eat_punct(";");
                        Vec::new()
                    }
                };
                Some(Item {
                    kind: ItemKind::Trait { name, items },
                    line,
                    in_test,
                })
            }
            "struct" => {
                self.i += 1;
                let name = self.bump().and_then(Tree::ident)?.to_string();
                self.skip_generics();
                // Skip `where` clauses.
                while self.peek().is_some_and(|t| {
                    t.leaf().is_some_and(|tok| {
                        !(tok.is_punct_text(";")) && t.group(Delim::Brace).is_none()
                    }) && t.group(Delim::Paren).is_none()
                        && t.group(Delim::Brace).is_none()
                }) {
                    self.i += 1;
                }
                let mut fields = Vec::new();
                match self.peek() {
                    Some(Tree::Group(g)) if g.delim == Delim::Brace => {
                        fields = parse_named_fields(&g.trees);
                        self.i += 1;
                    }
                    Some(Tree::Group(g)) if g.delim == Delim::Paren => {
                        // Tuple struct: no named fields.
                        self.i += 1;
                        self.eat_punct(";");
                    }
                    _ => {
                        self.eat_punct(";");
                    }
                }
                Some(Item {
                    kind: ItemKind::Struct { name, fields },
                    line,
                    in_test,
                })
            }
            "enum" | "union" | "type" => {
                self.i += 1;
                // name, generics, then body/alias — structure unused.
                self.bump();
                self.skip_generics();
                while let Some(t) = self.peek() {
                    if t.is_punct(";") {
                        self.i += 1;
                        break;
                    }
                    if t.group(Delim::Brace).is_some() {
                        self.i += 1;
                        break;
                    }
                    self.i += 1;
                }
                Some(Item {
                    kind: ItemKind::Other,
                    line,
                    in_test,
                })
            }
            "macro_rules" => {
                // `macro_rules ! name { … }`
                self.i += 1;
                self.eat_punct("!");
                self.bump();
                if self.peek().is_some_and(|t| t.group(Delim::Brace).is_some()) {
                    self.i += 1;
                }
                Some(Item {
                    kind: ItemKind::Other,
                    line,
                    in_test,
                })
            }
            _ => {
                self.i = start;
                None
            }
        }
    }

    fn parse_static_like(&mut self, line: usize, in_test: bool) -> Option<Item> {
        let name = self.bump().and_then(Tree::ident)?.to_string();
        let ty = if self.eat_punct(":") {
            self.type_text_until(&["=", ";"])
        } else {
            String::new()
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(true))
        } else {
            None
        };
        self.eat_punct(";");
        Some(Item {
            kind: ItemKind::Static { name, ty, init },
            line,
            in_test,
        })
    }

    /// Parses a fn after the `fn` keyword: name, generics, params, return
    /// type, where clause, body.
    fn parse_fn_after_kw(&mut self, line: usize) -> Option<FnDef> {
        let name = self.bump().and_then(Tree::ident)?.to_string();
        self.skip_generics();
        let params = match self.peek() {
            Some(Tree::Group(g)) if g.delim == Delim::Paren => {
                let params = parse_params(&g.trees);
                self.i += 1;
                params
            }
            _ => Vec::new(),
        };
        // Return type and where clause: skip to the body brace or `;`.
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.i += 1;
                return Some(FnDef {
                    name,
                    line,
                    params,
                    body: None,
                });
            }
            if t.group(Delim::Brace).is_some() {
                break;
            }
            self.i += 1;
        }
        let body = match self.peek() {
            Some(Tree::Group(g)) if g.delim == Delim::Brace => {
                let block = parse_block(g);
                self.i += 1;
                Some(block)
            }
            _ => None,
        };
        Some(FnDef {
            name,
            line,
            params,
            body,
        })
    }

    /// Parses the body of a `use` declaration into flattened targets.
    fn parse_use_targets(&mut self) -> Vec<UseTarget> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.parse_use_tree(&mut prefix, &mut out);
        out
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, out: &mut Vec<UseTarget>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.peek() {
                Some(t) if t.ident().is_some() || t.is_punct("*") => {
                    let seg = if t.is_punct("*") {
                        "*".to_string()
                    } else {
                        t.ident().unwrap_or_default().to_string()
                    };
                    self.i += 1;
                    if self.eat_punct("::") {
                        if let Some(Tree::Group(g)) = self.peek() {
                            if g.delim == Delim::Brace {
                                prefix.push(seg);
                                let mut inner = Parser {
                                    trees: &g.trees,
                                    i: 0,
                                };
                                loop {
                                    inner.parse_use_tree(prefix, out);
                                    if !inner.eat_punct(",") {
                                        break;
                                    }
                                }
                                self.i += 1;
                                prefix.truncate(depth_at_entry);
                                return;
                            }
                        }
                        prefix.push(seg);
                        continue;
                    }
                    // Leaf: optional `as alias`.
                    let mut local = seg.clone();
                    if self.eat_ident("as") {
                        if let Some(alias) = self.peek().and_then(Tree::ident) {
                            local = alias.to_string();
                            self.i += 1;
                        }
                    }
                    let mut path = prefix.clone();
                    path.push(seg);
                    out.push(UseTarget { path, local });
                    prefix.truncate(depth_at_entry);
                    return;
                }
                Some(t) if t.group(Delim::Brace).is_some() => {
                    // `use {a, b};` with no prefix segment.
                    let g = t.group(Delim::Brace).expect("matched Some above");
                    let mut inner = Parser {
                        trees: &g.trees,
                        i: 0,
                    };
                    loop {
                        inner.parse_use_tree(prefix, out);
                        if !inner.eat_punct(",") {
                            break;
                        }
                    }
                    self.i += 1;
                    return;
                }
                _ => return,
            }
        }
    }

    // -- expressions ----------------------------------------------------

    /// Parses one expression, consuming as much as possible.
    /// `struct_ok` gates `Path { … }` struct-literal parsing (false in
    /// condition / iterator position, matching Rust's restriction).
    fn parse_expr(&mut self, struct_ok: bool) -> Expr {
        let lhs = self.parse_operand(struct_ok);
        // Binary operator sequences flatten into Expr::Seq.
        let mut parts = vec![lhs];
        while let Some(t) = self.peek() {
            if let Some(tok) = t.leaf() {
                if tok.kind == TokenKind::Punct && BINARY_OPS.contains(&tok.text.as_str()) {
                    self.i += 1;
                    // Range with no upper bound (`a..`): stop cleanly.
                    if self.at_expr_end() {
                        break;
                    }
                    parts.push(self.parse_operand(struct_ok));
                    continue;
                }
                if tok.kind == TokenKind::Ident && tok.text == "as" {
                    // Cast: skip the type.
                    self.i += 1;
                    self.skip_cast_type();
                    continue;
                }
            }
            break;
        }
        if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Expr::Seq(parts)
        }
    }

    fn at_expr_end(&self) -> bool {
        match self.peek() {
            None => true,
            Some(t) => t.is_punct(";") || t.is_punct(","),
        }
    }

    /// Skips the type tokens after `as`.
    fn skip_cast_type(&mut self) {
        while let Some(t) = self.peek() {
            match t {
                Tree::Leaf(tok) => {
                    let is_ty = tok.kind == TokenKind::Ident
                        && !BINARY_OPS.contains(&tok.text.as_str())
                        && tok.text != "as"
                        || tok.is_punct_text("::")
                        || tok.kind == TokenKind::Lifetime
                        || tok.is_punct_text("&")
                        || tok.is_punct_text("*");
                    if tok.is_punct_text("<") {
                        self.skip_generics();
                        continue;
                    }
                    if !is_ty {
                        return;
                    }
                    // `as usize` then a binary op: the op ends the type.
                    self.i += 1;
                }
                Tree::Group(_) => return,
            }
        }
    }

    /// Parses one operand: prefixes, a primary, postfix segments.
    fn parse_operand(&mut self, struct_ok: bool) -> Expr {
        // Prefix operators and keywords that wrap an operand.
        loop {
            let Some(t) = self.peek() else {
                return Expr::Unit;
            };
            if t.is_punct("&") || t.is_punct("*") || t.is_punct("!") || t.is_punct("-") {
                self.i += 1;
                continue;
            }
            if t.is_ident("mut") || t.is_ident("ref") || t.is_ident("box") || t.is_ident("dyn") {
                self.i += 1;
                continue;
            }
            if t.is_ident("return") || t.is_ident("break") {
                self.i += 1;
                // Optional label after break.
                if self
                    .peek()
                    .and_then(Tree::leaf)
                    .is_some_and(|t| t.kind == TokenKind::Lifetime)
                {
                    self.i += 1;
                }
                if self.at_expr_end() || self.peek().is_none() {
                    return Expr::Unit;
                }
                continue;
            }
            if t.is_ident("continue") {
                self.i += 1;
                if self
                    .peek()
                    .and_then(Tree::leaf)
                    .is_some_and(|t| t.kind == TokenKind::Lifetime)
                {
                    self.i += 1;
                }
                return Expr::Unit;
            }
            if t.is_ident("move") {
                self.i += 1;
                continue;
            }
            break;
        }
        let Some(t) = self.peek() else {
            return Expr::Unit;
        };

        // Loop labels: `'l: loop { … }`.
        if t.leaf().is_some_and(|tok| tok.kind == TokenKind::Lifetime)
            && self.peek_at(1).is_some_and(|n| n.is_punct(":"))
        {
            self.i += 2;
            return self.parse_operand(struct_ok);
        }

        // Closures.
        if t.is_punct("|") || t.is_punct("||") {
            return self.parse_closure();
        }

        // Control flow and blocks.
        if let Some(kw) = t.ident() {
            match kw {
                "if" => return self.parse_if(),
                "match" => return self.parse_match(),
                "for" => return self.parse_for(),
                "while" => return self.parse_while(),
                "loop" => {
                    self.i += 1;
                    let body = self.expect_block();
                    return self.postfix(Expr::Loop { body }, struct_ok);
                }
                "unsafe" => {
                    self.i += 1;
                    let body = self.expect_block();
                    return self.postfix(Expr::Block(body), struct_ok);
                }
                "let" => {
                    // `let` in expression position (if let / while let
                    // conditions reach here): skip pattern, parse the
                    // scrutinee after `=`.
                    self.i += 1;
                    while let Some(t) = self.peek() {
                        if t.is_punct("=") {
                            self.i += 1;
                            break;
                        }
                        if t.is_punct(";") || t.group(Delim::Brace).is_some() {
                            break;
                        }
                        self.i += 1;
                    }
                    return self.parse_operand(false);
                }
                _ => {}
            }
        }

        // Primaries.
        let line = t.line();
        match t {
            Tree::Group(g) => {
                self.i += 1;
                match g.delim {
                    Delim::Brace => {
                        let block = parse_block(g);
                        self.postfix(Expr::Block(block), struct_ok)
                    }
                    Delim::Paren | Delim::Bracket => {
                        let exprs = parse_comma_exprs(&g.trees);
                        let inner = match exprs.len() {
                            0 => Expr::Unit,
                            1 => {
                                let mut exprs = exprs;
                                exprs.pop().expect("one element")
                            }
                            _ => Expr::Seq(exprs),
                        };
                        let chain = Chain {
                            root: ChainRoot::Expr(Box::new(inner)),
                            segs: Vec::new(),
                            line,
                        };
                        self.chain_postfix(chain, struct_ok)
                    }
                }
            }
            Tree::Leaf(tok) => match tok.kind {
                TokenKind::Ident => {
                    let path = self.parse_path();
                    // Macro invocation?
                    if self.peek().is_some_and(|t| t.is_punct("!")) {
                        if let Some(Tree::Group(g)) = self.peek_at(1) {
                            let name = path.join("::");
                            let args = parse_comma_exprs(&g.trees);
                            self.i += 2;
                            let mac = Expr::Macro(MacroCall { name, args, line });
                            return self.postfix(mac, struct_ok);
                        }
                    }
                    // Struct literal?
                    if struct_ok && path_is_type_like(&path) {
                        if let Some(Tree::Group(g)) = self.peek() {
                            if g.delim == Delim::Brace {
                                let fields = parse_struct_lit_fields(&g.trees);
                                self.i += 1;
                                let chain = Chain {
                                    root: ChainRoot::Path(path),
                                    segs: vec![ChainSeg::StructLit(fields)],
                                    line,
                                };
                                return self.chain_postfix(chain, struct_ok);
                            }
                        }
                    }
                    let chain = Chain {
                        root: ChainRoot::Path(path),
                        segs: Vec::new(),
                        line,
                    };
                    self.chain_postfix(chain, struct_ok)
                }
                TokenKind::Number | TokenKind::Str | TokenKind::Char => {
                    self.i += 1;
                    let chain = Chain {
                        root: ChainRoot::Lit(tok.text.clone()),
                        segs: Vec::new(),
                        line,
                    };
                    self.chain_postfix(chain, struct_ok)
                }
                TokenKind::Lifetime => {
                    self.i += 1;
                    Expr::Unit
                }
                TokenKind::Punct => {
                    // `::path` absolute paths.
                    if tok.text == "::" {
                        let path = self.parse_path();
                        let chain = Chain {
                            root: ChainRoot::Path(path),
                            segs: Vec::new(),
                            line,
                        };
                        return self.chain_postfix(chain, struct_ok);
                    }
                    // Unknown punct in operand position: consume to make
                    // progress and yield Unit.
                    self.i += 1;
                    Expr::Unit
                }
            },
        }
    }

    /// Parses a `::`-separated path, skipping turbofish generics.
    fn parse_path(&mut self) -> Vec<String> {
        let mut segs = Vec::new();
        self.eat_punct("::");
        while let Some(seg) = self.peek().and_then(Tree::ident) {
            segs.push(seg.to_string());
            self.i += 1;
            if self.eat_punct("::") {
                if self.peek().is_some_and(|t| t.is_punct("<")) {
                    self.skip_generics();
                    if !self.eat_punct("::") {
                        break;
                    }
                }
                continue;
            }
            break;
        }
        segs
    }

    fn parse_closure(&mut self) -> Expr {
        let line = self.peek().map_or(1, Tree::line);
        let mut params = Vec::new();
        if self.eat_punct("||") {
            // Zero-parameter closure.
        } else if self.eat_punct("|") {
            // Parameters until the closing `|` at depth 0.
            let mut expecting_name = true;
            while let Some(t) = self.peek() {
                if t.is_punct("|") {
                    self.i += 1;
                    break;
                }
                if t.is_punct(",") {
                    expecting_name = true;
                    self.i += 1;
                    continue;
                }
                if t.is_punct(":") {
                    // Parameter type: skip tokens until `,` or `|`.
                    self.i += 1;
                    while let Some(ty) = self.peek() {
                        if ty.is_punct(",") || ty.is_punct("|") {
                            break;
                        }
                        if ty.is_punct("<") {
                            self.skip_generics();
                            continue;
                        }
                        self.i += 1;
                    }
                    continue;
                }
                if expecting_name {
                    if let Some(name) = t.ident() {
                        if name != "mut" && name != "ref" && name != "_" {
                            params.push(name.to_string());
                            expecting_name = false;
                        }
                    }
                }
                self.i += 1;
            }
        }
        // Optional return type: `-> T` then a block.
        if self.eat_punct("->") {
            while self.peek().is_some_and(|t| t.group(Delim::Brace).is_none()) {
                self.i += 1;
            }
        }
        let body = self.parse_expr(true);
        Expr::Closure(Closure {
            params,
            body: Box::new(body),
            line,
        })
    }

    fn parse_if(&mut self) -> Expr {
        self.i += 1; // `if`
        let cond = self.parse_expr(false);
        let then_block = self.expect_block();
        let else_expr = if self.eat_ident("else") {
            if self.peek().is_some_and(|t| t.is_ident("if")) {
                Some(Box::new(self.parse_if()))
            } else {
                Some(Box::new(Expr::Block(self.expect_block())))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then_block,
            else_expr,
        }
    }

    fn parse_match(&mut self) -> Expr {
        self.i += 1; // `match`
        let scrutinee = self.parse_expr(false);
        let mut arms = Vec::new();
        if let Some(Tree::Group(g)) = self.peek() {
            if g.delim == Delim::Brace {
                self.i += 1;
                let mut p = Parser {
                    trees: &g.trees,
                    i: 0,
                };
                while p.i < p.trees.len() {
                    // Pattern: skip until `=>`, but parse guards.
                    let mut advanced = false;
                    while let Some(t) = p.peek() {
                        if t.is_punct("=>") {
                            p.i += 1;
                            advanced = true;
                            arms.push(p.parse_expr(true));
                            p.eat_punct(",");
                            break;
                        }
                        if t.is_ident("if") {
                            p.i += 1;
                            advanced = true;
                            arms.push(p.parse_expr(false));
                            continue;
                        }
                        p.i += 1;
                        advanced = true;
                    }
                    if !advanced {
                        break;
                    }
                }
            }
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
        }
    }

    fn parse_for(&mut self) -> Expr {
        let line = self.peek().map_or(1, Tree::line);
        self.i += 1; // `for`
        let mut pat_names = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_ident("in") {
                self.i += 1;
                break;
            }
            collect_pattern_idents(t, &mut pat_names);
            self.i += 1;
        }
        let iter = self.parse_expr(false);
        let body = self.expect_block();
        Expr::For {
            pat_names,
            iter: Box::new(iter),
            body,
            line,
        }
    }

    fn parse_while(&mut self) -> Expr {
        self.i += 1; // `while`
        let cond = self.parse_expr(false);
        let body = self.expect_block();
        Expr::While {
            cond: Box::new(cond),
            body,
        }
    }

    fn expect_block(&mut self) -> Block {
        match self.peek() {
            Some(Tree::Group(g)) if g.delim == Delim::Brace => {
                let block = parse_block(g);
                self.i += 1;
                block
            }
            _ => Block {
                stmts: Vec::new(),
                close_line: self.peek().map_or(0, Tree::line),
            },
        }
    }

    /// Applies postfix chain segments to a non-chain expression.
    fn postfix(&mut self, expr: Expr, struct_ok: bool) -> Expr {
        if self
            .peek()
            .is_some_and(|t| t.is_punct(".") || t.is_punct("?") || t.group(Delim::Paren).is_some())
        {
            let line = self.peek().map_or(1, Tree::line);
            let chain = Chain {
                root: ChainRoot::Expr(Box::new(expr)),
                segs: Vec::new(),
                line,
            };
            self.chain_postfix(chain, struct_ok)
        } else {
            expr
        }
    }

    /// Consumes postfix segments onto `chain`.
    fn chain_postfix(&mut self, mut chain: Chain, _struct_ok: bool) -> Expr {
        while let Some(t) = self.peek() {
            if t.is_punct("?") {
                self.i += 1;
                continue;
            }
            if let Some(g) = t.group(Delim::Paren) {
                let line = g.open_line;
                let args = parse_comma_exprs(&g.trees);
                self.i += 1;
                // A paren group directly after the root path is a call;
                // after a method segment it was already consumed.
                chain.segs.push(ChainSeg::Call { args, line });
                continue;
            }
            if let Some(g) = t.group(Delim::Bracket) {
                let args = parse_comma_exprs(&g.trees);
                self.i += 1;
                chain.segs.push(ChainSeg::Index(args));
                continue;
            }
            if t.is_punct(".") {
                self.i += 1;
                let Some(t) = self.peek() else { break };
                if t.is_ident("await") {
                    self.i += 1;
                    continue;
                }
                if let Some(tok) = t.leaf() {
                    if tok.kind == TokenKind::Number {
                        // Tuple field access `.0`.
                        self.i += 1;
                        chain.segs.push(ChainSeg::Field(tok.text.clone()));
                        continue;
                    }
                    if tok.kind == TokenKind::Ident {
                        let name = tok.text.clone();
                        let line = tok.line;
                        self.i += 1;
                        let mut turbofish = None;
                        if self.peek().is_some_and(|t| t.is_punct("::")) {
                            self.i += 1;
                            turbofish = self.generics_text();
                        }
                        if let Some(g) = self.peek().and_then(|t| t.group(Delim::Paren)) {
                            let args = parse_comma_exprs(&g.trees);
                            self.i += 1;
                            chain.segs.push(ChainSeg::Method {
                                name,
                                args,
                                line,
                                turbofish,
                            });
                        } else {
                            chain.segs.push(ChainSeg::Field(name));
                        }
                        continue;
                    }
                }
                break;
            }
            break;
        }
        Expr::Chain(chain)
    }
}

/// Is a `#[…]` attribute group a test marker (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, `#[bench]`)?
fn attr_is_test(g: &Group) -> bool {
    let mut saw_cfg = false;
    fn scan(trees: &[Tree], saw_cfg: &mut bool, hit: &mut bool) {
        for t in trees {
            match t {
                Tree::Leaf(tok) if tok.kind == TokenKind::Ident => {
                    if tok.text == "cfg" {
                        *saw_cfg = true;
                    }
                    if tok.text == "test" || tok.text == "bench" {
                        *hit = true;
                    }
                }
                Tree::Group(g) => scan(&g.trees, saw_cfg, hit),
                _ => {}
            }
        }
    }
    let mut hit = false;
    // Bare `#[test]` / `#[bench]`.
    if let Some(first) = g.trees.first().and_then(Tree::ident) {
        if (first == "test" || first == "bench") && g.trees.len() == 1 {
            return true;
        }
    }
    scan(&g.trees, &mut saw_cfg, &mut hit);
    saw_cfg && hit
}

/// Collects identifiers bound by a pattern tree (skipping path segments
/// that are type-like, i.e. capitalized enum variants).
fn collect_pattern_idents(t: &Tree, out: &mut Vec<String>) {
    match t {
        Tree::Leaf(tok) if tok.kind == TokenKind::Ident => {
            let name = tok.text.as_str();
            let keyword = matches!(name, "mut" | "ref" | "_" | "Some" | "Ok" | "Err" | "None");
            let type_like = name.chars().next().is_some_and(char::is_uppercase);
            if !keyword && !type_like {
                out.push(name.to_string());
            }
        }
        Tree::Group(g) => {
            for t in &g.trees {
                collect_pattern_idents(t, out);
            }
        }
        _ => {}
    }
}

/// Does a path look like a type (last segment capitalized), making a
/// following brace group a struct literal rather than a block?
fn path_is_type_like(path: &[String]) -> bool {
    path.last()
        .and_then(|s| s.chars().next())
        .is_some_and(char::is_uppercase)
}

/// Parses `name: Type` named-field lists (struct bodies).
fn parse_named_fields(trees: &[Tree]) -> Vec<(String, String)> {
    let mut p = Parser { trees, i: 0 };
    let mut fields = Vec::new();
    while p.i < trees.len() {
        // Skip attributes and visibility.
        if p.peek().is_some_and(|t| t.is_punct("#")) {
            p.i += 1;
            if p.peek().is_some_and(|t| t.group(Delim::Bracket).is_some()) {
                p.i += 1;
            }
            continue;
        }
        if p.eat_ident("pub") {
            if p.peek().and_then(|t| t.group(Delim::Paren)).is_some() {
                p.i += 1;
            }
            continue;
        }
        let Some(name) = p.peek().and_then(Tree::ident).map(str::to_string) else {
            p.i += 1;
            continue;
        };
        p.i += 1;
        if !p.eat_punct(":") {
            continue;
        }
        let ty = p.type_text_until(&[","]);
        p.eat_punct(",");
        fields.push((name, ty));
    }
    fields
}

/// Parses `field: expr` struct-literal bodies into the field expressions.
fn parse_struct_lit_fields(trees: &[Tree]) -> Vec<Expr> {
    let mut p = Parser { trees, i: 0 };
    let mut out = Vec::new();
    while p.i < trees.len() {
        // `..base` spread.
        if p.eat_punct("..") {
            out.push(p.parse_expr(true));
            p.eat_punct(",");
            continue;
        }
        // `name: expr` or shorthand `name`.
        let start = p.i;
        if p.peek().and_then(Tree::ident).is_some() {
            p.i += 1;
            if p.eat_punct(":") {
                out.push(p.parse_expr(true));
                p.eat_punct(",");
                continue;
            }
            p.i = start;
        }
        out.push(p.parse_expr(true));
        if !p.eat_punct(",") && p.i == start {
            p.i += 1;
        }
    }
    out
}

/// Parses a comma-separated expression list (call arguments, tuples,
/// array literals, macro arguments).
fn parse_comma_exprs(trees: &[Tree]) -> Vec<Expr> {
    let mut p = Parser { trees, i: 0 };
    let mut out = Vec::new();
    while p.i < trees.len() {
        let before = p.i;
        let e = p.parse_expr(true);
        out.push(e);
        p.eat_punct(",");
        // `vec![x; n]` separators and anything else unparsed.
        p.eat_punct(";");
        if p.i == before {
            p.i += 1;
        }
    }
    out
}

/// Parses a fn parameter list into `(name, type text)` pairs.
fn parse_params(trees: &[Tree]) -> Vec<(String, String)> {
    let mut p = Parser { trees, i: 0 };
    let mut out = Vec::new();
    while p.i < trees.len() {
        // Skip attributes.
        if p.peek().is_some_and(|t| t.is_punct("#")) {
            p.i += 1;
            if p.peek().is_some_and(|t| t.group(Delim::Bracket).is_some()) {
                p.i += 1;
            }
            continue;
        }
        // Receiver forms: `self`, `&self`, `&mut self`, `&'a self`.
        let start = p.i;
        while p.peek().is_some_and(|t| {
            t.is_punct("&")
                || t.is_ident("mut")
                || t.leaf().is_some_and(|tok| tok.kind == TokenKind::Lifetime)
        }) {
            p.i += 1;
        }
        if p.peek().is_some_and(|t| t.is_ident("self")) {
            p.i += 1;
            out.push(("self".to_string(), "Self".to_string()));
            p.eat_punct(",");
            continue;
        }
        p.i = start;
        // `name: Type`.
        let mut names = Vec::new();
        while let Some(t) = p.peek() {
            if t.is_punct(":") {
                break;
            }
            if t.is_punct(",") {
                break;
            }
            collect_pattern_idents(t, &mut names);
            p.i += 1;
        }
        if p.eat_punct(":") {
            let ty = p.type_text_until(&[","]);
            let name = names.into_iter().next().unwrap_or_else(|| "_".to_string());
            out.push((name, ty));
        }
        if !p.eat_punct(",") && p.i == start {
            p.i += 1;
        }
    }
    out
}

/// Parses a brace group as a statement block.
fn parse_block(g: &Group) -> Block {
    let mut p = Parser {
        trees: &g.trees,
        i: 0,
    };
    let mut stmts = Vec::new();
    let mut pending_test = false;
    while p.i < p.trees.len() {
        let before = p.i;
        if p.eat_punct(";") {
            continue;
        }
        // Attributes inside bodies.
        if p.peek().is_some_and(|t| t.is_punct("#")) {
            p.i += 1;
            p.eat_punct("!");
            if let Some(Tree::Group(ag)) = p.peek() {
                if ag.delim == Delim::Bracket {
                    if attr_is_test(ag) {
                        pending_test = true;
                    }
                    p.i += 1;
                }
            }
            continue;
        }
        // `let` statements.
        if p.peek().is_some_and(|t| t.is_ident("let")) {
            let line = p.peek().map_or(1, Tree::line);
            p.i += 1;
            let mut names = Vec::new();
            // Pattern until `:`, `=`, or `;` at top depth.
            while let Some(t) = p.peek() {
                if t.is_punct(":") || t.is_punct("=") || t.is_punct(";") {
                    break;
                }
                collect_pattern_idents(t, &mut names);
                p.i += 1;
            }
            let ty = if p.eat_punct(":") {
                Some(p.type_text_until(&["=", ";", "else"]))
            } else {
                None
            };
            let init = if p.eat_punct("=") {
                Some(p.parse_expr(true))
            } else {
                None
            };
            let else_block = if p.eat_ident("else") {
                Some(p.expect_block())
            } else {
                None
            };
            p.eat_punct(";");
            stmts.push(Stmt::Let(LetStmt {
                names,
                ty,
                init,
                else_block,
                line,
            }));
            continue;
        }
        // Nested items.
        if let Some(item) = p.parse_item(pending_test) {
            stmts.push(Stmt::Item(Box::new(item)));
            pending_test = false;
            continue;
        }
        // Expression statement.
        let e = p.parse_expr(true);
        let advanced = p.i > before;
        stmts.push(Stmt::Expr(e));
        p.eat_punct(";");
        if !advanced && p.i == before {
            p.i += 1;
        }
    }
    Block {
        stmts,
        close_line: g.close_line,
    }
}

impl Token {
    /// Is this token the given punctuation text?
    fn is_punct_text(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns_of(file: &File) -> Vec<&FnDef> {
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a FnDef>) {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(def) => out.push(def),
                    ItemKind::Impl { items, .. }
                    | ItemKind::Trait { items, .. }
                    | ItemKind::Mod {
                        items: Some(items), ..
                    } => walk(items, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&file.items, &mut out);
        out
    }

    #[test]
    fn parses_free_and_impl_fns_with_params() {
        let file = parse_file(
            "pub fn free(a: u32, b: &str) -> u32 { a }\n\
             struct S { x: Mutex<u8>, y: Vec<u8> }\n\
             impl S {\n    fn method(&self, n: usize) -> usize { n }\n}\n",
        );
        let fns = fns_of(&file);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "free");
        assert_eq!(fns[0].params.len(), 2);
        assert_eq!(fns[0].params[0], ("a".to_string(), "u32".to_string()));
        assert_eq!(fns[1].name, "method");
        assert_eq!(fns[1].params[0].0, "self");
        let ItemKind::Struct { name, fields } = &file.items[1].kind else {
            panic!("expected struct: {:?}", file.items[1].kind);
        };
        assert_eq!(name, "S");
        assert_eq!(fields[0], ("x".to_string(), "Mutex<u8>".to_string()));
    }

    #[test]
    fn parses_use_groups_and_aliases() {
        let file = parse_file("use std::sync::{Arc, Mutex as Mu};\nuse crate::pool::pool_for;\n");
        let ItemKind::Use(targets) = &file.items[0].kind else {
            panic!("expected use");
        };
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].path, vec!["std", "sync", "Arc"]);
        assert_eq!(targets[1].local, "Mu");
        assert_eq!(targets[1].path, vec!["std", "sync", "Mutex"]);
        let ItemKind::Use(targets) = &file.items[1].kind else {
            panic!("expected use");
        };
        assert_eq!(targets[0].path, vec!["crate", "pool", "pool_for"]);
    }

    #[test]
    fn parses_method_chains_calls_and_closures() {
        let file = parse_file(
            "fn f(items: &[u32]) -> Vec<u32> {\n\
                 let doubled = items.iter().map(|x| x * 2).collect::<Vec<_>>();\n\
                 helper(doubled.len());\n\
                 doubled\n\
             }\n",
        );
        let fns = fns_of(&file);
        let body = fns[0].body.as_ref().expect("body");
        let Stmt::Let(let_stmt) = &body.stmts[0] else {
            panic!("expected let");
        };
        assert_eq!(let_stmt.names, vec!["doubled"]);
        let Some(Expr::Chain(chain)) = let_stmt.init.as_ref() else {
            panic!("expected chain init: {:?}", let_stmt.init);
        };
        let methods: Vec<&str> = chain
            .segs
            .iter()
            .filter_map(|s| match s {
                ChainSeg::Method { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(methods, vec!["iter", "map", "collect"]);
        // The map arg is a closure.
        let has_closure = chain.segs.iter().any(|s| {
            matches!(s, ChainSeg::Method { name, args, .. }
                if name == "map" && matches!(args.first(), Some(Expr::Closure(_))))
        });
        assert!(has_closure, "map closure not parsed");
        // helper(…) is a root-path call.
        let Stmt::Expr(Expr::Chain(call)) = &body.stmts[1] else {
            panic!("expected call stmt");
        };
        let ChainRoot::Path(path) = &call.root else {
            panic!("expected path root");
        };
        assert_eq!(path, &vec!["helper".to_string()]);
        assert!(matches!(call.segs.first(), Some(ChainSeg::Call { .. })));
    }

    #[test]
    fn parses_control_flow_and_test_modules() {
        let file = parse_file(
            "fn f(n: usize) {\n\
                 if n > 0 { g(n); } else { h(); }\n\
                 for x in 0..n { g(x); }\n\
                 match n { 0 => g(0), _ if n > 9 => h(), _ => {} }\n\
             }\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { f(1); }\n}\n",
        );
        assert!(!file.items[0].in_test);
        let ItemKind::Mod {
            items: Some(items), ..
        } = &file.items[1].kind
        else {
            panic!("expected inline mod");
        };
        assert!(file.items[1].in_test || items.iter().all(|i| i.in_test));
    }

    #[test]
    fn parses_trait_impls_and_static_items() {
        let file = parse_file(
            "static POOLS: OnceLock<Mutex<HashMap<usize, u8>>> = OnceLock::new();\n\
             impl<S: Sink> EventSink for Arc<Mutex<S>> {\n\
                 fn on_event(&mut self) { self.lock().expect(\"sink poisoned\"); }\n\
             }\n",
        );
        let ItemKind::Static { name, ty, .. } = &file.items[0].kind else {
            panic!("expected static");
        };
        assert_eq!(name, "POOLS");
        assert!(ty.contains("Mutex"), "static type lost: {ty}");
        let ItemKind::Impl {
            self_ty,
            trait_name,
            items,
        } = &file.items[1].kind
        else {
            panic!("expected impl");
        };
        assert!(self_ty.contains("Arc"), "impl type lost: {self_ty}");
        assert_eq!(trait_name.as_deref(), Some("EventSink"));
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn let_else_and_while_let_do_not_derail() {
        let file = parse_file(
            "fn f(v: Option<u32>) {\n\
                 let Some(x) = v else { return; };\n\
                 while let Some(y) = next() { g(y); }\n\
             }\n",
        );
        let fns = fns_of(&file);
        let body = fns[0].body.as_ref().expect("body");
        let Stmt::Let(l) = &body.stmts[0] else {
            panic!("expected let-else");
        };
        assert_eq!(l.names, vec!["x"]);
        assert!(l.else_block.is_some());
        assert!(matches!(&body.stmts[1], Stmt::Expr(Expr::While { .. })));
    }
}
