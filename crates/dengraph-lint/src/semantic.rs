//! The semantic rules L006–L009, built on the parsed workspace
//! ([`crate::resolve`]) and the call graph ([`crate::callgraph`]).
//!
//! * **L006 — lock-order consistency.**  Every `Mutex`/`RwLock`
//!   acquisition site is recorded with a *lock identity* (`Pool::queue.jobs`,
//!   `Latch::mutex`, `dengraph_parallel::pool::POOLS`).  Walking each
//!   body in statement order with guard liveness (a `let`-bound guard
//!   lives to the end of its block or an explicit `drop`; an unbound
//!   guard lives for its statement), the rule builds the global
//!   held-while-acquiring graph — including locks acquired transitively
//!   by callees — and rejects (a) any cycle of length ≥ 2 and (b) any
//!   guard held across a pool submit (`Pool::run` / `par_map` /
//!   `par_chunks` / `par_map_indexed` / `pooled_chunks` / `submit` /
//!   `scope`).  Closure bodies are *not* treated as executing at their
//!   construction site, so building jobs under the queue guard is fine;
//!   each closure body is analysed with an empty guard stack.
//!   Same-lock self-edges are not reported: lock identities are
//!   type-level, and proving two `Latch::mutex` receivers are the same
//!   instance needs alias analysis this tool does not do.
//! * **L007 — panic reachability.**  No call-graph path may lead from a
//!   pipeline entry point (`process_quantum`, `push_message`, the sink
//!   dispatch methods, `restore*`, WAL `replay`) to a panic-class site.
//!   The panic class is exactly L002's: `.unwrap()`, `panic!`-family
//!   macros, and short-message `.expect()`.  A justified `allow(L002)`
//!   does **not** exempt the site from L007 — justified existence is not
//!   justified reachability — it needs its own `allow(L007, …)`.
//!   Long-message `expect`s are asserted invariants, not panic sites.
//! * **L008 — untrusted-length allocation.**  Inside the wire decoders
//!   (`dengraph_json::*` and `dengraph_core::wal`), an integer decoded
//!   from wire bytes (`.usize()` / `.u64()` / `.u32()` on a reader)
//!   taints the variables it flows into; a tainted value reaching
//!   `with_capacity` / `vec![_; n]` / `.reserve` without first passing a
//!   bounds check (a `seq_len(…)` call, or an `if` comparing it against
//!   `remaining()` / `.len()`) is rejected.  Taint is per-function; no
//!   interprocedural flow.
//! * **L009 — float-reduction determinism.**  In code that runs on pool
//!   workers (bodies of closures passed to the parallel entry points,
//!   plus everything the call graph reaches from them), an `f64` fold or
//!   `sum`/`product` whose iteration chain is rooted at a hash container
//!   or uses `.keys()` / `.values()` of a non-BTree map is rejected —
//!   float addition is not associative, so reduction order must be
//!   provably deterministic.  Chains over `Vec`/slices/`BTreeMap` and
//!   unknown-but-unflagged sources stay quiet.

use crate::ast::{Block, Chain, ChainRoot, ChainSeg, Expr, Stmt};
use crate::callgraph::{CallGraph, FnInfo, PARALLEL_ENTRIES};
use crate::resolve::{base_type_name, Module, Workspace};
use crate::{container_decls, is_hash_at, lexer, Decl, Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Function names treated as pipeline entry points for L007.
pub const ENTRY_POINTS: [&str; 13] = [
    "on_event",
    "on_quantum",
    "on_quantum_batch",
    "on_slide",
    "process_quantum",
    "push_message",
    "replay",
    "restore",
    "restore_bytes",
    "restore_detector_from_bytes",
    "restore_from_dir",
    "restore_from_dir_with_report",
    "restore_from_journal",
];

/// Method names whose call while holding a guard is an L006 violation
/// on its own (they hand work to pool threads).
const POOL_SUBMITS: [&str; 7] = [
    "par_chunks",
    "par_map",
    "par_map_indexed",
    "pooled_chunks",
    "run",
    "scope",
    "submit",
];

/// Reader methods whose result is attacker-controlled (L008 taint
/// sources).
const TAINT_SOURCES: [&str; 3] = ["u32", "u64", "usize"];

/// Allocation sinks for L008.
const ALLOC_SINKS: [&str; 2] = ["with_capacity", "reserve"];

/// Scope of one analysis run.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The real workspace: L008 limited to the wire decoders.
    Workspace,
    /// A single fixture file: every rule applies everywhere.
    SingleFile,
}

/// L006–L009 violations, grouped per workspace-relative file.
pub fn analyze(ws: &Workspace, mode: Mode) -> BTreeMap<PathBuf, Vec<Violation>> {
    let graph = CallGraph::build(ws);
    let mut out: BTreeMap<PathBuf, Vec<Violation>> = BTreeMap::new();
    let mut push = |file: &Path, v: Violation| {
        out.entry(file.to_path_buf()).or_default().push(v);
    };
    check_l006(ws, &graph, &mut push);
    check_l007(&graph, &mut push);
    check_l008(&graph, mode, &mut push);
    check_l009(ws, &graph, &mut push);
    for list in out.values_mut() {
        list.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
        list.dedup();
    }
    out
}

/// Parses a single source file (fixture mode) and runs every semantic
/// rule on it.
pub fn analyze_single(source: &str) -> Vec<Violation> {
    let ws = Workspace::load_single(source);
    analyze(&ws, Mode::SingleFile)
        .into_values()
        .flatten()
        .collect()
}

// ---------------------------------------------------------------------------
// L006: lock-order consistency
// ---------------------------------------------------------------------------

/// One acquisition observed while another guard was held.
struct LockEdge {
    held: String,
    acquired: String,
    file: PathBuf,
    line: usize,
    /// Callee fn id when the acquisition is transitive.
    via: Option<String>,
}

fn check_l006(ws: &Workspace, graph: &CallGraph<'_>, push: &mut dyn FnMut(&Path, Violation)) {
    // Pass 1: per-fn direct lock sets (every acquisition anywhere in the
    // body, closures included — a closure's locks are taken on *some*
    // thread once it runs).
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (id, info) in &graph.fns {
        let Some(module) = ws.modules.get(&info.module) else {
            continue;
        };
        let mut locks = BTreeSet::new();
        if let Some(body) = info.body {
            collect_locks(ws, module, info, body, &mut locks);
        }
        direct.insert(id.clone(), locks);
    }
    // Pass 2: transitive closure over call edges (fixpoint; callee ==
    // caller edges are recursion, skipped implicitly by the union).
    let mut trans = direct.clone();
    for _ in 0..24 {
        let mut changed = false;
        let snapshot = trans.clone();
        for (id, info) in &graph.fns {
            let set = trans.get_mut(id).expect("populated above");
            let before = set.len();
            for callee in &info.edges {
                if let Some(callee_locks) = snapshot.get(callee) {
                    set.extend(callee_locks.iter().cloned());
                }
            }
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }
    // Pass 3: guard-liveness walk of every body, collecting edges and
    // direct pool-submit violations.
    let mut edges: Vec<LockEdge> = Vec::new();
    for info in graph.fns.values() {
        if info.in_test {
            continue;
        }
        let Some(module) = ws.modules.get(&info.module) else {
            continue;
        };
        let Some(body) = info.body else { continue };
        let mut walker = GuardWalker {
            ws,
            module,
            info,
            trans: &trans,
            held: Vec::new(),
            edges: &mut edges,
            violations: Vec::new(),
        };
        walker.walk_block(body);
        for v in walker.violations {
            push(&info.file, v);
        }
    }
    // Pass 4: cycle detection over the lock-order graph.  Iteratively
    // strip nodes with no successors or no predecessors; every edge left
    // lies on some cycle.
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in &edges {
        if e.held != e.acquired {
            nodes.insert(&e.held);
            nodes.insert(&e.acquired);
        }
    }
    loop {
        let mut removed = false;
        let live: Vec<&str> = nodes.iter().copied().collect();
        for node in live {
            let has_out = edges.iter().any(|e| {
                e.held == node && e.held != e.acquired && nodes.contains(e.acquired.as_str())
            });
            let has_in = edges.iter().any(|e| {
                e.acquired == node && e.held != e.acquired && nodes.contains(e.held.as_str())
            });
            if !has_out || !has_in {
                nodes.remove(node);
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }
    for e in &edges {
        if e.held != e.acquired
            && nodes.contains(e.held.as_str())
            && nodes.contains(e.acquired.as_str())
        {
            let via = e
                .via
                .as_ref()
                .map(|f| format!(" (via call to `{f}`)"))
                .unwrap_or_default();
            push(
                &e.file,
                Violation {
                    rule: Rule::L006,
                    line: e.line,
                    message: format!(
                        "lock-order cycle: `{}` acquired while `{}` is held{via}; another path \
                         acquires them in the opposite order",
                        e.acquired, e.held
                    ),
                },
            );
        }
    }
}

/// A live lock guard during the L006 walk.
struct Held {
    lock: String,
    /// Bound variable name (`None` for statement temporaries).
    var: Option<String>,
}

struct GuardWalker<'a, 'w> {
    ws: &'w Workspace,
    module: &'w Module,
    info: &'a FnInfo<'w>,
    trans: &'a BTreeMap<String, BTreeSet<String>>,
    held: Vec<Held>,
    edges: &'a mut Vec<LockEdge>,
    violations: Vec<Violation>,
}

impl GuardWalker<'_, '_> {
    fn walk_block(&mut self, block: &Block) {
        let entry_depth = self.held.len();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let(l) => {
                    let temp_base = self.held.len();
                    if let Some(init) = &l.init {
                        self.walk_expr(init);
                        // If the initializer *is* a guard expression, the
                        // binding keeps it alive past the statement.
                        if let Some(lock) = guard_binding(self.ws, self.module, self.info, init) {
                            self.held.truncate(temp_base);
                            self.held.push(Held {
                                lock,
                                var: l.names.first().cloned(),
                            });
                        } else {
                            self.held.truncate(temp_base);
                        }
                    }
                    if let Some(else_block) = &l.else_block {
                        self.walk_block(else_block);
                    }
                }
                Stmt::Expr(e) => {
                    let temp_base = self.held.len();
                    // `drop(guard)` releases a bound guard.
                    if let Some(name) = dropped_var(e) {
                        self.held
                            .retain(|h| h.var.as_deref() != Some(name.as_str()));
                    } else {
                        self.walk_expr(e);
                    }
                    self.held.truncate(temp_base.min(self.held.len()));
                }
                Stmt::Item(_) => {}
            }
        }
        self.held.truncate(entry_depth);
    }

    fn walk_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Chain(chain) => self.walk_chain(chain),
            Expr::Closure(c) => {
                // The closure is not running here: analyse its body with
                // an empty guard stack.
                let saved = std::mem::take(&mut self.held);
                self.walk_expr(&c.body);
                self.held = saved;
            }
            Expr::Block(b) => self.walk_block(b),
            Expr::If {
                cond,
                then_block,
                else_expr,
            } => {
                self.walk_expr(cond);
                self.walk_block(then_block);
                if let Some(e) = else_expr {
                    self.walk_expr(e);
                }
            }
            Expr::For { iter, body, .. } => {
                self.walk_expr(iter);
                self.walk_block(body);
            }
            Expr::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            Expr::Loop { body } => self.walk_block(body),
            Expr::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                for arm in arms {
                    self.walk_expr(arm);
                }
            }
            Expr::Macro(mac) => {
                for arg in &mac.args {
                    self.walk_expr(arg);
                }
            }
            Expr::Seq(parts) => {
                for part in parts {
                    self.walk_expr(part);
                }
            }
            Expr::Unit => {}
        }
    }

    fn walk_chain(&mut self, chain: &Chain) {
        if let ChainRoot::Expr(e) = &chain.root {
            self.walk_expr(e);
        }
        for (i, seg) in chain.segs.iter().enumerate() {
            match seg {
                ChainSeg::Call { args, line } => {
                    if i == 0 {
                        if let ChainRoot::Path(path) = &chain.root {
                            self.observe_call(
                                path.last().map(String::as_str).unwrap_or(""),
                                Some(path),
                                *line,
                            );
                        }
                    }
                    for arg in args {
                        self.walk_expr(arg);
                    }
                }
                ChainSeg::Method {
                    name, args, line, ..
                } => {
                    if let Some(lock) = acquisition(self.ws, self.module, self.info, chain, i) {
                        self.record_acquisition(&lock, *line, None);
                        self.held.push(Held { lock, var: None });
                    } else {
                        self.observe_call(name, None, *line);
                    }
                    for arg in args {
                        self.walk_expr(arg);
                    }
                }
                ChainSeg::Index(args) => {
                    for arg in args {
                        self.walk_expr(arg);
                    }
                }
                ChainSeg::StructLit(fields) => {
                    for f in fields {
                        self.walk_expr(f);
                    }
                }
                ChainSeg::Field(_) => {}
            }
        }
    }

    /// Handles a (path or method) call made while guards may be held:
    /// transitive lock edges and the pool-submit check.
    fn observe_call(&mut self, name: &str, path: Option<&[String]>, line: usize) {
        if self.held.is_empty() {
            return;
        }
        // Pool submit under a guard is a violation regardless of locks.
        // `run` is only a submit when the path names the pool — as a
        // bare method name it is too generic to flag.
        let is_submit = POOL_SUBMITS.contains(&name)
            && match path {
                Some(p) => {
                    name != "run" || {
                        let canon = self.ws.canonicalize(self.module, p);
                        canon.iter().any(|s| s == "Pool" || s == "pool")
                    }
                }
                None => name != "run",
            };
        if is_submit {
            let locks: Vec<&str> = self.held.iter().map(|h| h.lock.as_str()).collect();
            self.violations.push(Violation {
                rule: Rule::L006,
                line,
                message: format!(
                    "guard on `{}` held across pool submit `{name}(…)`; pool jobs that \
                     need the same lock would deadlock",
                    locks.join("`, `")
                ),
            });
        }
        // Transitive acquisitions by the callee.
        let callees: Vec<String> = match path {
            Some(p) => {
                let canon = self.ws.canonicalize(self.module, p).join("::");
                if self.trans.contains_key(&canon) {
                    vec![canon]
                } else {
                    Vec::new()
                }
            }
            None => self
                .trans
                .keys()
                .filter(|id| id.rsplit("::").next() == Some(name) && id.contains("::<"))
                .cloned()
                .collect(),
        };
        for callee in callees {
            if callee == self.info.id {
                continue;
            }
            let Some(locks) = self.trans.get(&callee) else {
                continue;
            };
            for lock in locks.iter().cloned().collect::<Vec<_>>() {
                self.record_acquisition(&lock, line, Some(callee.clone()));
            }
        }
    }

    fn record_acquisition(&mut self, lock: &str, line: usize, via: Option<String>) {
        for held in &self.held {
            if held.lock == *lock {
                continue;
            }
            self.edges.push(LockEdge {
                held: held.lock.clone(),
                acquired: lock.to_string(),
                file: self.info.file.clone(),
                line,
                via: via.clone(),
            });
        }
    }
}

/// Collects every lock identity acquired anywhere in `block`, closure
/// bodies included (a job's locks are taken on *some* thread once it
/// runs, so they count toward the owning fn's lock set).
fn collect_locks(
    ws: &Workspace,
    module: &Module,
    info: &FnInfo<'_>,
    block: &Block,
    out: &mut BTreeSet<String>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    collect_locks_expr(ws, module, info, init, out);
                }
                if let Some(else_block) = &l.else_block {
                    collect_locks(ws, module, info, else_block, out);
                }
            }
            Stmt::Expr(e) => collect_locks_expr(ws, module, info, e, out),
            Stmt::Item(_) => {}
        }
    }
}

fn collect_locks_expr(
    ws: &Workspace,
    module: &Module,
    info: &FnInfo<'_>,
    expr: &Expr,
    out: &mut BTreeSet<String>,
) {
    match expr {
        Expr::Chain(chain) => {
            if let ChainRoot::Expr(e) = &chain.root {
                collect_locks_expr(ws, module, info, e, out);
            }
            for (i, seg) in chain.segs.iter().enumerate() {
                if let Some(lock) = acquisition(ws, module, info, chain, i) {
                    out.insert(lock);
                }
                match seg {
                    ChainSeg::Call { args, .. }
                    | ChainSeg::Method { args, .. }
                    | ChainSeg::Index(args)
                    | ChainSeg::StructLit(args) => {
                        for arg in args {
                            collect_locks_expr(ws, module, info, arg, out);
                        }
                    }
                    ChainSeg::Field(_) => {}
                }
            }
        }
        Expr::Closure(c) => collect_locks_expr(ws, module, info, &c.body, out),
        Expr::Block(b) => collect_locks(ws, module, info, b, out),
        Expr::If {
            cond,
            then_block,
            else_expr,
        } => {
            collect_locks_expr(ws, module, info, cond, out);
            collect_locks(ws, module, info, then_block, out);
            if let Some(e) = else_expr {
                collect_locks_expr(ws, module, info, e, out);
            }
        }
        Expr::For { iter, body, .. } => {
            collect_locks_expr(ws, module, info, iter, out);
            collect_locks(ws, module, info, body, out);
        }
        Expr::While { cond, body } => {
            collect_locks_expr(ws, module, info, cond, out);
            collect_locks(ws, module, info, body, out);
        }
        Expr::Loop { body } => collect_locks(ws, module, info, body, out),
        Expr::Match { scrutinee, arms } => {
            collect_locks_expr(ws, module, info, scrutinee, out);
            for arm in arms {
                collect_locks_expr(ws, module, info, arm, out);
            }
        }
        Expr::Macro(mac) => {
            for arg in &mac.args {
                collect_locks_expr(ws, module, info, arg, out);
            }
        }
        Expr::Seq(parts) => {
            for p in parts {
                collect_locks_expr(ws, module, info, p, out);
            }
        }
        Expr::Unit => {}
    }
}

/// Is `expr` a statement like `drop(name)`?  Returns the dropped name.
fn dropped_var(expr: &Expr) -> Option<String> {
    let Expr::Chain(chain) = expr else {
        return None;
    };
    let ChainRoot::Path(path) = &chain.root else {
        return None;
    };
    if path.len() != 1 || path[0] != "drop" || chain.segs.len() != 1 {
        return None;
    }
    let ChainSeg::Call { args, .. } = &chain.segs[0] else {
        return None;
    };
    let [Expr::Chain(arg)] = args.as_slice() else {
        return None;
    };
    let ChainRoot::Path(p) = &arg.root else {
        return None;
    };
    if p.len() == 1 && arg.segs.is_empty() {
        Some(p[0].clone())
    } else {
        None
    }
}

/// If `init` evaluates to a lock guard (an acquisition followed only by
/// `expect`/`unwrap`/`map_err`), returns the lock id.
fn guard_binding(
    ws: &Workspace,
    module: &Module,
    info: &FnInfo<'_>,
    init: &Expr,
) -> Option<String> {
    let Expr::Chain(chain) = init else {
        return None;
    };
    let mut lock = None;
    let mut lock_at = usize::MAX;
    for i in 0..chain.segs.len() {
        if let Some(id) = acquisition(ws, module, info, chain, i) {
            lock = Some(id);
            lock_at = i;
        }
    }
    let lock = lock?;
    // Everything after the acquisition must preserve the guard.
    for seg in &chain.segs[lock_at + 1..] {
        match seg {
            ChainSeg::Method { name, .. }
                if matches!(name.as_str(), "expect" | "unwrap" | "map_err") => {}
            _ => return None,
        }
    }
    Some(lock)
}

/// Is `chain.segs[k]` a lock acquisition?  Returns the lock identity.
fn acquisition(
    ws: &Workspace,
    module: &Module,
    info: &FnInfo<'_>,
    chain: &Chain,
    k: usize,
) -> Option<String> {
    let ChainSeg::Method { name, args, .. } = &chain.segs[k] else {
        return None;
    };
    if !args.is_empty() {
        return None;
    }
    let rw = match name.as_str() {
        "lock" => false,
        "read" | "write" => true,
        _ => return None,
    };
    let (id, decl_ty) = receiver_identity(ws, module, info, chain, k);
    if rw {
        // `.read()`/`.write()` count only when the receiver is provably
        // an RwLock (they are common io/map method names otherwise).
        if !decl_ty.as_deref().is_some_and(|t| t.contains("RwLock")) {
            return None;
        }
    } else if decl_ty
        .as_deref()
        .is_some_and(|t| !t.contains("Mutex") && !t.contains("RwLock") && !t.contains("Lazy"))
    {
        // A declared non-lock type with a `.lock()` method: not ours.
        return None;
    }
    Some(id)
}

/// Identity and (when resolvable) declared type text of the receiver of
/// `chain.segs[k]`.
fn receiver_identity(
    ws: &Workspace,
    module: &Module,
    info: &FnInfo<'_>,
    chain: &Chain,
    k: usize,
) -> (String, Option<String>) {
    let fields: Vec<&str> = chain.segs[..k]
        .iter()
        .filter_map(|s| match s {
            ChainSeg::Field(f) => Some(f.as_str()),
            _ => None,
        })
        .collect();
    let module_key = module.path.join("::");
    let root_name = match &chain.root {
        ChainRoot::Path(p) if p.len() == 1 => Some(p[0].as_str()),
        _ => None,
    };
    // `self.field…`: identity is `<SelfTy>::fields`, type from the
    // struct's field declaration.
    if root_name == Some("self") {
        if let Some(ty) = &info.self_ty {
            if fields.is_empty() {
                return (format!("{module_key}::<{ty}>"), Some(ty.clone()));
            }
            let decl_ty = field_type(ws, &module_key, ty, fields[0]);
            return (format!("{ty}::{}", fields.join(".")), decl_ty);
        }
    }
    if let Some(name) = root_name {
        // A static item (screaming case, possibly imported).
        if name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
            && name.chars().any(|c| c.is_ascii_uppercase())
        {
            let canon = ws.canonicalize(module, &[name.to_string()]);
            let id = canon.join("::");
            let ty = static_type(ws, &canon);
            let id = if fields.is_empty() {
                id
            } else {
                format!("{id}.{}", fields.join("."))
            };
            return (id, ty);
        }
        // A parameter: identity from its declared type.
        if let Some((_, ty)) = info.params.iter().find(|(n, _)| n == name) {
            let base = base_type_name(ty).to_string();
            if !fields.is_empty() {
                let decl_ty = field_type(ws, &module_key, &base, fields[0]);
                return (format!("{base}::{}", fields.join(".")), decl_ty);
            }
            return (format!("{}::{name}", info.id), Some(ty.clone()));
        }
    }
    // Fallback: function-scoped identity — never aliases across
    // functions, so it can under-report but not false-positive.
    let root_text = root_name.unwrap_or("<expr>");
    let id = if fields.is_empty() {
        format!("{}::{root_text}", info.id)
    } else {
        format!("{}::{root_text}.{}", info.id, fields.join("."))
    };
    (id, None)
}

/// Declared type text of `Ty::field` somewhere in the workspace
/// (searched in `module_key`'s module first, then everywhere).
fn field_type(ws: &Workspace, module_key: &str, ty: &str, field: &str) -> Option<String> {
    let find = |module: &Module| -> Option<String> {
        module.items.iter().find_map(|item| match &item.kind {
            crate::ast::ItemKind::Struct { name, fields } if name == ty => fields
                .iter()
                .find(|(f, _)| f == field)
                .map(|(_, t)| t.clone()),
            _ => None,
        })
    };
    if let Some(module) = ws.modules.get(module_key) {
        if let Some(t) = find(module) {
            return Some(t);
        }
    }
    ws.modules.values().find_map(find)
}

/// Declared type text of a static at canonical path.
fn static_type(ws: &Workspace, canon: &[String]) -> Option<String> {
    if canon.is_empty() {
        return None;
    }
    let name = canon.last().expect("emptiness checked above");
    let module_key = canon[..canon.len() - 1].join("::");
    let module = ws.modules.get(&module_key)?;
    module.items.iter().find_map(|item| match &item.kind {
        crate::ast::ItemKind::Static { name: n, ty, .. } if n == name => Some(ty.clone()),
        _ => None,
    })
}

// ---------------------------------------------------------------------------
// L007: panic reachability
// ---------------------------------------------------------------------------

fn check_l007(graph: &CallGraph<'_>, push: &mut dyn FnMut(&Path, Violation)) {
    let roots: Vec<String> = graph
        .fns
        .values()
        .filter(|f| !f.in_test && ENTRY_POINTS.contains(&f.name.as_str()))
        .map(|f| f.id.clone())
        .collect();
    let parents = graph.reachable(&roots);
    for (id, info) in &graph.fns {
        if info.in_test || info.panics.is_empty() || !parents.contains_key(id) {
            continue;
        }
        let path = CallGraph::path_to(&parents, id);
        let shown: Vec<&str> = path
            .iter()
            .map(|p| p.rsplit("::").next().unwrap_or(p))
            .collect();
        for panic in &info.panics {
            push(
                &info.file,
                Violation {
                    rule: Rule::L007,
                    line: panic.line,
                    message: format!(
                        "`{}` is reachable from pipeline entry `{}` (path: {}); return an \
                         error or justify with allow(L007, …)",
                        panic.what,
                        shown.first().copied().unwrap_or("?"),
                        shown.join(" -> ")
                    ),
                },
            );
        }
    }
}

// ---------------------------------------------------------------------------
// L008: untrusted-length allocation
// ---------------------------------------------------------------------------

fn check_l008(graph: &CallGraph<'_>, mode: Mode, push: &mut dyn FnMut(&Path, Violation)) {
    for info in graph.fns.values() {
        if info.in_test {
            continue;
        }
        let in_scope = match mode {
            Mode::SingleFile => true,
            Mode::Workspace => {
                info.module.starts_with("dengraph_json") || info.module == "dengraph_core::wal"
            }
        };
        if !in_scope {
            continue;
        }
        let Some(body) = info.body else { continue };
        let mut t = TaintWalker {
            tainted: BTreeSet::new(),
            sanitized: BTreeSet::new(),
            violations: Vec::new(),
        };
        t.walk_block(body);
        for v in t.violations {
            push(&info.file, v);
        }
    }
}

struct TaintWalker {
    tainted: BTreeSet<String>,
    sanitized: BTreeSet<String>,
    violations: Vec<Violation>,
}

impl TaintWalker {
    fn walk_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        self.walk_expr(init);
                        let taints = self.expr_taints(init);
                        for name in &l.names {
                            if taints {
                                self.tainted.insert(name.clone());
                                self.sanitized.remove(name);
                            } else {
                                // Rebinding with a clean value clears.
                                self.tainted.remove(name);
                            }
                        }
                    }
                    if let Some(else_block) = &l.else_block {
                        self.walk_block(else_block);
                    }
                }
                Stmt::Expr(e) => {
                    self.scan_sanitizer(e);
                    self.walk_expr(e);
                }
                Stmt::Item(_) => {}
            }
        }
    }

    /// An `if` whose condition compares a tainted variable against the
    /// input's remaining length sanitizes that variable from here on
    /// (flow-insensitively within the function — the decoders return
    /// early on the failing branch).
    fn scan_sanitizer(&mut self, expr: &Expr) {
        if let Expr::If { cond, .. } = expr {
            let mut names = BTreeSet::new();
            idents_of(cond, &mut names);
            let mentions_bound = {
                let mut found = false;
                bound_methods(cond, &mut found);
                found
            };
            if mentions_bound {
                for name in names {
                    if self.tainted.contains(&name) {
                        self.sanitized.insert(name);
                    }
                }
            }
        }
    }

    /// Does evaluating this expression produce a tainted value?
    fn expr_taints(&self, expr: &Expr) -> bool {
        match expr {
            Expr::Chain(chain) => {
                // A `seq_len(…)` result is validated by construction.
                if chain
                    .segs
                    .iter()
                    .any(|s| matches!(s, ChainSeg::Method { name, .. } if name == "seq_len"))
                {
                    return false;
                }
                // Reader decode methods taint.
                let decodes = chain.segs.iter().any(|s| {
                    matches!(s, ChainSeg::Method { name, args, .. }
                        if args.is_empty() && TAINT_SOURCES.contains(&name.as_str()))
                });
                if decodes {
                    return true;
                }
                // Propagation through an already-tainted variable.
                let mut names = BTreeSet::new();
                idents_of(expr, &mut names);
                names
                    .iter()
                    .any(|n| self.tainted.contains(n) && !self.sanitized.contains(n))
            }
            Expr::Seq(parts) => parts.iter().any(|p| self.expr_taints(p)),
            Expr::If {
                then_block: _,
                else_expr: _,
                ..
            } => false,
            _ => false,
        }
    }

    fn walk_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Chain(chain) => self.walk_chain(chain),
            Expr::Closure(c) => self.walk_expr(&c.body),
            Expr::Block(b) => self.walk_block(b),
            Expr::If {
                cond,
                then_block,
                else_expr,
            } => {
                self.scan_sanitizer(expr);
                self.walk_expr(cond);
                self.walk_block(then_block);
                if let Some(e) = else_expr {
                    self.walk_expr(e);
                }
            }
            Expr::For { iter, body, .. } => {
                self.walk_expr(iter);
                self.walk_block(body);
            }
            Expr::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            Expr::Loop { body } => self.walk_block(body),
            Expr::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                for arm in arms {
                    self.walk_expr(arm);
                }
            }
            Expr::Macro(mac) => {
                // `vec![elem; n]` with a tainted n.
                let base = mac.name.rsplit("::").next().unwrap_or(&mac.name);
                if base == "vec" && mac.args.len() == 2 {
                    if let Some(name) = self.tainted_value(&mac.args[1]) {
                        self.violations.push(Violation {
                            rule: Rule::L008,
                            line: mac.line,
                            message: format!(
                                "`vec![…; {name}]` sizes an allocation from an unvalidated \
                                 wire length; bound it against the remaining input first"
                            ),
                        });
                    }
                }
                for arg in &mac.args {
                    self.walk_expr(arg);
                }
            }
            Expr::Seq(parts) => {
                for p in parts {
                    self.walk_expr(p);
                }
            }
            Expr::Unit => {}
        }
    }

    fn walk_chain(&mut self, chain: &Chain) {
        if let ChainRoot::Expr(e) = &chain.root {
            self.walk_expr(e);
        }
        for (i, seg) in chain.segs.iter().enumerate() {
            match seg {
                ChainSeg::Call { args, line } => {
                    if i == 0 {
                        if let ChainRoot::Path(path) = &chain.root {
                            if path
                                .last()
                                .is_some_and(|l| ALLOC_SINKS.contains(&l.as_str()))
                            {
                                self.check_sink(
                                    path.last().expect("matched Some above"),
                                    args,
                                    *line,
                                );
                            }
                        }
                    }
                    for arg in args {
                        self.walk_expr(arg);
                    }
                }
                ChainSeg::Method {
                    name, args, line, ..
                } => {
                    if ALLOC_SINKS.contains(&name.as_str()) {
                        self.check_sink(name, args, *line);
                    }
                    for arg in args {
                        self.walk_expr(arg);
                    }
                }
                ChainSeg::Index(args) | ChainSeg::StructLit(args) => {
                    for arg in args {
                        self.walk_expr(arg);
                    }
                }
                ChainSeg::Field(_) => {}
            }
        }
    }

    fn check_sink(&mut self, sink: &str, args: &[Expr], line: usize) {
        let Some(arg) = args.first() else { return };
        if let Some(name) = self.tainted_value(arg) {
            self.violations.push(Violation {
                rule: Rule::L008,
                line,
                message: format!(
                    "`{sink}({name})` sizes an allocation from an unvalidated wire length; \
                     bound it against the remaining input (`seq_len`, `remaining()`) first"
                ),
            });
        }
    }

    /// If the expression's value is tainted, a representative variable
    /// name for the message.
    fn tainted_value(&self, expr: &Expr) -> Option<String> {
        let mut names = BTreeSet::new();
        idents_of(expr, &mut names);
        let live: Vec<&String> = names
            .iter()
            .filter(|n| self.tainted.contains(*n) && !self.sanitized.contains(*n))
            .collect();
        if let Some(first) = live.first() {
            return Some((*first).clone());
        }
        // A direct decode feeding the sink: `with_capacity(r.usize()?)`.
        if self.expr_taints(expr) {
            return Some("<decoded length>".to_string());
        }
        None
    }
}

/// Collects every path-root identifier mentioned in an expression.
fn idents_of(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::Chain(chain) => {
            if let ChainRoot::Path(p) = &chain.root {
                if let Some(first) = p.first() {
                    out.insert(first.clone());
                }
            }
            if let ChainRoot::Expr(e) = &chain.root {
                idents_of(e, out);
            }
            for seg in &chain.segs {
                match seg {
                    ChainSeg::Call { args, .. }
                    | ChainSeg::Method { args, .. }
                    | ChainSeg::Index(args)
                    | ChainSeg::StructLit(args) => {
                        for arg in args {
                            idents_of(arg, out);
                        }
                    }
                    ChainSeg::Field(_) => {}
                }
            }
        }
        Expr::Closure(c) => idents_of(&c.body, out),
        Expr::Block(b) => {
            for stmt in &b.stmts {
                if let Stmt::Expr(e) = stmt {
                    idents_of(e, out);
                }
            }
        }
        Expr::If {
            cond,
            then_block: _,
            else_expr,
        } => {
            idents_of(cond, out);
            if let Some(e) = else_expr {
                idents_of(e, out);
            }
        }
        Expr::Match { scrutinee, .. } => idents_of(scrutinee, out),
        Expr::Macro(mac) => {
            for arg in &mac.args {
                idents_of(arg, out);
            }
        }
        Expr::Seq(parts) => {
            for p in parts {
                idents_of(p, out);
            }
        }
        _ => {}
    }
}

/// Does the expression call a length-bound method (`remaining()` /
/// `.len()` / `seq_len`) anywhere?
fn bound_methods(expr: &Expr, found: &mut bool) {
    match expr {
        Expr::Chain(chain) => {
            if let ChainRoot::Expr(e) = &chain.root {
                bound_methods(e, found);
            }
            for seg in &chain.segs {
                match seg {
                    ChainSeg::Method { name, args, .. } => {
                        if matches!(name.as_str(), "remaining" | "len" | "seq_len") {
                            *found = true;
                        }
                        for arg in args {
                            bound_methods(arg, found);
                        }
                    }
                    ChainSeg::Call { args, .. }
                    | ChainSeg::Index(args)
                    | ChainSeg::StructLit(args) => {
                        for arg in args {
                            bound_methods(arg, found);
                        }
                    }
                    ChainSeg::Field(_) => {}
                }
            }
        }
        Expr::Seq(parts) => {
            for p in parts {
                bound_methods(p, found);
            }
        }
        Expr::Macro(mac) => {
            for arg in &mac.args {
                bound_methods(arg, found);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// L009: float-reduction determinism
// ---------------------------------------------------------------------------

fn check_l009(ws: &Workspace, graph: &CallGraph<'_>, push: &mut dyn FnMut(&Path, Violation)) {
    let region = graph.parallel_region();
    // Per-file container declarations (shared by inline modules).
    let mut decls_by_file: BTreeMap<PathBuf, Vec<Decl>> = BTreeMap::new();
    for module in ws.modules.values() {
        decls_by_file
            .entry(module.file.clone())
            .or_insert_with(|| container_decls(&lexer::split(&module.source)));
    }
    for info in graph.fns.values() {
        if info.in_test {
            continue;
        }
        let Some(body) = info.body else { continue };
        let decls = decls_by_file.get(&info.file).map_or(&[][..], Vec::as_slice);
        let in_region = region.contains(&info.id);
        let mut w = FloatWalker {
            decls,
            in_region,
            violations: Vec::new(),
        };
        w.walk_block(body, in_region);
        for v in w.violations {
            push(&info.file, v);
        }
    }
}

struct FloatWalker<'a> {
    decls: &'a [Decl],
    in_region: bool,
    violations: Vec<Violation>,
}

impl FloatWalker<'_> {
    fn walk_block(&mut self, block: &Block, parallel: bool) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        self.walk_expr(init, parallel);
                    }
                    if let Some(else_block) = &l.else_block {
                        self.walk_block(else_block, parallel);
                    }
                }
                Stmt::Expr(e) => self.walk_expr(e, parallel),
                Stmt::Item(_) => {}
            }
        }
    }

    fn walk_expr(&mut self, expr: &Expr, parallel: bool) {
        match expr {
            Expr::Chain(chain) => self.walk_chain(chain, parallel),
            Expr::Closure(c) => self.walk_expr(&c.body, parallel),
            Expr::Block(b) => self.walk_block(b, parallel),
            Expr::If {
                cond,
                then_block,
                else_expr,
            } => {
                self.walk_expr(cond, parallel);
                self.walk_block(then_block, parallel);
                if let Some(e) = else_expr {
                    self.walk_expr(e, parallel);
                }
            }
            Expr::For { iter, body, .. } => {
                self.walk_expr(iter, parallel);
                self.walk_block(body, parallel);
            }
            Expr::While { cond, body } => {
                self.walk_expr(cond, parallel);
                self.walk_block(body, parallel);
            }
            Expr::Loop { body } => self.walk_block(body, parallel),
            Expr::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee, parallel);
                for arm in arms {
                    self.walk_expr(arm, parallel);
                }
            }
            Expr::Macro(mac) => {
                for arg in &mac.args {
                    self.walk_expr(arg, parallel);
                }
            }
            Expr::Seq(parts) => {
                for p in parts {
                    self.walk_expr(p, parallel);
                }
            }
            Expr::Unit => {}
        }
    }

    fn walk_chain(&mut self, chain: &Chain, parallel: bool) {
        if let ChainRoot::Expr(e) = &chain.root {
            self.walk_expr(e, parallel);
        }
        for (i, seg) in chain.segs.iter().enumerate() {
            let (name, args, line, turbofish) = match seg {
                ChainSeg::Method {
                    name,
                    args,
                    line,
                    turbofish,
                } => (name.as_str(), args.as_slice(), *line, turbofish.as_deref()),
                ChainSeg::Call { args, .. } | ChainSeg::Index(args) | ChainSeg::StructLit(args) => {
                    let entry = matches!(seg, ChainSeg::Call { .. })
                        && i == 0
                        && matches!(&chain.root, ChainRoot::Path(p)
                            if p.last().is_some_and(|l| PARALLEL_ENTRIES.contains(&l.as_str())));
                    for arg in args {
                        self.walk_expr(arg, parallel || entry);
                    }
                    continue;
                }
                ChainSeg::Field(_) => continue,
            };
            let entry = PARALLEL_ENTRIES.contains(&name);
            let float_fold = name == "fold" && args.first().is_some_and(is_float_literal);
            let float_sum = matches!(name, "sum" | "product")
                && turbofish.is_some_and(|t| t.contains("f64") || t.contains("f32"));
            if (float_fold || float_sum) && (parallel || self.in_region) {
                if let Some(source) = unordered_source(self.decls, chain, i, line) {
                    self.violations.push(Violation {
                        rule: Rule::L009,
                        line,
                        message: format!(
                            "f64 reduction (`.{name}(…)`) over {source} in parallel-phase \
                             code; reduction order is nondeterministic — iterate a sorted \
                             or sequential source"
                        ),
                    });
                }
            }
            for arg in args {
                self.walk_expr(arg, parallel || entry);
            }
        }
    }
}

/// Is the argument a float literal (`0.0`, `1f64`, `0.0f32`)?
fn is_float_literal(expr: &Expr) -> bool {
    let Expr::Chain(chain) = expr else {
        return false;
    };
    let ChainRoot::Lit(text) = &chain.root else {
        return false;
    };
    if !chain.segs.is_empty() {
        return false;
    }
    text.contains('.') || text.contains("f64") || text.contains("f32")
}

/// If the chain up to segment `k` iterates an unordered source, a
/// description of it.
fn unordered_source(decls: &[Decl], chain: &Chain, k: usize, line: usize) -> Option<String> {
    let root_name = match &chain.root {
        ChainRoot::Path(p) => p.last().map(String::as_str),
        _ => None,
    };
    // Nearest-declaration typing of the chain root (0-based decl lines).
    let root_field = chain.segs[..k].iter().find_map(|s| match s {
        ChainSeg::Field(f) => Some(f.as_str()),
        _ => None,
    });
    let subject = root_field.or(root_name);
    let root_is_hash = subject.is_some_and(|n| is_hash_at(decls, n, line.saturating_sub(1)));
    let root_is_known_seq = subject.is_some_and(|n| {
        decls.iter().any(|d| d.name == n && !d.is_hash)
            && !is_hash_at(decls, n, line.saturating_sub(1))
    });
    let has_keys_values = chain.segs[..k].iter().any(|s| {
        matches!(s, ChainSeg::Method { name, .. }
            if matches!(name.as_str(), "keys" | "values" | "values_mut" | "drain"))
    });
    if root_is_hash {
        return Some(format!(
            "hash container `{}`",
            subject.unwrap_or("<unknown>")
        ));
    }
    if has_keys_values && !root_is_known_seq {
        return Some("a map's `.keys()`/`.values()` of unknown order".to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real_ws() -> Workspace {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        Workspace::load(&root)
    }

    #[test]
    fn real_workspace_raw_findings_are_exactly_the_justified_panics() {
        let ws = real_ws();
        let all = analyze(&ws, Mode::Workspace);
        let found: Vec<(String, Rule)> = all
            .iter()
            .flat_map(|(file, vs)| {
                vs.iter()
                    .map(|v| (file.display().to_string(), v.rule))
                    .collect::<Vec<_>>()
            })
            .collect();
        // `analyze` reports pre-allow findings: the only two are the
        // deliberate panic re-raises, whose `allow(L007, …)` comments
        // `lint_workspace` then applies.
        assert_eq!(
            found,
            vec![
                (
                    "crates/dengraph-core/src/detector.rs".to_string(),
                    Rule::L007
                ),
                (
                    "crates/dengraph-parallel/src/pool.rs".to_string(),
                    Rule::L007
                ),
            ]
        );
    }
}
