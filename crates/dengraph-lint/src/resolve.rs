//! Workspace module-graph resolution.
//!
//! Loads every library crate's `src/` tree, follows `mod x;`
//! declarations to their files, parses each file with [`crate::ast`],
//! and builds per-module `use` maps so that a path written in one file
//! (`Pool::run`, `pool::pool_for`, `crate::wal::Journal`) can be
//! canonicalised to a workspace-global path
//! (`dengraph_parallel::pool::Pool::run`).  Re-exports (`pub use`) are
//! followed when canonicalising, so `dengraph_parallel::Pool` and
//! `dengraph_parallel::pool::Pool` name the same item.
//!
//! Everything here is deterministic: modules are stored in sorted
//! `BTreeMap`s and files are visited in path order, so downstream rule
//! output is stable run-to-run.

use crate::ast::{self, Item, ItemKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One parsed module (one source file, or an inline `mod` block hoisted
/// to its own entry).
pub struct Module {
    /// Global module path, e.g. `["dengraph_core", "cluster", "registry"]`.
    pub path: Vec<String>,
    /// Workspace-relative source file.
    pub file: PathBuf,
    /// Items of this module (inline child `mod` blocks still appear
    /// nested here as well as in their own [`Module`] entry).
    pub items: Vec<Item>,
    /// `use` map: local name → full target path (first segment is a
    /// crate id, `std`, or another extern crate).
    pub uses: BTreeMap<String, Vec<String>>,
    /// Glob imports: target module paths of `use foo::*;`.
    pub globs: Vec<Vec<String>>,
    /// Full source text of the file this module lives in (shared by
    /// inline child modules; used for line-oriented lexical scans).
    pub source: String,
}

/// The fully loaded workspace: all library-crate modules, keyed by
/// their `::`-joined module path.
#[derive(Default)]
pub struct Workspace {
    /// Module path (joined with `::`) → module.
    pub modules: BTreeMap<String, Module>,
}

/// Crate ids (dir name with `-` → `_`) of the workspace's own crates,
/// used to recognise cross-crate paths.
pub const WORKSPACE_CRATES: [&str; 11] = [
    "dengraph_bench",
    "dengraph_core",
    "dengraph_examples",
    "dengraph_graph",
    "dengraph_json",
    "dengraph_lint",
    "dengraph_minhash",
    "dengraph_parallel",
    "dengraph_stream",
    "dengraph_tests",
    "dengraph_text",
];

/// A child module discovered while registering a parent: its module
/// path, its backing file (for `mod name;`), and its hoisted items
/// (for inline `mod name { … }`).
type ChildModule = (Vec<String>, Option<PathBuf>, Option<Vec<Item>>);

impl Workspace {
    /// Loads every crate under `root/crates/` that has a `src/lib.rs`.
    /// Unreadable or missing module files are skipped, never an error.
    pub fn load(root: &Path) -> Workspace {
        let mut ws = Workspace::default();
        let crates_dir = root.join("crates");
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| p.is_dir())
                    .collect()
            })
            .unwrap_or_default();
        crate_dirs.sort();
        for dir in crate_dirs {
            let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let crate_id = name.replace('-', "_");
            let lib = dir.join("src").join("lib.rs");
            if lib.is_file() {
                let rel = PathBuf::from("crates")
                    .join(name)
                    .join("src")
                    .join("lib.rs");
                ws.load_module(root, &rel, vec![crate_id]);
            }
        }
        ws
    }

    /// Parses one module file, registers it, and recurses into its file
    /// submodules and inline `mod` blocks.
    fn load_module(&mut self, root: &Path, rel: &Path, mod_path: Vec<String>) {
        let Ok(source) = std::fs::read_to_string(root.join(rel)) else {
            return;
        };
        let file = ast::parse_file(&source);
        self.register(root, rel, &source, mod_path, file.items);
    }

    /// Builds a one-module workspace from a single source string; the
    /// module is registered as crate `fixture`.  Used to run the
    /// semantic rules on lint fixtures without a crate layout.
    pub fn load_single(source: &str) -> Workspace {
        let mut ws = Workspace::default();
        let file = ast::parse_file(source);
        ws.register(
            Path::new(""),
            Path::new("fixture.rs"),
            source,
            vec!["fixture".to_string()],
            file.items,
        );
        ws
    }

    fn register(
        &mut self,
        root: &Path,
        rel: &Path,
        source: &str,
        mod_path: Vec<String>,
        items: Vec<Item>,
    ) {
        let mut uses = BTreeMap::new();
        let mut globs = Vec::new();
        for item in &items {
            collect_uses(item, &mod_path, &mut uses, &mut globs);
        }
        // Child modules: files live next to lib.rs for the crate root,
        // or under `<parent>/` for nested modules.
        let dir = module_dir(rel, &mod_path);
        let mut children: Vec<ChildModule> = Vec::new();
        for item in &items {
            if let ItemKind::Mod {
                name,
                items: inline,
            } = &item.kind
            {
                let mut child_path = mod_path.clone();
                child_path.push(name.clone());
                match inline {
                    Some(inner) => {
                        // Inline module: hoist a clone of its items into
                        // its own entry so paths resolve through it.
                        children.push((child_path, None, Some(inner.clone())));
                    }
                    None => {
                        let as_file = dir.join(format!("{name}.rs"));
                        let as_dir = dir.join(name).join("mod.rs");
                        let file = if root.join(&as_file).is_file() {
                            Some(as_file)
                        } else if root.join(&as_dir).is_file() {
                            Some(as_dir)
                        } else {
                            None
                        };
                        if let Some(file) = file {
                            children.push((child_path, Some(file), None));
                        }
                    }
                }
            }
        }
        self.modules.insert(
            mod_path.join("::"),
            Module {
                path: mod_path,
                file: rel.to_path_buf(),
                items,
                uses,
                globs,
                source: source.to_string(),
            },
        );
        for (child_path, file, inline) in children {
            match (file, inline) {
                (Some(file), _) => self.load_module(root, &file, child_path),
                (None, Some(items)) => self.register(root, rel, source, child_path, items),
                (None, None) => {}
            }
        }
    }

    /// Canonicalises `path` as written inside `module`: resolves
    /// `crate`/`self`/`super`, substitutes `use` aliases, prefixes
    /// module-local names, and follows `pub use` re-exports.  Paths that
    /// cannot be anchored (locals, std items, macros) are returned with
    /// whatever prefix could be resolved.
    pub fn canonicalize(&self, module: &Module, path: &[String]) -> Vec<String> {
        let mut out = self.anchor(module, path);
        // Follow re-exports: find the longest module prefix of `out`,
        // and if the next segment is a `use` alias in that module,
        // substitute and repeat.  Bounded to avoid alias cycles.
        for _ in 0..8 {
            let Some((prefix_len, target)) = self.reexport_step(&out) else {
                break;
            };
            let mut next = target;
            next.extend(out[prefix_len..].iter().cloned());
            if next == out {
                break;
            }
            out = next;
        }
        out
    }

    /// One re-export substitution step over a canonical path.
    fn reexport_step(&self, path: &[String]) -> Option<(usize, Vec<String>)> {
        // Longest module prefix strictly shorter than the path.
        for prefix_len in (1..path.len()).rev() {
            let key = path[..prefix_len].join("::");
            let Some(module) = self.modules.get(&key) else {
                continue;
            };
            let seg = &path[prefix_len];
            // A child module with this name wins over a use alias.
            let mut child_key = key.clone();
            child_key.push_str("::");
            child_key.push_str(seg);
            if self.modules.contains_key(&child_key) {
                return None;
            }
            if let Some(target) = module.uses.get(seg) {
                return Some((prefix_len + 1, target.clone()));
            }
            return None;
        }
        None
    }

    /// Anchors a written path to a global one without following
    /// re-exports.
    fn anchor(&self, module: &Module, path: &[String]) -> Vec<String> {
        let Some(first) = path.first() else {
            return Vec::new();
        };
        let crate_id = &module.path[0];
        match first.as_str() {
            "crate" => {
                let mut out = vec![crate_id.clone()];
                out.extend(path[1..].iter().cloned());
                out
            }
            "self" => {
                let mut out = module.path.clone();
                out.extend(path[1..].iter().cloned());
                out
            }
            "super" => {
                let mut base = module.path.clone();
                let mut rest = path;
                while rest.first().is_some_and(|s| s == "super") {
                    base.pop();
                    rest = &rest[1..];
                }
                base.extend(rest.iter().cloned());
                base
            }
            _ => {
                if let Some(target) = module.uses.get(first) {
                    let mut out = target.clone();
                    out.extend(path[1..].iter().cloned());
                    return out;
                }
                if WORKSPACE_CRATES.contains(&first.as_str()) {
                    return path.to_vec();
                }
                // A sibling module or module-local item: resolve only if
                // the first segment names a child module, otherwise
                // treat the name as module-local (item or free fn).
                let mut child_key = module.path.join("::");
                child_key.push_str("::");
                child_key.push_str(first);
                if self.modules.contains_key(&child_key)
                    || path.len() == 1
                    || is_local_item(module, first)
                {
                    let mut out = module.path.clone();
                    out.extend(path.iter().cloned());
                    return out;
                }
                // Unknown root (std, extern, macro): leave as written.
                path.to_vec()
            }
        }
    }
}

/// Does `module` define an item named `name` at its top level?
fn is_local_item(module: &Module, name: &str) -> bool {
    module.items.iter().any(|item| match &item.kind {
        ItemKind::Fn(def) => def.name == name,
        ItemKind::Struct { name: n, .. }
        | ItemKind::Trait { name: n, .. }
        | ItemKind::Static { name: n, .. }
        | ItemKind::Mod { name: n, .. } => n == name,
        ItemKind::Impl { self_ty, .. } => base_type_name(self_ty) == name,
        _ => false,
    })
}

/// The base identifier of a type text: `Arc<Mutex<S>>` → `Arc`,
/// `&mut[u8]` → `u8` is *not* wanted, so we take the leading ident run
/// after stripping reference/pointer sigils.
pub fn base_type_name(ty: &str) -> &str {
    let t = ty.trim_start_matches(['&', '*', ' ']);
    let t = t.strip_prefix("mut").unwrap_or(t);
    let t = t.trim_start_matches(' ');
    // Skip path prefixes: take the last `::` segment before any `<`.
    let head_end = t.find(['<', '(', '[', ' ']).unwrap_or(t.len());
    let head = &t[..head_end];
    head.rsplit("::").next().unwrap_or(head)
}

fn collect_uses(
    item: &Item,
    mod_path: &[String],
    uses: &mut BTreeMap<String, Vec<String>>,
    globs: &mut Vec<Vec<String>>,
) {
    if let ItemKind::Use(targets) = &item.kind {
        for target in targets {
            let mut path = target.path.clone();
            // Normalise the anchor segment.
            match path.first().map(String::as_str) {
                Some("crate") => path[0] = mod_path[0].clone(),
                Some("self") => {
                    let mut full = mod_path.to_vec();
                    full.extend(path[1..].iter().cloned());
                    path = full;
                }
                Some("super") => {
                    let mut base = mod_path.to_vec();
                    let mut rest = path.as_slice();
                    while rest.first().is_some_and(|s| s == "super") {
                        base.pop();
                        rest = &rest[1..];
                    }
                    base.extend(rest.iter().cloned());
                    path = base;
                }
                // Bare paths whose root is neither an extern crate nor a
                // workspace crate are crate-root-relative (`pub use
                // pool::Pool;` at the crate root).
                Some(first)
                    if !matches!(first, "std" | "core" | "alloc")
                        && !WORKSPACE_CRATES.contains(&first) =>
                {
                    let mut full = vec![mod_path[0].clone()];
                    full.extend(path.iter().cloned());
                    path = full;
                }
                _ => {}
            }
            if target.local == "*" {
                path.pop();
                globs.push(path);
            } else {
                uses.insert(target.local.clone(), path);
            }
        }
    }
}

/// The directory child-module files live in for a module at `rel`.
fn module_dir(rel: &Path, mod_path: &[String]) -> PathBuf {
    let parent = rel.parent().map(Path::to_path_buf).unwrap_or_default();
    let file_name = rel.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if file_name == "lib.rs" || file_name == "mod.rs" || file_name == "main.rs" {
        parent
    } else {
        // `foo.rs` declaring `mod bar;` → `foo/bar.rs`.
        let _ = mod_path;
        parent.join(file_name.trim_end_matches(".rs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_type_name_strips_wrappers() {
        assert_eq!(base_type_name("Arc<Mutex<S>>"), "Arc");
        assert_eq!(base_type_name("&mut Session"), "Session");
        assert_eq!(base_type_name("pool::Pool"), "Pool");
        assert_eq!(base_type_name("Mutex<HashMap<usize, u8>>"), "Mutex");
    }

    #[test]
    fn loads_the_real_workspace_and_resolves_paths() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root is two levels up");
        let ws = Workspace::load(root);
        // Every crate root is present.
        assert!(ws.modules.contains_key("dengraph_core"));
        assert!(ws.modules.contains_key("dengraph_core::session"));
        assert!(ws.modules.contains_key("dengraph_core::cluster::registry"));
        assert!(ws.modules.contains_key("dengraph_parallel::pool"));

        // `use` resolution: session.rs imports from the wal module.
        let session = &ws.modules["dengraph_core::session"];
        let canon = ws.canonicalize(session, &["Journal".to_string()]);
        // Whatever the local spelling, the canonical path must land in
        // dengraph_core (either wal::Journal directly or via re-export).
        if session.uses.contains_key("Journal") {
            assert_eq!(canon.first().map(String::as_str), Some("dengraph_core"));
        }

        // Re-export following: dengraph_parallel::Pool → pool::Pool.
        let parallel_root = &ws.modules["dengraph_parallel"];
        if parallel_root.uses.contains_key("Pool") {
            let canon = ws.canonicalize(parallel_root, &["Pool".to_string(), "run".to_string()]);
            assert_eq!(
                canon.join("::"),
                "dengraph_parallel::pool::Pool::run",
                "re-export not followed"
            );
        }
    }

    #[test]
    fn canonicalize_handles_crate_self_super() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let ws = Workspace::load(root);
        let registry = &ws.modules["dengraph_core::cluster::registry"];
        let canon = ws.canonicalize(
            registry,
            &[
                "crate".to_string(),
                "event".to_string(),
                "Event".to_string(),
            ],
        );
        assert_eq!(canon.join("::"), "dengraph_core::event::Event");
        let canon = ws.canonicalize(registry, &["super".to_string(), "maintainer".to_string()]);
        assert_eq!(canon.join("::"), "dengraph_core::cluster::maintainer");
    }
}
