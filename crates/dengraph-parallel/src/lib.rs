//! Deterministic sharded fork-join execution for the dengraph pipeline.
//!
//! The per-quantum work of the event detector — window aggregation,
//! per-keyword min-hash sketching, candidate-edge scoring, ranking support
//! counts — decomposes into independent shards (per keyword, per candidate
//! pair, per message chunk).  This crate provides the small executor that
//! fans those shards out across OS threads and collects the results **in
//! input order**, so a parallel run produces bit-identical output to a
//! serial one.
//!
//! The build environment has no crates.io access, so instead of `rayon`
//! this is built on a persistent [`pool`] of parked worker threads: each
//! [`par_map`] call splits the input slice into one contiguous chunk per
//! thread, dispatches the chunks through the pool's shared queue, and
//! concatenates the per-chunk outputs in input order.  A fork-join round
//! trip costs single-digit microseconds — cheap enough to run several
//! phases inside every sub-millisecond quantum (spawning OS threads per
//! phase, by contrast, costs more than the quantum itself).

pub mod pool;

use std::num::NonZeroUsize;
use std::sync::Mutex;

pub use pool::{pool_for, Pool};

/// How much parallelism a pipeline stage may use.
///
/// `Serial` is the reference implementation; `Threads(n)` fans each stage
/// out over `n` OS threads.  Both paths produce identical results — the
/// knob only trades wall-clock time for cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run every stage inline on the calling thread.
    #[default]
    Serial,
    /// Fan work out over this many threads (values below 2 behave like
    /// [`Parallelism::Serial`]).
    Threads(usize),
}

impl Parallelism {
    /// One thread per available core, as reported by the OS.
    pub fn auto() -> Self {
        Parallelism::Threads(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The number of worker threads this setting amounts to (≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
        }
    }

    /// Returns `true` when work will actually be fanned out.
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Threads(n) => write!(f, "threads({n})"),
        }
    }
}

/// Below this many items per thread the spawn overhead outweighs the win
/// and [`par_map`] falls back to the serial path.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// Fans contiguous chunks of `items` out through the persistent pool and
/// returns the per-chunk results in chunk order.
fn pooled_chunks<T, C, F>(threads: usize, items: &[T], map_chunk: F) -> Vec<C>
where
    T: Sync,
    C: Send,
    F: Fn(usize, &[T]) -> C + Sync,
{
    // The caller participates in the batch, so `threads` ways of
    // parallelism need threads - 1 pool workers.
    let pool = pool_for(threads - 1);
    let chunk_size = items.len().div_ceil(threads);
    let chunks: Vec<(usize, &[T])> = items
        .chunks(chunk_size)
        .enumerate()
        .map(|(c, chunk)| (c * chunk_size, chunk))
        .collect();
    let slots: Vec<Mutex<Option<C>>> = chunks.iter().map(|_| Mutex::new(None)).collect();
    let map_chunk = &map_chunk;
    pool.run(chunks.iter().zip(&slots).map(|(&(base, chunk), slot)| {
        move || {
            let out = map_chunk(base, chunk);
            *slot.lock().expect("par_map slot poisoned") = Some(out);
        }
    }));
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("par_map slot poisoned")
                .expect("par_map chunk did not run")
        })
        .collect()
}

/// Splits `items` into one contiguous chunk per thread, maps each chunk as
/// a whole, and returns the per-chunk results in chunk order.
///
/// This is the fold-shaped counterpart to [`par_map`]: use it when the
/// natural unit of work is a *slice* (e.g. aggregating many messages into
/// one map per chunk, merged serially afterwards).  Falls back to a single
/// serial chunk when the input is smaller than `min_items_per_thread` per
/// thread.
pub fn par_chunks<T, C, F>(
    parallelism: Parallelism,
    items: &[T],
    min_items_per_thread: usize,
    map_chunk: F,
) -> Vec<C>
where
    T: Sync,
    C: Send,
    F: Fn(&[T]) -> C + Sync,
{
    let threads = parallelism
        .threads()
        .min(items.len() / min_items_per_thread.max(1));
    if threads <= 1 {
        return vec![map_chunk(items)];
    }
    pooled_chunks(threads, items, |_, chunk| map_chunk(chunk))
}

/// Maps `f` over `items`, fanning out across threads per `parallelism`.
///
/// Results are returned in input order regardless of thread scheduling, so
/// the output is identical to `items.iter().map(f).collect()`.
pub fn par_map<T, R, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = parallelism
        .threads()
        .min(items.len() / MIN_ITEMS_PER_THREAD.max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    pooled_chunks(threads, items, |_, chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Like [`par_map`] but hands `f` the item's index as well; results stay in
/// input order.
pub fn par_map_indexed<T, R, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = parallelism
        .threads()
        .min(items.len() / MIN_ITEMS_PER_THREAD.max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    pooled_chunks(threads, items, |base, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(i, t)| f(base + i, t))
            .collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_threads_floor_at_one() {
        assert_eq!(Parallelism::Serial.threads(), 1);
        assert_eq!(Parallelism::Threads(0).threads(), 1);
        assert_eq!(Parallelism::Threads(4).threads(), 4);
        assert!(!Parallelism::Threads(1).is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
        assert!(Parallelism::auto().threads() >= 1);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(7),
        ] {
            assert_eq!(
                par_map(par, &items, |x| x * 3 + 1),
                serial,
                "mismatch at {par}"
            );
        }
    }

    #[test]
    fn par_map_indexed_preserves_indices() {
        let items: Vec<u32> = (0..5_000).collect();
        let out = par_map_indexed(Parallelism::Threads(4), &items, |i, &x| (i, x));
        for (i, &(idx, x)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(x as usize, i);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_take_the_serial_path() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::Threads(8), &empty, |x| *x).is_empty());
        let tiny = [1u32, 2, 3];
        assert_eq!(
            par_map(Parallelism::Threads(8), &tiny, |x| x + 1),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn par_chunks_covers_every_item_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(3),
            Parallelism::Threads(8),
        ] {
            let sums = par_chunks(par, &items, 16, |chunk| chunk.iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), (0..1000).sum::<u64>(), "at {par}");
            assert!(!sums.is_empty());
        }
        // Small inputs collapse to a single serial chunk.
        let tiny = [1u64, 2, 3];
        assert_eq!(
            par_chunks(Parallelism::Threads(8), &tiny, 16, |c| c.to_vec()),
            vec![vec![1, 2, 3]]
        );
        // Chunks arrive in input order.
        let order = par_chunks(Parallelism::Threads(4), &items, 16, |c| c[0]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
    }

    #[test]
    fn display_names() {
        assert_eq!(Parallelism::Serial.to_string(), "serial");
        assert_eq!(Parallelism::Threads(4).to_string(), "threads(4)");
    }
}
