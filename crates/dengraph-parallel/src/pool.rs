//! A persistent worker pool for sub-millisecond fork-join phases.
//!
//! The detector runs several independent-shard phases *per quantum*, and a
//! quantum takes well under a millisecond — spawning OS threads per phase
//! (as `std::thread::scope` does) costs more than the work itself.  This
//! pool spawns its workers once per distinct thread count, parks them on a
//! condvar, and dispatches borrowed-closure jobs through a shared queue
//! with a completion latch, so a fork-join round trip costs microseconds.
//!
//! Pools are interned per thread count in a global registry and leaked on
//! purpose: worker threads live for the process lifetime (idle workers are
//! parked, not spinning), mirroring how a rayon global pool behaves.
//!
//! # Safety
//! Jobs borrow the caller's stack frame (`items`, the map closure, result
//! slots).  That is sound because [`Pool::run`] does not return until the
//! completion latch has counted every submitted job — the borrowed frame
//! outlives every job, exactly the guarantee `std::thread::scope` gives,
//! enforced here by the latch instead of by `join`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A type-erased unit of work valid until its batch's latch releases.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counts completed jobs of one [`Pool::run`] batch and wakes the caller.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    mutex: Mutex<()>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            panicked: AtomicBool::new(false),
            mutex: Mutex::new(()),
            done: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        // The decrement happens under the mutex so the waiter cannot
        // observe `remaining == 0` (and destroy the latch) while this
        // thread is still about to touch the mutex/condvar.  Rust's std
        // mutex supports the resulting unlock-then-immediate-destruction
        // pattern; a bare fetch_sub before the lock would not (the waiter
        // could wake between the decrement and the lock — use-after-free).
        let _guard = self.mutex.lock().expect("latch mutex poisoned");
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.mutex.lock().expect("latch mutex poisoned");
        while self.remaining.load(Ordering::Acquire) > 0 {
            guard = self.done.wait(guard).expect("latch mutex poisoned");
        }
    }
}

/// The shared job queue workers pull from.
struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

/// A persistent pool of parked worker threads.
pub struct Pool {
    queue: &'static Queue,
    workers: usize,
}

fn run_job(job: Job, latch: &Latch) {
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
        latch.panicked.store(true, Ordering::Release);
    }
    latch.complete_one();
}

impl Pool {
    fn new(workers: usize) -> Self {
        let queue: &'static Queue = Box::leak(Box::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("dengraph-worker-{i}"))
                .spawn(move || loop {
                    let job = {
                        let mut jobs = queue.jobs.lock().expect("pool queue poisoned");
                        loop {
                            if let Some(entry) = jobs.pop_front() {
                                break entry;
                            }
                            jobs = queue.available.wait(jobs).expect("pool queue poisoned");
                        }
                    };
                    job();
                })
                .expect("failed to spawn pool worker");
        }
        Self { queue, workers }
    }

    /// Number of worker threads (not counting the participating caller).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every closure produced by `jobs` and returns once all have
    /// finished.  The caller participates: while waiting it drains the
    /// queue itself, so small batches finish without a context switch and
    /// re-entrant use from a worker cannot deadlock.
    ///
    /// # Panics
    /// Panics if any job panicked (after all jobs of the batch finished,
    /// so borrowed state is never abandoned mid-batch).
    pub fn run<'scope, I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'scope,
    {
        let batch: Vec<Box<dyn FnOnce() + Send + 'scope>> = jobs
            .into_iter()
            .map(|job| Box::new(job) as Box<dyn FnOnce() + Send + 'scope>)
            .collect();
        let latch = Latch::new(batch.len());
        {
            let mut queue = self.queue.jobs.lock().expect("pool queue poisoned");
            for job in batch {
                // SAFETY: the transmute only erases the `'scope` lifetime
                // bound of the boxed closure (`Box<dyn FnOnce + Send +
                // 'scope>` → `Box<dyn FnOnce + Send + 'static>`); layout is
                // identical.  It is sound because `run` does not return
                // until `latch.wait()` below has observed every job of this
                // batch complete, so all `'scope` borrows captured by the
                // closure strictly outlive its execution — the erased
                // lifetime is never actually exceeded.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
                // SAFETY: `latch` lives on this stack frame and `run` blocks
                // on `latch.wait()` before returning, and `wait` cannot
                // return until every job of the batch has called
                // `Latch::complete`.  Workers therefore never touch
                // `latch_ref` after the frame is popped; promoting the
                // borrow to `'static` only bridges the queue's type, not the
                // reference's real lifetime.
                let latch_ref: &'static Latch = unsafe { &*std::ptr::from_ref::<Latch>(&latch) };
                queue.push_back(Box::new(move || run_job(job, latch_ref)));
            }
            self.queue.available.notify_all();
        }
        // Caller participation: drain whatever is still queued (this may
        // execute jobs from overlapping batches, which is fine — each job
        // reports to its own latch).
        loop {
            let job = self
                .queue
                .jobs
                .lock()
                .expect("pool queue poisoned")
                .pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        latch.wait();
        if latch.panicked.load(Ordering::Acquire) {
            // lint: allow(L002, deliberate panic propagation documented in `# Panics`; a swallowed job panic would silently corrupt the batch's outputs) allow(L007, re-raises a worker panic on the submitting thread; the entry point is only reached after a job already panicked)
            panic!("dengraph-parallel pool job panicked");
        }
    }
}

/// Returns the interned pool with `workers` worker threads, spawning it on
/// first use.
pub fn pool_for(workers: usize) -> &'static Pool {
    static POOLS: OnceLock<Mutex<HashMap<usize, &'static Pool>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().expect("pool registry poisoned");
    pools
        .entry(workers)
        .or_insert_with(|| Box::leak(Box::new(Pool::new(workers))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = pool_for(4);
        let counter = AtomicU64::new(0);
        pool.run((0..1000u64).map(|i| {
            let counter = &counter;
            move || {
                counter.fetch_add(i + 1, Ordering::Relaxed);
            }
        }));
        assert_eq!(counter.load(Ordering::Relaxed), (1..=1000).sum::<u64>());
    }

    #[test]
    fn borrowed_state_is_visible_after_run() {
        let pool = pool_for(3);
        let data: Vec<u64> = (0..100).collect();
        let slots: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(data.iter().enumerate().map(|(i, &x)| {
            let slots = &slots;
            move || slots[i].store(x * 2, Ordering::Relaxed)
        }));
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), i as u64 * 2);
        }
    }

    #[test]
    fn pool_is_reused_across_calls() {
        let a = pool_for(2) as *const Pool;
        let b = pool_for(2) as *const Pool;
        assert_eq!(a, b);
        assert_ne!(a, pool_for(5) as *const Pool);
        assert_eq!(pool_for(2).workers(), 2);
    }

    #[test]
    fn panicking_job_propagates_after_batch_completes() {
        let pool = pool_for(2);
        let completed = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run((0..10u32).map(|i| {
                let completed = &completed;
                move || {
                    if i == 3 {
                        panic!("boom");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(completed.load(Ordering::Relaxed), 9, "other jobs still ran");
        // The pool must stay usable afterwards.
        let counter = AtomicU64::new(0);
        pool.run((0..4u64).map(|_| {
            let counter = &counter;
            move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }));
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    /// Spawn/join under contention: several OS threads hammer the same
    /// interned pool with overlapping batches that borrow thread-local
    /// stack state.  This is the test Miri and ThreadSanitizer lean on to
    /// exercise the `'scope` → `'static` transmute in `Pool::run`: each
    /// batch's latch lives on a different caller stack, jobs from
    /// different batches interleave in the shared queue, and every join
    /// must still observe exactly its own batch's writes.
    #[test]
    fn contended_batches_join_independently() {
        // Miri executes this path faithfully but ~1000x slower, so scale
        // the schedule down while keeping the interleaving shape.
        const THREADS: u64 = if cfg!(miri) { 3 } else { 4 };
        const ROUNDS: u64 = if cfg!(miri) { 2 } else { 8 };
        const JOBS: u64 = if cfg!(miri) { 8 } else { 64 };

        let pool = pool_for(2);
        let grand_total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let grand_total = &grand_total;
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let local = AtomicU64::new(0);
                        pool.run((0..JOBS).map(|i| {
                            let local = &local;
                            move || {
                                local.fetch_add(i + 1, Ordering::Relaxed);
                            }
                        }));
                        // The batch has joined: its borrowed accumulator
                        // must be complete even though other threads'
                        // batches are still in flight in the same queue.
                        let sum = local.load(Ordering::Relaxed);
                        assert_eq!(sum, JOBS * (JOBS + 1) / 2);
                        grand_total.fetch_add(sum, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            grand_total.load(Ordering::Relaxed),
            THREADS * ROUNDS * JOBS * (JOBS + 1) / 2
        );
    }
}
