//! The codec abstraction: one vocabulary, two wire formats.
//!
//! Every serialisable state struct in the workspace implements
//! [`Encode`] / [`Decode`], which expose the same state under two wire
//! formats:
//!
//! * **JSON** ([`crate::Value`]) — human-readable, kept for debugging and
//!   as the cross-version fallback format;
//! * **binary** ([`crate::binary`]) — varint integers and delta-encoded
//!   dense columns matching the in-memory flat layouts, typically 4–8×
//!   smaller than the JSON text.
//!
//! Both encodings of a struct decode to the same value
//! (`decode(encode_bin(x)) == decode(encode_json(x)) == x`), a property
//! gated per struct by seeded loops in `tests/codec_equivalence.rs`.
//!
//! The struct-level encodings are headerless; the *document*-level
//! containers (detector checkpoints, checkpoint journals) carry a magic +
//! version header and are sniffable — JSON text can never start with the
//! binary magic byte, so [`WireFormat::sniff`] distinguishes the formats
//! without external metadata.

use crate::binary::{BinReader, BinWriter};
use crate::{JsonError, Result, Value};

/// Which wire format a document is (or should be) encoded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Human-readable JSON text — the debugging and cross-version
    /// fallback format.
    Json,
    /// The compact binary format of [`crate::binary`] (the default for
    /// durable checkpoints).
    #[default]
    Binary,
}

/// First byte of every binary-format document header.  `0xD6` is not a
/// valid first byte of any JSON document (JSON starts with whitespace,
/// `{`, `[`, `"`, a digit, `-`, `t`, `f` or `n`), which makes format
/// sniffing unambiguous.
pub const BINARY_MAGIC_BYTE: u8 = 0xD6;

impl WireFormat {
    /// Infers the wire format of an encoded document from its first byte.
    pub fn sniff(bytes: &[u8]) -> WireFormat {
        match bytes.first() {
            Some(&BINARY_MAGIC_BYTE) => WireFormat::Binary,
            _ => WireFormat::Json,
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFormat::Json => write!(f, "json"),
            WireFormat::Binary => write!(f, "binary"),
        }
    }
}

/// Serialises a state struct into either wire format.
pub trait Encode {
    /// Encodes to the JSON value model (the debugging / fallback format).
    fn encode_json(&self) -> Value;

    /// Appends the compact binary encoding to `w`.
    fn encode_bin(&self, w: &mut BinWriter);

    /// Encodes to standalone bytes in the requested format (JSON becomes
    /// its UTF-8 text).
    fn encode(&self, format: WireFormat) -> Vec<u8> {
        match format {
            WireFormat::Json => crate::to_string(&self.encode_json()).into_bytes(),
            WireFormat::Binary => {
                let mut w = BinWriter::new();
                self.encode_bin(&mut w);
                w.into_bytes()
            }
        }
    }
}

/// Deserialises a state struct from either wire format.
pub trait Decode: Sized {
    /// Decodes from the JSON value model.
    fn decode_json(value: &Value) -> Result<Self>;

    /// Decodes from the binary reader, consuming exactly the bytes
    /// [`Encode::encode_bin`] wrote.
    fn decode_bin(r: &mut BinReader<'_>) -> Result<Self>;

    /// Decodes standalone bytes written by [`Encode::encode`] with the
    /// same format.  The whole input must be consumed.
    fn decode(bytes: &[u8], format: WireFormat) -> Result<Self> {
        match format {
            WireFormat::Json => {
                let text = std::str::from_utf8(bytes).map_err(|_| JsonError {
                    message: "json document is not valid utf-8".into(),
                    offset: 0,
                })?;
                Self::decode_json(&crate::parse(text)?)
            }
            WireFormat::Binary => {
                let mut r = BinReader::new(bytes);
                let out = Self::decode_bin(&mut r)?;
                r.expect_end()?;
                Ok(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy struct exercising the provided trait methods end to end.
    #[derive(Debug, PartialEq)]
    struct Point {
        x: u64,
        y: f64,
    }

    impl Encode for Point {
        fn encode_json(&self) -> Value {
            Value::obj([("x", Value::from(self.x)), ("y", Value::from(self.y))])
        }
        fn encode_bin(&self, w: &mut BinWriter) {
            w.u64(self.x);
            w.f64(self.y);
        }
    }

    impl Decode for Point {
        fn decode_json(value: &Value) -> Result<Self> {
            Ok(Self {
                x: value.get("x")?.as_u64()?,
                y: value.get("y")?.as_f64()?,
            })
        }
        fn decode_bin(r: &mut BinReader<'_>) -> Result<Self> {
            Ok(Self {
                x: r.u64()?,
                y: r.f64()?,
            })
        }
    }

    #[test]
    fn both_formats_round_trip_and_agree() {
        let p = Point { x: 1 << 40, y: 2.5 };
        for format in [WireFormat::Json, WireFormat::Binary] {
            let bytes = p.encode(format);
            assert_eq!(Point::decode(&bytes, format).unwrap(), p, "{format}");
        }
        assert!(p.encode(WireFormat::Binary).len() < p.encode(WireFormat::Json).len());
    }

    #[test]
    fn binary_decode_rejects_trailing_bytes() {
        let mut bytes = Point { x: 1, y: 0.0 }.encode(WireFormat::Binary);
        bytes.push(0);
        assert!(Point::decode(&bytes, WireFormat::Binary).is_err());
    }

    #[test]
    fn sniffing_distinguishes_the_formats() {
        assert_eq!(WireFormat::sniff(b"{\"x\":1}"), WireFormat::Json);
        assert_eq!(WireFormat::sniff(b"  [1,2]"), WireFormat::Json);
        assert_eq!(
            WireFormat::sniff(&[BINARY_MAGIC_BYTE, 1]),
            WireFormat::Binary
        );
        assert_eq!(WireFormat::sniff(b""), WireFormat::Json);
    }
}
